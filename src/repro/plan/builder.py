"""AST → logical plan: name binding, aggregation lowering, windows.

The builder resolves names against a :class:`SchemaProvider` (the catalog,
or a plain dict in tests), expands views (section 5.4: "Identifiers in this
tree are bound and nested views are expanded"), lowers GROUP BY / GROUP BY
ALL / HAVING into :class:`~repro.plan.logical.Aggregate` + Filter, lowers
OVER clauses into stacked :class:`~repro.plan.logical.Window` nodes (one
per distinct partition key set), and lowers QUALIFY into a Filter above the
windows.

The result is a fully bound plan: every column reference is positional and
every expression carries its type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, Sequence

from repro.engine import expressions as e
from repro.engine.expressions import DEFAULT_REGISTRY, FunctionRegistry
from repro.engine.schema import Column, Schema
from repro.engine.types import SqlType, type_from_name, unify_types
from repro.errors import BindError, SqlError, TypeError_, UserError
from repro.plan import logical as lp
from repro.sql import nodes as n


def _locate(exc: UserError, node: object) -> None:
    """Attach ``node``'s source span to an escaping binder error.

    :class:`SqlError` subclasses (bind/type errors) fold the position into
    their message; other user errors (e.g. the catalog's EntityNotFound
    for an unknown table) just gain ``line``/``column`` attributes so the
    analyzer can still point at the offending token.
    """
    span = n.span_of(node)
    if span is None:
        return
    if isinstance(exc, SqlError):
        exc.with_location(span.line, span.column)
    elif getattr(exc, "line", None) is None:
        exc.line = span.line
        exc.column = span.column

#: Functions treated as aggregates when no OVER clause is present.
AGGREGATE_FUNCTIONS = frozenset({
    "count", "count_if", "sum", "avg", "min", "max", "any_value",
    "median", "stddev", "variance", "listagg",
})

#: Functions valid only with an OVER clause.
RANKING_FUNCTIONS = frozenset({"row_number", "rank", "dense_rank"})

#: Aggregates usable as window functions too.
WINDOW_AGGREGATES = frozenset({"sum", "count", "avg", "min", "max", "count_if"})

OFFSET_FUNCTIONS = frozenset({"lag", "lead"})

OTHER_WINDOW_FUNCTIONS = frozenset({"first_value", "last_value"})

WINDOW_FUNCTIONS = (RANKING_FUNCTIONS | WINDOW_AGGREGATES
                    | OFFSET_FUNCTIONS | OTHER_WINDOW_FUNCTIONS)

#: Functions whose first argument is a bare date-part name (``hour`` in
#: ``date_trunc(hour, ts)`` in the paper's Listing 1).
DATE_PART_FUNCTIONS = frozenset({"date_trunc"})


class SchemaProvider(Protocol):
    """What the builder needs from the catalog."""

    def table_schema(self, name: str) -> Schema:
        """Schema of a base/dynamic table, or raise EntityNotFound."""
        ...

    def view_definition(self, name: str) -> Optional[n.Select]:
        """The defining query of a view, or None if ``name`` is not a view."""
        ...


class DictSchemaProvider:
    """A SchemaProvider over a plain ``{name: Schema}`` dict (for tests)."""

    def __init__(self, schemas: dict[str, Schema],
                 views: dict[str, n.Select] | None = None) -> None:
        self._schemas = schemas
        self._views = views or {}

    def table_schema(self, name: str) -> Schema:
        if name not in self._schemas:
            raise BindError(f"unknown table: {name}")
        return self._schemas[name]

    def view_definition(self, name: str) -> Optional[n.Select]:
        return self._views.get(name)


class ParameterSlots(Protocol):
    """What the binder needs to bind an AST :class:`~repro.sql.nodes.Parameter`
    to a :class:`~repro.engine.expressions.BoundParameter` slot. Implemented
    by :class:`repro.api.prepared.ParameterSpec`.

    A spec may additionally expose ``observe_type(slot, sql_type, label)``
    — the binder then reports the type each parameter's comparison or
    arithmetic context implies, so bind values can be checked up front
    (and conflicting contexts rejected at prepare time)."""

    def slot_of(self, parameter: n.Parameter) -> int:
        ...


#: Types a parameter may assume from an arithmetic context.
_ARITHMETIC_TYPES = frozenset({SqlType.INT, SqlType.FLOAT, SqlType.TIMESTAMP})


def build_plan(select: n.Select, provider: SchemaProvider,
               registry: FunctionRegistry = DEFAULT_REGISTRY,
               parameters: Optional[ParameterSlots] = None) -> lp.PlanNode:
    """Build a bound logical plan for a query.

    ``parameters`` enables bind parameters (``?`` / ``:name``): each AST
    Parameter binds to the slot the spec assigns it. Without a spec,
    parameters raise BindError — a DT defining query, for example, can
    never contain one.
    """
    return _Builder(provider, registry, parameters).build_query(select)


def bind_expression(ast: n.Expr, schema: Schema,
                    registry: FunctionRegistry = DEFAULT_REGISTRY,
                    parameters: Optional[ParameterSlots] = None,
                    ) -> e.Expression:
    """Bind a standalone AST expression against a schema (the DML paths:
    INSERT literal rows, UPDATE assignments, WHERE predicates)."""
    return _ExprBinder(registry, parameters).bind(ast, _Scope(schema))


# ---------------------------------------------------------------------------
# Expression binding
# ---------------------------------------------------------------------------

@dataclass
class _Scope:
    """Binding environment for expressions.

    ``substitutions`` maps AST sub-expressions (by structural equality) to
    pre-bound expressions; aggregation and window lowering register their
    outputs here so post-aggregation expressions bind against them.
    ``group_strict`` enforces the SQL rule that, under aggregation, any
    column reference must come from a GROUP BY expression.
    """

    schema: Schema
    substitutions: list[tuple[n.Expr, e.Expression]] = field(default_factory=list)
    group_strict: bool = False
    allow_aggregates: bool = False

    def lookup_substitution(self, ast: n.Expr) -> Optional[e.Expression]:
        for candidate, bound in self.substitutions:
            if candidate == ast:
                return bound
        return None


class _ExprBinder:
    def __init__(self, registry: FunctionRegistry,
                 parameters: "Optional[ParameterSlots]" = None) -> None:
        self._registry = registry
        self._parameters = parameters

    def bind(self, ast: n.Expr, scope: _Scope) -> e.Expression:
        try:
            return self._bind_inner(ast, scope)
        except (BindError, TypeError_) as exc:
            # The innermost failing node raises first, so the position
            # reported is the most specific one available.
            _locate(exc, ast)
            raise

    def _bind_inner(self, ast: n.Expr, scope: _Scope) -> e.Expression:
        substituted = scope.lookup_substitution(ast)
        if substituted is not None:
            return substituted

        if isinstance(ast, n.Lit):
            return e.Literal(ast.value)
        if isinstance(ast, n.Parameter):
            if self._parameters is None:
                raise BindError(
                    f"bind parameter {ast.display()} is not allowed here "
                    "(use a prepared statement)")
            return e.BoundParameter(self._parameters.slot_of(ast),
                                    ast.display())
        if isinstance(ast, n.Name):
            return self._bind_name(ast, scope)
        if isinstance(ast, n.Star):
            raise BindError("'*' is only valid in a select list or COUNT(*)")
        if isinstance(ast, n.BinOp):
            return self._bind_binop(ast, scope)
        if isinstance(ast, n.UnOp):
            if ast.op == "not":
                return e.Not(self.bind(ast.operand, scope))
            if ast.op == "-":
                operand = self.bind(ast.operand, scope)
                return e.Arithmetic("-", e.Literal(0), operand)
            raise BindError(f"unknown unary operator {ast.op!r}")
        if isinstance(ast, n.IsNullExpr):
            return e.IsNull(self.bind(ast.operand, scope), ast.negated)
        if isinstance(ast, n.InListExpr):
            operand = self.bind(ast.operand, scope)
            items = tuple(self.bind(item, scope) for item in ast.items)
            item_type = next((item.type for item in items
                              if item.type != SqlType.NULL), SqlType.NULL)
            operand = self._typed_parameter(operand, item_type)
            items = tuple(self._typed_parameter(item, operand.type)
                          for item in items)
            return e.InList(operand, items, ast.negated)
        if isinstance(ast, n.LikeExpr):
            # LIKE is a TEXT context for both operand and pattern.
            operand = self._typed_parameter(self.bind(ast.operand, scope),
                                            SqlType.TEXT)
            pattern = self._typed_parameter(self.bind(ast.pattern, scope),
                                            SqlType.TEXT)
            return e.Like(operand, pattern, ast.negated)
        if isinstance(ast, n.BetweenExpr):
            operand = self.bind(ast.operand, scope)
            low = self.bind(ast.low, scope)
            high = self.bind(ast.high, scope)
            bound_type = (low.type if low.type != SqlType.NULL
                          else high.type)
            operand = self._typed_parameter(operand, bound_type)
            low = self._typed_parameter(low, operand.type)
            high = self._typed_parameter(high, operand.type)
            between = e.BooleanOp("and", (
                e.Comparison(">=", operand, low),
                e.Comparison("<=", operand, high)))
            return e.Not(between) if ast.negated else between
        if isinstance(ast, n.CaseExpr):
            return self._bind_case(ast, scope)
        if isinstance(ast, n.CastExpr):
            return e.Cast(self.bind(ast.operand, scope),
                          type_from_name(ast.type_name))
        if isinstance(ast, n.PathExpr):
            return e.VariantPath(self.bind(ast.operand, scope), ast.path)
        if isinstance(ast, n.FnCall):
            return self._bind_function(ast, scope)
        raise BindError(f"cannot bind expression {ast!r}")

    def _bind_name(self, ast: n.Name, scope: _Scope) -> e.Expression:
        if scope.group_strict:
            # Under aggregation every legitimate reference arrives through
            # a substitution; a bare name is an ungrouped column.
            raise BindError(
                f"column {ast.display()!r} must appear in GROUP BY "
                "or be used in an aggregate function")
        index = scope.schema.resolve(ast.name, ast.table)
        column = scope.schema[index]
        return e.ColumnRef(index, column.type, column.name)

    def _typed_parameter(self, expr: e.Expression, context_type: SqlType,
                         allowed: "frozenset[SqlType] | None" = None,
                         ) -> e.Expression:
        """Pin an untyped bind parameter to the type its context implies.

        When ``expr`` is a NULL-typed :class:`~repro.engine.expressions.
        BoundParameter` and the surrounding comparison/arithmetic context
        supplies a concrete type, return a re-typed parameter and report
        the inference to the spec (whose ``observe_type`` raises on
        conflicting contexts — at prepare time for planned SELECTs).
        Anything else passes through untouched.
        """
        if (not isinstance(expr, e.BoundParameter)
                or expr.type != SqlType.NULL
                or context_type in (SqlType.NULL, SqlType.VARIANT)):
            return expr
        if allowed is not None and context_type not in allowed:
            return expr
        if self._parameters is not None:
            observe = getattr(self._parameters, "observe_type", None)
            if observe is not None:
                observe(expr.slot, context_type, expr.label)
        return e.BoundParameter(expr.slot, expr.label, context_type)

    def _bind_binop(self, ast: n.BinOp, scope: _Scope) -> e.Expression:
        if ast.op in ("and", "or"):
            return e.BooleanOp(ast.op, (self.bind(ast.left, scope),
                                        self.bind(ast.right, scope)))
        left = self.bind(ast.left, scope)
        right = self.bind(ast.right, scope)
        if ast.op in ("=", "!=", "<>", "<", "<=", ">", ">="):
            left = self._typed_parameter(left, right.type)
            right = self._typed_parameter(right, left.type)
            return e.Comparison(ast.op, left, right)
        if ast.op in ("+", "-", "*", "/", "%"):
            left = self._typed_parameter(left, right.type,
                                         allowed=_ARITHMETIC_TYPES)
            right = self._typed_parameter(right, left.type,
                                          allowed=_ARITHMETIC_TYPES)
            return e.Arithmetic(ast.op, left, right)
        if ast.op == "||":
            concat = self._registry.lookup("concat")
            return e.FunctionCall(concat, (left, right))
        raise BindError(f"unknown operator {ast.op!r}")

    def _bind_case(self, ast: n.CaseExpr, scope: _Scope) -> e.Expression:
        whens: list[tuple[e.Expression, e.Expression]] = []
        if ast.operand is not None:
            operand = self.bind(ast.operand, scope)
            for condition, value in ast.whens:
                whens.append((e.Comparison("=", operand, self.bind(condition, scope)),
                              self.bind(value, scope)))
        else:
            for condition, value in ast.whens:
                whens.append((self.bind(condition, scope),
                              self.bind(value, scope)))
        otherwise = (self.bind(ast.otherwise, scope)
                     if ast.otherwise is not None else e.Literal(None))
        return e.Case(tuple(whens), otherwise)

    def _bind_function(self, ast: n.FnCall, scope: _Scope) -> e.Expression:
        if ast.window is not None:
            raise BindError(
                f"window function {ast.name}(...) OVER (...) is not allowed here")
        if ast.name in AGGREGATE_FUNCTIONS:
            raise BindError(f"aggregate function {ast.name} is not allowed here")
        if ast.name in RANKING_FUNCTIONS:
            raise BindError(f"{ast.name} requires an OVER clause")
        if ast.name in ("current_timestamp", "current_role"):
            if ast.args:
                raise BindError(f"{ast.name} takes no arguments")
            return e.ContextFunction(ast.name)
        args = list(ast.args)
        if ast.name in DATE_PART_FUNCTIONS and args:
            # Bare date-part names (``date_trunc(hour, ts)``) become strings.
            first = args[0]
            if isinstance(first, n.Name) and first.table is None:
                args[0] = n.Lit(first.name)
        function = self._registry.lookup(ast.name)
        return e.FunctionCall(function,
                              tuple(self.bind(arg, scope) for arg in args))


# ---------------------------------------------------------------------------
# Aggregate / window analysis over the AST
# ---------------------------------------------------------------------------

def _walk_ast(ast: n.Expr) -> "Iterator[n.Expr]":
    yield ast
    if isinstance(ast, n.BinOp):
        yield from _walk_ast(ast.left)
        yield from _walk_ast(ast.right)
    elif isinstance(ast, n.UnOp):
        yield from _walk_ast(ast.operand)
    elif isinstance(ast, (n.IsNullExpr, n.PathExpr)):
        yield from _walk_ast(ast.operand)
    elif isinstance(ast, n.CastExpr):
        yield from _walk_ast(ast.operand)
    elif isinstance(ast, n.InListExpr):
        yield from _walk_ast(ast.operand)
        for item in ast.items:
            yield from _walk_ast(item)
    elif isinstance(ast, n.LikeExpr):
        yield from _walk_ast(ast.operand)
        yield from _walk_ast(ast.pattern)
    elif isinstance(ast, n.BetweenExpr):
        yield from _walk_ast(ast.operand)
        yield from _walk_ast(ast.low)
        yield from _walk_ast(ast.high)
    elif isinstance(ast, n.CaseExpr):
        if ast.operand is not None:
            yield from _walk_ast(ast.operand)
        for condition, value in ast.whens:
            yield from _walk_ast(condition)
            yield from _walk_ast(value)
        if ast.otherwise is not None:
            yield from _walk_ast(ast.otherwise)
    elif isinstance(ast, n.FnCall):
        for arg in ast.args:
            yield from _walk_ast(arg)
        if ast.window is not None:
            for expr in ast.window.partition_by:
                yield from _walk_ast(expr)
            for expr, __ in ast.window.order_by:
                yield from _walk_ast(expr)


def _aggregate_calls(ast: n.Expr) -> list[n.FnCall]:
    """All aggregate FnCalls (without OVER) in an AST expression."""
    return [node for node in _walk_ast(ast)
            if isinstance(node, n.FnCall)
            and node.window is None
            and node.name in AGGREGATE_FUNCTIONS]


def _window_calls(ast: n.Expr) -> list[n.FnCall]:
    return [node for node in _walk_ast(ast)
            if isinstance(node, n.FnCall) and node.window is not None]


def _contains_aggregate(ast: n.Expr) -> bool:
    return bool(_aggregate_calls(ast))


_AGG_RESULT_TYPES: dict[str, Callable[[SqlType], SqlType]] = {
    "count": lambda arg: SqlType.INT,
    "count_if": lambda arg: SqlType.INT,
    "sum": lambda arg: arg if arg in (SqlType.INT, SqlType.FLOAT) else SqlType.FLOAT,
    "avg": lambda arg: SqlType.FLOAT,
    "min": lambda arg: arg,
    "max": lambda arg: arg,
    "any_value": lambda arg: arg,
    "median": lambda arg: SqlType.FLOAT,
    "stddev": lambda arg: SqlType.FLOAT,
    "variance": lambda arg: SqlType.FLOAT,
    "listagg": lambda arg: SqlType.TEXT,
}


def _dedupe(asts: Sequence[n.FnCall]) -> list[n.FnCall]:
    unique: list[n.FnCall] = []
    for ast in asts:
        if ast not in unique:
            unique.append(ast)
    return unique


# ---------------------------------------------------------------------------
# The builder
# ---------------------------------------------------------------------------

class _Builder:
    def __init__(self, provider: SchemaProvider, registry: FunctionRegistry,
                 parameters: "Optional[ParameterSlots]" = None) -> None:
        self._provider = provider
        self._registry = registry
        self._binder = _ExprBinder(registry, parameters)
        self._view_stack: list[str] = []

    # -- entry points --------------------------------------------------------

    def build_query(self, select: n.Select) -> lp.PlanNode:
        plan = self._build_core(select)
        if select.union_all:
            inputs = [plan] + [self._build_core(core) for core in select.union_all]
            first = inputs[0].schema
            for other in inputs[1:]:
                if len(other.schema) != len(first):
                    raise BindError("UNION ALL inputs must have the same arity")
                for left_col, right_col in zip(first, other.schema):
                    unify_types(left_col.type, right_col.type)
            plan = lp.UnionAll(tuple(inputs))
        if select.order_by:
            plan = self._apply_order_by(plan, select)
        if select.limit is not None:
            plan = lp.Limit(plan, select.limit)
        return plan

    def _apply_order_by(self, plan: lp.PlanNode,
                        select: n.Select) -> lp.PlanNode:
        """Bind ORDER BY keys: against the output schema (aliases and
        ordinals), or — when the root is a Project over a single core —
        against the *input* columns, so ``SELECT id ... ORDER BY amt``
        works even though ``amt`` is not projected."""
        if isinstance(plan, lp.Project) and not select.union_all:
            from repro.plan.rewrite import substitute

            child = plan.child
            bindings = dict(enumerate(plan.exprs))
            keys: list[tuple[e.Expression, bool]] = []
            for ast, descending in select.order_by:
                if isinstance(ast, n.Lit):
                    # Ordinals always target the output list (no fallback).
                    bound = substitute(
                        self._bind_order_key(ast, plan.schema), bindings)
                else:
                    try:
                        bound = substitute(
                            self._bind_order_key(ast, plan.schema), bindings)
                    except BindError:
                        bound = self._binder.bind(ast, _Scope(child.schema))
                keys.append((bound, descending))
            return lp.Project(lp.Sort(child, tuple(keys)),
                              plan.exprs, plan.schema)
        keys = tuple((self._bind_order_key(ast, plan.schema), descending)
                     for ast, descending in select.order_by)
        return lp.Sort(plan, keys)

    def _bind_order_key(self, ast: n.Expr, schema: Schema) -> e.Expression:
        # ORDER BY <ordinal> refers to an output column.
        if isinstance(ast, n.Lit) and isinstance(ast.value, int):
            index = ast.value - 1
            if not 0 <= index < len(schema):
                raise BindError(f"ORDER BY position {ast.value} is out of range")
            column = schema[index]
            return e.ColumnRef(index, column.type, column.name)
        return self._binder.bind(ast, _Scope(schema))

    # -- FROM clause ---------------------------------------------------------

    def _build_from(self, ref: n.TableRef) -> lp.PlanNode:
        if isinstance(ref, n.NamedTable):
            return self._build_named(ref)
        if isinstance(ref, n.SubqueryRef):
            plan = self.build_query(ref.query)
            return _requalify(plan, ref.alias)
        if isinstance(ref, n.JoinRef):
            left = self._build_from(ref.left)
            right = self._build_from(ref.right)
            condition = None
            if ref.condition is not None:
                joined_schema = left.schema.concat(right.schema)
                condition = self._binder.bind(ref.condition, _Scope(joined_schema))
            return lp.Join(ref.kind, left, right, condition)
        if isinstance(ref, n.FlattenRef):
            source = self._build_from(ref.source)
            input_expr = self._binder.bind(ref.input, _Scope(source.schema))
            extra = Schema((
                Column("value", SqlType.VARIANT, ref.alias),
                Column("index", SqlType.INT, ref.alias),
            ))
            return lp.Flatten(source, input_expr, ref.alias,
                              source.schema.concat(extra))
        raise BindError(f"unsupported FROM item: {ref!r}")

    def _build_named(self, ref: n.NamedTable) -> lp.PlanNode:
        view_query = self._provider.view_definition(ref.name)
        if view_query is not None:
            if ref.name in self._view_stack:
                raise BindError(f"view {ref.name!r} is recursive")
            self._view_stack.append(ref.name)
            try:
                plan = self.build_query(view_query)
            finally:
                self._view_stack.pop()
            return _requalify(plan, ref.binding_name)
        try:
            schema = self._provider.table_schema(ref.name)
        except UserError as exc:
            _locate(exc, ref)
            raise
        return lp.Scan(ref.name, schema.requalified(ref.binding_name))

    # -- one SELECT core -------------------------------------------------------

    def _build_core(self, select: n.Select) -> lp.PlanNode:
        if not select.items:
            raise BindError("SELECT list is empty")

        plan: lp.PlanNode
        if select.from_ is not None:
            plan = self._build_from(select.from_)
        else:
            plan = lp.Values(Schema(()), ((),))  # SELECT without FROM: one row

        if select.where is not None:
            if _contains_aggregate(select.where) or _window_calls(select.where):
                raise BindError("WHERE cannot contain aggregates or window functions")
            predicate = self._binder.bind(select.where, _Scope(plan.schema))
            plan = lp.Filter(plan, predicate)

        # Expand stars now; everything below works on concrete items.
        items = self._expand_stars(select.items, plan.schema)

        # ----- aggregation ----------------------------------------------------
        aggregate_asts: list[n.FnCall] = []
        for item in items:
            aggregate_asts.extend(_aggregate_calls(item.expr))
        if select.having is not None:
            aggregate_asts.extend(_aggregate_calls(select.having))
        aggregate_asts = _dedupe(aggregate_asts)

        group_asts = self._group_exprs(select, items)
        substitutions: list[tuple[n.Expr, e.Expression]] = []

        if aggregate_asts or group_asts:
            plan, substitutions = self._build_aggregate(
                plan, group_asts, aggregate_asts, items)
            if select.having is not None:
                scope = _Scope(plan.schema, substitutions, group_strict=True)
                plan = lp.Filter(plan, self._binder.bind(select.having, scope))
        elif select.having is not None:
            raise BindError("HAVING requires GROUP BY or aggregates")

        # ----- window functions -----------------------------------------------
        window_asts: list[n.FnCall] = []
        for item in items:
            window_asts.extend(_window_calls(item.expr))
        if select.qualify is not None:
            window_asts.extend(_window_calls(select.qualify))
        window_asts = _dedupe(window_asts)
        if window_asts:
            plan, substitutions = self._build_windows(
                plan, window_asts, substitutions,
                group_strict=bool(aggregate_asts or group_asts))

        if select.qualify is not None:
            if not window_asts:
                raise BindError("QUALIFY requires a window function")
            # QUALIFY may reference select-item aliases (Snowflake allows
            # ``QUALIFY rn = 1`` where rn aliases a window call).
            qualify_subs = list(substitutions)
            scope = _Scope(plan.schema, substitutions,
                           group_strict=bool(aggregate_asts or group_asts))
            for item in items:
                if item.alias:
                    try:
                        bound = self._binder.bind(item.expr, scope)
                    except BindError:
                        continue
                    qualify_subs.append((n.Name(item.alias), bound))
            qualify_scope = _Scope(plan.schema, qualify_subs,
                                   group_strict=bool(aggregate_asts
                                                     or group_asts))
            plan = lp.Filter(plan,
                             self._binder.bind(select.qualify, qualify_scope))

        # ----- final projection ------------------------------------------------
        scope = _Scope(plan.schema, substitutions,
                       group_strict=bool(aggregate_asts or group_asts))
        exprs: list[e.Expression] = []
        names: list[str] = []
        for index, item in enumerate(items):
            exprs.append(self._binder.bind(item.expr, scope))
            names.append(self._output_name(item, index))
        plan = lp.Project(plan, tuple(exprs),
                          lp.make_projection_schema(exprs, names))

        if select.distinct:
            plan = lp.Distinct(plan)
        return plan

    def _expand_stars(self, items: Sequence[n.SelectItem],
                      schema: Schema) -> list[n.SelectItem]:
        expanded: list[n.SelectItem] = []
        for item in items:
            if isinstance(item.expr, n.Star):
                for column in schema:
                    if item.expr.table is not None and column.table != item.expr.table:
                        continue
                    expanded.append(n.SelectItem(
                        n.Name(column.name, column.table), None))
                if not expanded:
                    raise BindError("'*' expanded to zero columns")
            else:
                expanded.append(item)
        return expanded

    def _group_exprs(self, select: n.Select,
                     items: Sequence[n.SelectItem]) -> list[n.Expr]:
        if select.group_by is None:
            return []
        if isinstance(select.group_by, n.GroupByAll):
            # GROUP BY ALL (Listing 1): group by every select item that
            # contains no aggregate.
            return [item.expr for item in items
                    if not _contains_aggregate(item.expr)
                    and not _window_calls(item.expr)]
        group: list[n.Expr] = []
        for expr in select.group_by:
            if isinstance(expr, n.Lit) and isinstance(expr.value, int):
                index = expr.value - 1
                if not 0 <= index < len(items):
                    raise BindError(f"GROUP BY position {expr.value} is out of range")
                group.append(items[index].expr)
            else:
                group.append(expr)
        return group

    def _build_aggregate(
        self, plan: lp.PlanNode, group_asts: list[n.Expr],
        aggregate_asts: list[n.FnCall], items: Sequence[n.SelectItem],
    ) -> tuple[lp.PlanNode, list[tuple[n.Expr, e.Expression]]]:
        input_scope = _Scope(plan.schema)
        group_bound = [self._binder.bind(ast, input_scope) for ast in group_asts]

        calls: list[lp.AggregateCall] = []
        for position, ast in enumerate(aggregate_asts):
            arg: Optional[e.Expression] = None
            if ast.name == "count" and (not ast.args or isinstance(ast.args[0], n.Star)):
                arg = None
                arg_type = SqlType.INT
            else:
                if not ast.args:
                    raise BindError(f"{ast.name} requires an argument")
                if len(ast.args) > 1:
                    raise BindError(f"{ast.name} takes a single argument")
                arg = self._binder.bind(ast.args[0], input_scope)
                arg_type = arg.type
            output_type = _AGG_RESULT_TYPES[ast.name](arg_type)
            calls.append(lp.AggregateCall(
                ast.name, arg, ast.distinct, f"agg_{position}", output_type))

        columns: list[Column] = []
        for position, (ast, bound) in enumerate(zip(group_asts, group_bound)):
            name = ast.name if isinstance(ast, n.Name) else f"group_{position}"
            columns.append(Column(name, bound.type))
        for call in calls:
            columns.append(Column(call.output_name, call.output_type))
        schema = Schema(columns)
        node = lp.Aggregate(plan, tuple(group_bound), tuple(calls), schema)

        substitutions: list[tuple[n.Expr, e.Expression]] = []
        for position, ast in enumerate(group_asts):
            column = schema[position]
            substitutions.append(
                (ast, e.ColumnRef(position, column.type, column.name)))
        offset = len(group_asts)
        for position, ast in enumerate(aggregate_asts):
            column = schema[offset + position]
            substitutions.append(
                (ast, e.ColumnRef(offset + position, column.type, column.name)))
        return node, substitutions

    def _build_windows(
        self, plan: lp.PlanNode, window_asts: list[n.FnCall],
        substitutions: list[tuple[n.Expr, e.Expression]], group_strict: bool,
    ) -> tuple[lp.PlanNode, list[tuple[n.Expr, e.Expression]]]:
        # Group calls by their PARTITION BY expression list; one Window node
        # per distinct partition set, stacked bottom-up.
        partitions: list[tuple[n.Expr, ...]] = []
        for ast in window_asts:
            key = ast.window.partition_by
            if key not in partitions:
                partitions.append(key)

        substitutions = list(substitutions)
        for partition_key in partitions:
            calls_here = [ast for ast in window_asts
                          if ast.window.partition_by == partition_key]
            scope = _Scope(plan.schema, substitutions, group_strict=group_strict)
            partition_bound = tuple(self._binder.bind(expr, scope)
                                    for expr in partition_key)
            bound_calls: list[lp.WindowCall] = []
            columns = list(plan.schema.columns)
            base = len(columns)
            for position, ast in enumerate(calls_here):
                bound_calls.append(self._bind_window_call(ast, scope, position))
                columns.append(Column(bound_calls[-1].output_name,
                                      bound_calls[-1].output_type))
            schema = Schema(columns)
            plan = lp.Window(plan, partition_bound, tuple(bound_calls), schema)
            for position, ast in enumerate(calls_here):
                column = schema[base + position]
                substitutions.append(
                    (ast, e.ColumnRef(base + position, column.type, column.name)))
        return plan, substitutions

    def _bind_window_call(self, ast: n.FnCall, scope: _Scope,
                          position: int) -> lp.WindowCall:
        name = ast.name
        if name not in WINDOW_FUNCTIONS:
            raise BindError(f"{name} is not a window function")
        order_by = tuple((self._binder.bind(expr, scope), descending)
                         for expr, descending in ast.window.order_by)
        arg: Optional[e.Expression] = None
        offset = 1
        if name in RANKING_FUNCTIONS:
            if ast.args:
                raise BindError(f"{name} takes no arguments")
            if name in ("rank", "dense_rank") and not order_by:
                raise BindError(f"{name} requires ORDER BY")
            output_type = SqlType.INT
        elif name in OFFSET_FUNCTIONS:
            if not ast.args:
                raise BindError(f"{name} requires an argument")
            arg = self._binder.bind(ast.args[0], scope)
            if len(ast.args) > 1:
                literal = ast.args[1]
                if not (isinstance(literal, n.Lit) and isinstance(literal.value, int)):
                    raise BindError(f"{name} offset must be an integer literal")
                offset = literal.value
            if not order_by:
                raise BindError(f"{name} requires ORDER BY")
            output_type = arg.type
        elif name == "count" and (not ast.args or isinstance(ast.args[0], n.Star)):
            output_type = SqlType.INT
        else:
            if not ast.args:
                raise BindError(f"{name} requires an argument")
            arg = self._binder.bind(ast.args[0], scope)
            output_type = _AGG_RESULT_TYPES.get(name, lambda t: t)(arg.type)
        return lp.WindowCall(name, arg, order_by, offset,
                             f"win_{position}", output_type)

    def _output_name(self, item: n.SelectItem, index: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, n.Name):
            return item.expr.name
        expr = item.expr
        # Peel casts/paths for a friendlier derived name.
        while isinstance(expr, (n.CastExpr, n.PathExpr)):
            if isinstance(expr, n.PathExpr):
                return expr.path[-1]
            expr = expr.operand
        if isinstance(expr, n.Name):
            return expr.name
        if isinstance(expr, n.FnCall):
            return expr.name
        return f"col_{index}"


def _requalify(plan: lp.PlanNode, alias: str) -> lp.PlanNode:
    """Requalify a subplan's output columns under ``alias``.

    Implemented as a zero-cost Project so the plan node itself stays
    immutable; the optimizer collapses adjacent projections.
    """
    schema = plan.schema.requalified(alias)
    exprs = tuple(e.ColumnRef(index, column.type, column.name)
                  for index, column in enumerate(schema))
    return lp.Project(plan, exprs, schema)
