"""Logical query plans.

A plan is an immutable tree of operators over bound expressions
(:mod:`repro.engine.expressions`). The operator set is exactly the one the
paper's differentiation framework is defined over (section 3.3.2 lists the
incrementally supported classes):

* :class:`Scan`, :class:`Values`
* :class:`Project`, :class:`Filter`
* :class:`Join` (inner / left / right / full / cross)
* :class:`UnionAll`
* :class:`Aggregate` (grouped aggregation), :class:`Distinct`
* :class:`Window` (partitioned window functions)
* :class:`Flatten` (LATERAL FLATTEN)
* :class:`Sort`, :class:`Limit` — full-refresh-only operators.

Each node carries its output :class:`~repro.engine.schema.Schema`. Join
conditions are bound over the concatenation of the input schemas (left
columns first).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.engine.expressions import (ColumnRef, Comparison, Expression,
                                      conjoin, conjuncts)
from repro.engine.schema import Column, Schema
from repro.engine.types import SqlType


class PlanNode:
    """Base class of logical plan operators."""

    schema: Schema

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def with_children(self, children: Sequence["PlanNode"]) -> "PlanNode":
        """A structural copy with the given children (same arity)."""
        raise NotImplementedError

    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal of the plan tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    @property
    def operator_name(self) -> str:
        return type(self).__name__

    def pretty(self, indent: int = 0) -> str:
        """A readable multi-line rendering, for debugging and docs."""
        line = "  " * indent + self._describe()
        parts = [line]
        parts.extend(child.pretty(indent + 1) for child in self.children())
        return "\n".join(parts)

    def _describe(self) -> str:
        return self.operator_name


@dataclass(frozen=True)
class Scan(PlanNode):
    """A scan of a named catalog entity (base table or dynamic table).

    The schema is resolved against the catalog at plan-build time;
    :mod:`repro.core.evolution` re-checks it at refresh time to detect
    upstream DDL (section 5.4, query evolution).
    """

    table: str
    schema: Schema

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        assert not children
        return self

    def _describe(self) -> str:
        return f"Scan({self.table})"


@dataclass(frozen=True)
class Values(PlanNode):
    """Literal rows (used for INSERT ... VALUES and in tests)."""

    schema: Schema
    rows: tuple[tuple, ...]

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        assert not children
        return self

    def _describe(self) -> str:
        return f"Values({len(self.rows)} rows)"


@dataclass(frozen=True)
class Project(PlanNode):
    """Computes one output column per expression over each input row."""

    child: PlanNode
    exprs: tuple[Expression, ...]
    schema: Schema

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        (child,) = children
        return Project(child, self.exprs, self.schema)

    def _describe(self) -> str:
        return f"Project({', '.join(self.schema.names)})"


@dataclass(frozen=True)
class Filter(PlanNode):
    child: PlanNode
    predicate: Expression

    @property
    def schema(self) -> Schema:  # type: ignore[override]
        return self.child.schema

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        (child,) = children
        return Filter(child, self.predicate)

    def _describe(self) -> str:
        return f"Filter({self.predicate})"


#: Join kinds, matching section 3.3.2 ("inner and outer joins").
JOIN_KINDS = ("inner", "left", "right", "full", "cross")


@dataclass(frozen=True)
class Join(PlanNode):
    """A join. ``condition`` is bound over left-columns ++ right-columns;
    it is None only for cross joins."""

    kind: str
    left: PlanNode
    right: PlanNode
    condition: Optional[Expression]
    schema: Schema = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.kind not in JOIN_KINDS:
            raise ValueError(f"unknown join kind {self.kind!r}")
        if self.schema is None:
            left_schema = self.left.schema
            right_schema = self.right.schema
            columns = list(left_schema.columns) + list(right_schema.columns)
            # Outer joins make the non-preserved side nullable; the type
            # system models nullability implicitly (every type admits NULL),
            # so the schema is a plain concatenation.
            object.__setattr__(self, "schema", Schema(columns))

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        left, right = children
        return Join(self.kind, left, right, self.condition)

    def _describe(self) -> str:
        return f"Join({self.kind}, on={self.condition})"


@dataclass(frozen=True)
class UnionAll(PlanNode):
    """Bag union of inputs with positionally compatible schemas."""

    inputs: tuple[PlanNode, ...]

    @property
    def schema(self) -> Schema:  # type: ignore[override]
        return self.inputs[0].schema

    def children(self) -> tuple[PlanNode, ...]:
        return self.inputs

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        return UnionAll(tuple(children))

    def _describe(self) -> str:
        return f"UnionAll({len(self.inputs)} inputs)"


@dataclass(frozen=True)
class AggregateCall:
    """One aggregate in an Aggregate node. ``arg`` is None for COUNT(*)."""

    function: str  # count, count_if, sum, avg, min, max, any_value
    arg: Optional[Expression]
    distinct: bool = False
    output_name: str = ""
    output_type: SqlType = SqlType.VARIANT

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = "*" if self.arg is None else repr(self.arg)
        prefix = "distinct " if self.distinct else ""
        return f"{self.function}({prefix}{inner})"


@dataclass(frozen=True)
class Aggregate(PlanNode):
    """Grouped aggregation. Output = group columns then aggregate columns.

    With no group keys this is a scalar aggregate — the paper's section
    3.3.2 excludes those from incremental refresh, but the stateful
    aggregate rule maintains them as a single implicit group, so the
    properties checker no longer flags them.
    """

    child: PlanNode
    group_exprs: tuple[Expression, ...]
    aggregates: tuple[AggregateCall, ...]
    schema: Schema

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        (child,) = children
        return Aggregate(child, self.group_exprs, self.aggregates, self.schema)

    @property
    def is_scalar(self) -> bool:
        return not self.group_exprs

    def _describe(self) -> str:
        return (f"Aggregate(keys={len(self.group_exprs)}, "
                f"aggs=[{', '.join(map(repr, self.aggregates))}])")


@dataclass(frozen=True)
class Distinct(PlanNode):
    """SELECT DISTINCT: set semantics over the whole row."""

    child: PlanNode

    @property
    def schema(self) -> Schema:  # type: ignore[override]
        return self.child.schema

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        (child,) = children
        return Distinct(child)


@dataclass(frozen=True)
class WindowCall:
    """One window function application.

    All calls in a single :class:`Window` node share the partition keys
    (the builder splits differing partitions into stacked Window nodes).
    ``order_by`` uses bound expressions over the child schema; ``arg`` is
    None for ranking functions and COUNT(*).
    """

    function: str  # row_number, rank, dense_rank, sum, count, avg, min, max, lag, lead
    arg: Optional[Expression]
    order_by: tuple[tuple[Expression, bool], ...]
    offset: int = 1  # for lag/lead
    output_name: str = ""
    output_type: SqlType = SqlType.VARIANT

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.function}(...) over(...)"


@dataclass(frozen=True)
class Window(PlanNode):
    """Partitioned window functions: output schema = child schema plus one
    column per call. Section 3.3.2: only *partitioned* window functions are
    incrementally supported; empty ``partition_exprs`` marks the
    unpartitioned case, which the properties checker rejects for
    incremental mode."""

    child: PlanNode
    partition_exprs: tuple[Expression, ...]
    calls: tuple[WindowCall, ...]
    schema: Schema

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        (child,) = children
        return Window(child, self.partition_exprs, self.calls, self.schema)

    def _describe(self) -> str:
        return (f"Window(partitions={len(self.partition_exprs)}, "
                f"calls={[c.function for c in self.calls]})")


@dataclass(frozen=True)
class Flatten(PlanNode):
    """LATERAL FLATTEN: one output row per element of the array-valued
    ``input_expr``, appending ``<alias>.value`` and ``<alias>.index``."""

    child: PlanNode
    input_expr: Expression
    alias: str
    schema: Schema

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        (child,) = children
        return Flatten(child, self.input_expr, self.alias, self.schema)

    def _describe(self) -> str:
        return f"Flatten({self.alias})"


@dataclass(frozen=True)
class Sort(PlanNode):
    """ORDER BY. Only meaningful at the top of a plan; not differentiable."""

    child: PlanNode
    keys: tuple[tuple[Expression, bool], ...]  # (expr, descending)

    @property
    def schema(self) -> Schema:  # type: ignore[override]
        return self.child.schema

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        (child,) = children
        return Sort(child, self.keys)


@dataclass(frozen=True)
class Limit(PlanNode):
    child: PlanNode
    count: int

    @property
    def schema(self) -> Schema:  # type: ignore[override]
        return self.child.schema

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        (child,) = children
        return Limit(child, self.count)


# ---------------------------------------------------------------------------
# Join analysis
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EquiJoinKeys:
    """The equi-join decomposition of a join condition.

    ``left_keys[i]`` (bound over the left schema) must equal
    ``right_keys[i]`` (bound over the right schema); ``residual`` is the
    remaining predicate bound over the concatenated schema (or None).
    """

    left_keys: tuple[Expression, ...]
    right_keys: tuple[Expression, ...]
    residual: Optional[Expression]


def extract_equi_keys(join: Join) -> EquiJoinKeys:
    """Split a join condition into hashable equi-key pairs and a residual.

    A conjunct qualifies when it is an ``=`` whose two sides each reference
    columns from exactly one (distinct) input. Sides referencing the right
    input are rebased to right-schema positions.
    """
    left_width = len(join.left.schema)
    total_width = left_width + len(join.right.schema)
    right_rebase = {index: index - left_width
                    for index in range(left_width, total_width)}

    left_keys: list[Expression] = []
    right_keys: list[Expression] = []
    residual_parts: list[Expression] = []

    condition = join.condition
    if condition is None:
        return EquiJoinKeys((), (), None)

    for part in conjuncts(condition):
        if isinstance(part, Comparison) and part.op == "=":
            left_refs = part.left.column_indices()
            right_refs = part.right.column_indices()
            left_side_left = left_refs and all(i < left_width for i in left_refs)
            left_side_right = left_refs and all(i >= left_width for i in left_refs)
            right_side_left = right_refs and all(i < left_width for i in right_refs)
            right_side_right = right_refs and all(i >= left_width for i in right_refs)
            if left_side_left and right_side_right:
                left_keys.append(part.left)
                right_keys.append(part.right.remap(right_rebase))
                continue
            if left_side_right and right_side_left:
                left_keys.append(part.right)
                right_keys.append(part.left.remap(right_rebase))
                continue
        residual_parts.append(part)

    residual = conjoin(residual_parts) if residual_parts else None
    return EquiJoinKeys(tuple(left_keys), tuple(right_keys), residual)


def scans_of(plan: PlanNode) -> list[str]:
    """The names of all tables scanned by a plan, in traversal order."""
    return [node.table for node in plan.walk() if isinstance(node, Scan)]


def make_projection_schema(exprs: Sequence[Expression],
                           names: Sequence[str]) -> Schema:
    """Schema for a Project given expressions and output names."""
    return Schema(Column(name, expr.type)
                  for name, expr in zip(names, exprs))
