"""A bounded LRU cache of optimized logical plans.

Plans are immutable once built (frozen expression trees over frozen plan
nodes), so sharing one plan across executions — and across sessions — is
safe. What is *not* safe is reusing a plan built against stale metadata,
so every caller folds its invalidation domain into the key:

* the **catalog DDL epoch** (any CREATE/DROP/ALTER may change name
  resolution, schemas, or view expansions),
* the **function-registry version** (a UDF re-registration rebinds
  implementations into the plan),
* the **query text** — with bind-parameter markers (``?`` / ``:name``)
  left in place, which is what makes the keys *parameter-aware*: every
  re-execution of a prepared statement, whatever its binds, maps to the
  same entry, while the bind values themselves never enter the key.

Stale entries are never served (their key no longer matches) and age out
of the LRU as live keys are touched.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Optional

from repro.plan.logical import PlanNode

#: Default number of plans retained.
DEFAULT_PLAN_CACHE_LIMIT = 256


class PlanCache:
    """Bounded LRU mapping caller-chosen keys to optimized plans.

    Thread-safe: one cache is shared by every session, and the server
    front end prepares statements from many pool threads — the LRU
    reordering is a read-modify-write that must not race evictions.
    """

    def __init__(self, limit: int = DEFAULT_PLAN_CACHE_LIMIT) -> None:
        if limit <= 0:
            raise ValueError("plan cache limit must be positive")
        self._limit = limit
        self._entries: "OrderedDict[Hashable, PlanNode]" = OrderedDict()
        self._mutex = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Optional[PlanNode]:
        with self._mutex:
            plan = self._entries.get(key)
            if plan is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return plan

    def put(self, key: Hashable, plan: PlanNode) -> None:
        with self._mutex:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self._limit:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._entries), "limit": self._limit}
