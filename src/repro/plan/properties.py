"""Plan properties: incrementalizability, determinism, operator inventory.

Section 3.3.2 of the paper defines the operator coverage of incremental
refresh: "Incremental mode is currently supported for projections,
filters, union-all, inner and outer joins, LATERAL FLATTEN, distinct and
grouped aggregations, and partitioned window functions. It is not yet
supported for scalar subqueries, [NOT] (IN | EXISTS), scalar aggregates,
or various specialized operators." We go one step further than the paper:
scalar aggregates ARE incrementally maintainable here — the stateful
aggregate rule treats them as a single implicit group that never vanishes
(:mod:`repro.ivm.aggstate`), and the endpoint-recompute fallback
recomputes that one group — so they no longer force FULL refresh mode.

:func:`incrementalizability` reproduces that check, plus the
nondeterminism rules of section 3.4:

* volatile (non-IMMUTABLE) UDFs block incremental refresh;
* context functions (CURRENT_TIMESTAMP, ...) block incremental refresh:
  their value changes with the data timestamp, so rows computed by earlier
  refreshes would disagree with the defining query evaluated at the
  current data timestamp — a DVS violation. FULL mode recomputes every
  row at each refresh's timestamp, keeping DVS exact (the paper handles
  context functions "on a case-by-case basis"; this is the conservative
  case);
* float-typed join keys and grouping keys are rejected ("we prohibit their
  use only when the nondeterminism would interfere with view maintenance,
  such as joining on a float aggregate key").

:func:`operator_inventory` counts operator classes in a plan using the
category names of the paper's Figure 6; the Figure 6 benchmark aggregates
these over the synthetic DT population.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.expressions import Expression
from repro.engine.types import SqlType
from repro.plan import logical as lp


@dataclass
class Incrementalizability:
    """The result of checking a plan for incremental support."""

    supported: bool
    reasons: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.supported


def _expressions_of(node: lp.PlanNode) -> list[Expression]:
    exprs: list[Expression] = []
    if isinstance(node, lp.Project):
        exprs.extend(node.exprs)
    elif isinstance(node, lp.Filter):
        exprs.append(node.predicate)
    elif isinstance(node, lp.Join) and node.condition is not None:
        exprs.append(node.condition)
    elif isinstance(node, lp.Aggregate):
        exprs.extend(node.group_exprs)
        for call in node.aggregates:
            if call.arg is not None:
                exprs.append(call.arg)
    elif isinstance(node, lp.Window):
        exprs.extend(node.partition_exprs)
        for call in node.calls:
            if call.arg is not None:
                exprs.append(call.arg)
            exprs.extend(expr for expr, __ in call.order_by)
    elif isinstance(node, lp.Flatten):
        exprs.append(node.input_expr)
    elif isinstance(node, lp.Sort):
        exprs.extend(expr for expr, __ in node.keys)
    return exprs


def incrementalizability(plan: lp.PlanNode) -> Incrementalizability:
    """Check whether every operator and expression in ``plan`` is
    incrementally maintainable."""
    reasons: list[str] = []
    for node in plan.walk():
        if isinstance(node, lp.Sort):
            reasons.append("ORDER BY is not incrementally supported")
        elif isinstance(node, lp.Limit):
            reasons.append("LIMIT is not incrementally supported")
        elif isinstance(node, lp.Aggregate):
            for expr in node.group_exprs:
                if expr.type == SqlType.FLOAT:
                    reasons.append(
                        "grouping on a FLOAT key interferes with view "
                        "maintenance (section 3.4)")
        elif isinstance(node, lp.Window):
            if not node.partition_exprs:
                reasons.append(
                    "unpartitioned window functions are not incrementally "
                    "supported (section 3.3.2)")
            for expr in node.partition_exprs:
                if expr.type == SqlType.FLOAT:
                    reasons.append(
                        "partitioning on a FLOAT key interferes with view "
                        "maintenance (section 3.4)")
        elif isinstance(node, lp.Join) and node.condition is not None:
            keys = lp.extract_equi_keys(node)
            for left_key, right_key in zip(keys.left_keys, keys.right_keys):
                if SqlType.FLOAT in (left_key.type, right_key.type):
                    reasons.append(
                        "joining on a FLOAT key interferes with view "
                        "maintenance (section 3.4)")
        for expr in _expressions_of(node):
            if not expr.is_deterministic:
                reasons.append(
                    "volatile (non-IMMUTABLE) functions block incremental "
                    "refresh (section 3.4)")
            if expr.uses_context:
                reasons.append(
                    "context functions (CURRENT_TIMESTAMP, ...) change "
                    "with the data timestamp; incremental refresh would "
                    "leave stale rows (section 3.4)")
    return Incrementalizability(not reasons, reasons)


def is_append_only_plan(plan: lp.PlanNode) -> bool:
    """True when the plan maps insert-only input deltas to insert-only,
    id-unique output deltas, permitting the consolidation skip of section
    5.5.2. That holds for the linear operators plus inner joins;
    aggregation, DISTINCT, windows, and outer joins all convert inserts
    into updates or retractions."""
    for node in plan.walk():
        if isinstance(node, (lp.Scan, lp.Values, lp.Project, lp.Filter,
                             lp.UnionAll, lp.Flatten)):
            continue
        if isinstance(node, lp.Join) and node.kind in ("inner", "cross"):
            continue
        return False
    return True


def uses_context_functions(plan: lp.PlanNode) -> bool:
    """Whether any expression reads the evaluation context (needed when
    deciding if two refreshes at different data timestamps may share
    results)."""
    return any(expr.uses_context
               for node in plan.walk()
               for expr in _expressions_of(node))


#: Figure 6 operator category names.
OPERATOR_CATEGORIES = (
    "filter", "project", "inner_join", "outer_join", "union_all",
    "grouped_aggregate", "distinct", "window_function", "lateral_flatten",
    "scalar_aggregate", "sort_limit",
)


def operator_inventory(plan: lp.PlanNode) -> dict[str, int]:
    """Count operator occurrences by the category names of Figure 6."""
    counts = {category: 0 for category in OPERATOR_CATEGORIES}
    for node in plan.walk():
        if isinstance(node, lp.Filter):
            counts["filter"] += 1
        elif isinstance(node, lp.Project):
            counts["project"] += 1
        elif isinstance(node, lp.Join):
            if node.kind in ("inner", "cross"):
                counts["inner_join"] += 1
            else:
                counts["outer_join"] += 1
        elif isinstance(node, lp.UnionAll):
            counts["union_all"] += 1
        elif isinstance(node, lp.Aggregate):
            if node.is_scalar:
                counts["scalar_aggregate"] += 1
            else:
                counts["grouped_aggregate"] += 1
        elif isinstance(node, lp.Distinct):
            counts["distinct"] += 1
        elif isinstance(node, lp.Window):
            counts["window_function"] += 1
        elif isinstance(node, lp.Flatten):
            counts["lateral_flatten"] += 1
        elif isinstance(node, (lp.Sort, lp.Limit)):
            counts["sort_limit"] += 1
    return counts
