"""Change queries: row-level diffs between table versions."""

from repro.streams.changes import changes_between, changes_since

__all__ = ["changes_between", "changes_since"]
