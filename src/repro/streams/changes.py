"""Change queries over versioned tables (the "Streams" substrate).

Dynamic Tables reuses Snowflake's change-query framework ([5] in the
paper, "What's the Difference? Incremental Processing with Change Queries
in Snowflake"). The primitive is: given two versions of a table, produce
the row-level changes between them.

With copy-on-write micro-partitions this is a set difference on partition
ids: rows of partitions present only in the *old* version are deletions,
rows of partitions present only in the *new* version are insertions.
Consolidation then cancels rows that were merely copied by partition
rewrites — the read-amplification elimination of section 5.5.2 — and
data-equivalent versions (reclustering) contribute nothing by
construction, reproducing the "skip data-equivalent operations"
optimization.
"""

from __future__ import annotations

from repro.engine.relation import columnar_enabled
from repro.ivm.changes import ChangeSet, consolidate
from repro.storage.table import TableVersion, VersionedTable
from repro.util.parallel import fanout_map


def changes_between(table: VersionedTable, old: TableVersion,
                    new: TableVersion) -> ChangeSet:
    """The consolidated row-level changes from ``old`` to ``new``.

    ``old`` must not be newer than ``new``. The result satisfies the
    ``($ROW_ID, $ACTION)`` uniqueness invariant, deletions precede
    insertions, and copied (identical) rows cancel.

    Only the *symmetric difference* of the two versions' partition sets is
    ever read — shared partitions are never materialized — and an interval
    consisting entirely of data-equivalent versions (reclustering) is
    skipped wholesale without touching any partition at all: its copied
    rows would all cancel in consolidation anyway, so the answer is known
    to be empty from version metadata alone (section 5.5.2).
    """
    if old.index > new.index:
        raise ValueError("changes_between requires old.index <= new.index")
    if old.index == new.index:
        return ChangeSet()
    if is_data_equivalent_interval(table, old, new):
        return ChangeSet()

    removed_ids = old.partition_ids - new.partition_ids
    added_ids = new.partition_ids - old.partition_ids

    raw = ChangeSet()
    if columnar_enabled():
        # Struct-of-arrays delta building: each partition contributes its
        # whole row-id and row slices by array extension — no per-row
        # appends, no per-row Change allocation. The per-partition slice
        # materialization (the expensive part) fans out to the refresh's
        # partition pool when one is installed; slices come back in
        # sorted-partition-id order and are combined serially, so the
        # change set is byte-identical to the serial build.
        def slices(partition_id: int) -> tuple:
            partition = table.partition(partition_id)
            return partition.row_ids, partition.row_tuples

        for row_ids, rows in fanout_map("diff", slices,
                                        sorted(removed_ids)):
            raw.delete_many(row_ids, rows)
        for row_ids, rows in fanout_map("diff", slices,
                                        sorted(added_ids)):
            raw.insert_many(row_ids, rows)
    else:  # pre-columnar row-at-a-time path (ablation benchmark)
        for partition_id in sorted(removed_ids):
            for row_id, row in table.partition(partition_id).rows:
                raw.delete(row_id, row)
        for partition_id in sorted(added_ids):
            for row_id, row in table.partition(partition_id).rows:
                raw.insert(row_id, row)
    return consolidate(raw)


def changes_since(table: VersionedTable, old: TableVersion) -> ChangeSet:
    """Changes from ``old`` to the table's current version."""
    return changes_between(table, old, table.current_version)


def is_data_equivalent_interval(table: VersionedTable, old: TableVersion,
                                new: TableVersion) -> bool:
    """True when every version in ``(old, new]`` is flagged
    data-equivalent — the differ can skip reading any data at all
    (section 5.5.2's tractable carve-out of the NP-hard version-skipping
    problem: we skip only when the *entire* interval is data-equivalent)."""
    version = table.version
    return all(version(index).data_equivalent
               for index in range(old.index + 1, new.index + 1))
