"""Fault activation schedules: when an armed rule actually fires.

Three activation shapes, all deterministic given their construction
arguments (so a chaos run replays exactly from its seed):

* :class:`NthHit` / :class:`EveryN` — hit-counter driven;
* :class:`Probability` — a private seeded RNG stream; the k-th matched
  hit draws the k-th variate, independent of wall time or other rules;
* :class:`HlcWindow` — fires while the simulated clock (bound on the
  registry) reads inside ``[start, end)``.

:class:`FaultSchedule` bundles a *seeded random draw* over a set of
points into an armable plan — the chaos property test's input. The same
``(seed, points, count)`` always produces the same plan.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import InjectedFault


class Schedule:
    """Decides whether the ``hit``-th matched arrival fires. ``now`` is
    the registry's simulated-clock reading (None when unbound)."""

    def fires(self, hit: int, detail: dict, now: Optional[int]) -> bool:
        raise NotImplementedError


@dataclass(frozen=True, repr=False)
class NthHit(Schedule):
    """Fire on exactly the nth matched hit (1-based)."""

    n: int

    def fires(self, hit: int, detail: dict, now: Optional[int]) -> bool:
        return hit == self.n

    def __repr__(self) -> str:
        return f"nth_hit({self.n})"


@dataclass(frozen=True, repr=False)
class EveryN(Schedule):
    """Fire on every nth matched hit."""

    n: int

    def fires(self, hit: int, detail: dict, now: Optional[int]) -> bool:
        return hit % self.n == 0

    def __repr__(self) -> str:
        return f"every({self.n})"


class Probability(Schedule):
    """Fire each matched hit with probability ``p``, drawn from a
    private seeded stream: the decision for the k-th hit depends only on
    (seed, k), never on other rules or the wall clock."""

    def __init__(self, p: float, seed: int):
        self.p = p
        self.seed = seed
        self._rng = random.Random(seed)

    def fires(self, hit: int, detail: dict, now: Optional[int]) -> bool:
        return self._rng.random() < self.p

    def __repr__(self) -> str:
        return f"probability({self.p}, seed={self.seed})"


@dataclass(frozen=True, repr=False)
class HlcWindow(Schedule):
    """Fire while the simulated clock reads inside ``[start, end)``.
    Requires the registry's ``clock`` to be bound; with no clock the
    window never fires (chaos runs bind ``db.clock.now``)."""

    start: int
    end: int

    def fires(self, hit: int, detail: dict, now: Optional[int]) -> bool:
        return now is not None and self.start <= now < self.end

    def __repr__(self) -> str:
        return f"hlc_window({self.start}, {self.end})"


def nth_hit(n: int) -> NthHit:
    return NthHit(n)


def every(n: int) -> EveryN:
    return EveryN(n)


def probability(p: float, seed: int) -> Probability:
    return Probability(p, seed)


def hlc_window(start: int, end: int) -> HlcWindow:
    return HlcWindow(start, end)


@dataclass(frozen=True)
class PlannedFault:
    """One entry of a seeded fault plan: arm ``point`` to fire on its
    ``nth`` matched hit."""

    point: str
    nth: int


class FaultSchedule:
    """A seeded, replayable fault plan over a set of injection points.

    ``FaultSchedule.random(seed, points, count)`` draws ``count``
    (point, nth-hit) pairs from a private RNG — the same seed always
    yields the same plan, which is what lets a chaos run be replayed
    exactly and shrunk by seed.
    """

    def __init__(self, seed: int, plan: Sequence[PlannedFault]):
        self.seed = seed
        self.plan = tuple(plan)

    @staticmethod
    def random(seed: int, points: Sequence[str], count: int,
               max_hit: int = 12) -> "FaultSchedule":
        rng = random.Random(seed)
        plan = [PlannedFault(rng.choice(list(points)),
                             rng.randint(1, max_hit))
                for __ in range(count)]
        return FaultSchedule(seed, plan)

    def install(self, registry, match=None) -> list:
        """Arm every planned fault on ``registry``; returns the rules so
        the caller can inspect which ones fired."""
        rules = []
        for index, fault in enumerate(self.plan):
            rules.append(registry.arm(
                fault.point, NthHit(fault.nth),
                error=_fault_error(fault, self.seed, index),
                times=1, match=match,
                description=f"seed={self.seed}#{index}"))
        return rules

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultSchedule(seed={self.seed}, plan={list(self.plan)})"


def _fault_error(fault: PlannedFault, seed: int, index: int):
    def build() -> InjectedFault:
        return InjectedFault(
            f"chaos fault (seed={seed}, #{index}) at {fault.point} "
            f"hit {fault.nth}", point=fault.point)
    return build
