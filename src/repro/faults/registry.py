"""The fault registry: named injection points + armed fault rules.

Deterministic chaos testing needs two properties the usual monkeypatch
approach cannot give:

* **coverage** — the places where the real system fails (storage writes,
  WAL append/fsync, checkpoint serialization, refresh execution, pool
  worker tasks, commit) carry *named* injection points compiled into the
  engine, so a fault schedule can target any of them without knowing the
  call graph;
* **replayability** — activation is schedule-driven
  (:mod:`repro.faults.schedule`): nth-hit counters, seeded probability
  streams, and simulated-clock windows, so the same seed arms the same
  rules and a chaos run replays exactly.

The process-wide registry is reached through :func:`inject`, which the
injection sites call unconditionally. The no-rules fast path is one
attribute load and a dict-emptiness test — the benchmark
(``benchmarks/bench_t15_fault_recovery.py``) gates the armed-but-idle
overhead of the threaded points at under 5%.

Thread safety: rules fire from scheduler coordinator workers and
partition-pool workers concurrently; per-rule hit counters mutate under
the registry mutex. Note that under real thread parallelism the *order*
in which concurrent hits reach a point is scheduling-dependent — an
nth-hit rule deterministically fires on the nth arrival, whichever task
that is. The convergence property the chaos test asserts holds for any
arrival order; runs that must replay victim-exactly run serially.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.errors import InjectedFault
from repro.faults.schedule import Schedule

#: The injection points threaded into the engine. Purely documentary —
#: arming an unknown point is allowed (it just never fires) — but tests
#: assert the threaded set against this list.
KNOWN_POINTS = (
    "storage.apply",       # VersionedTable.apply: installing a version
    "wal.append",          # WriteAheadLog.append: before the frame write
    "wal.torn",            # between frame header and body (leaves a torn tail)
    "wal.fsync",           # before os.fsync (escalates to degraded mode)
    "checkpoint.write",    # checkpoint serialization/installation
    "refresh.execute",     # RefreshEngine, before an attempt begins
    "worker.task",         # WorkerPool task startup (DAG + partition pools)
    "txn.commit",          # Transaction.commit, before validation
)


class FaultRule:
    """One armed fault: a point, an activation schedule, and the error
    to raise. ``times`` bounds how often it fires (None = unlimited);
    ``match`` filters by the injection site's detail dict (e.g. only
    commits that write a particular table)."""

    def __init__(self, point: str, schedule: Schedule,
                 error: Optional[Callable[[], BaseException]] = None,
                 times: Optional[int] = 1,
                 match: Optional[Callable[[dict], bool]] = None,
                 description: str = ""):
        self.point = point
        self.schedule = schedule
        self.error = error
        self.times = times
        self.match = match
        self.description = description or f"{point}:{schedule!r}"
        #: Total times the point was hit while this rule was armed.
        self.hits = 0
        #: Hits that passed the ``match`` filter (what schedules count).
        self.matched = 0
        #: Times this rule actually raised.
        self.fired = 0

    def consider(self, detail: dict,
                 now: Optional[int]) -> Optional[BaseException]:
        """Decide whether this hit fires. Called under the registry
        mutex, so the counters are exact even across threads."""
        self.hits += 1
        if self.times is not None and self.fired >= self.times:
            return None
        if self.match is not None and not self.match(detail):
            return None
        self.matched += 1
        if not self.schedule.fires(self.matched, detail, now):
            return None
        self.fired += 1
        if self.error is not None:
            return self.error()
        return InjectedFault(
            f"injected fault at {self.point} ({self.description})",
            point=self.point)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FaultRule({self.point!r}, {self.schedule!r}, "
                f"fired={self.fired}/{self.times})")


class FaultRegistry:
    """All armed fault rules, keyed by injection point."""

    def __init__(self):
        self._mutex = threading.Lock()
        self._rules: dict[str, list[FaultRule]] = {}
        #: Hit counts per point, maintained only while tracing (so the
        #: common path of a point with no rules stays allocation-free).
        self._trace_hits: dict[str, int] = {}
        self._tracing = False
        #: (point, description) per fired fault, in firing order.
        self.fired_log: list[tuple[str, str]] = []
        #: Simulated-clock reader for window schedules (None = window
        #: schedules never fire). Tests bind ``db.clock.now`` here.
        self.clock: Optional[Callable[[], int]] = None

    # -- arming ------------------------------------------------------------------

    def arm(self, point: str, schedule: Schedule,
            error: Optional[Callable[[], BaseException]] = None,
            times: Optional[int] = 1,
            match: Optional[Callable[[dict], bool]] = None,
            description: str = "") -> FaultRule:
        rule = FaultRule(point, schedule, error, times, match, description)
        with self._mutex:
            self._rules.setdefault(point, []).append(rule)
        return rule

    def disarm(self, rule: FaultRule) -> None:
        with self._mutex:
            rules = self._rules.get(rule.point)
            if rules is None:
                return
            try:
                rules.remove(rule)
            except ValueError:
                return
            if not rules:
                del self._rules[rule.point]

    def clear(self) -> None:
        """Disarm everything and drop all counters/logs — what a chaos
        run does between the fault phase and the convergence phase."""
        with self._mutex:
            self._rules.clear()
            self._trace_hits.clear()
            self.fired_log.clear()

    @property
    def armed(self) -> bool:
        return bool(self._rules)

    def rules_for(self, point: str) -> list[FaultRule]:
        with self._mutex:
            return list(self._rules.get(point, ()))

    # -- tracing -----------------------------------------------------------------

    def trace(self, enabled: bool = True) -> None:
        """Count hits on *every* point (not just armed ones) — used by
        the coverage test to prove each KNOWN_POINTS entry is threaded.
        Off by default: tracing takes the mutex on every hit."""
        with self._mutex:
            self._tracing = enabled
            if not enabled:
                self._trace_hits.clear()

    def hit_counts(self) -> dict[str, int]:
        with self._mutex:
            return dict(self._trace_hits)

    # -- the hot path ------------------------------------------------------------

    def hit(self, point: str, detail: dict) -> None:
        """Evaluate one arrival at an injection point. Raises the first
        rule-produced error, if any."""
        # Unlocked probe: dict reads are atomic in CPython, and a rule
        # armed concurrently with this hit may legitimately miss it.
        if not self._tracing and point not in self._rules:
            return
        error: Optional[BaseException] = None
        with self._mutex:
            if self._tracing:
                self._trace_hits[point] = self._trace_hits.get(point, 0) + 1
            now = self.clock() if self.clock is not None else None
            for rule in self._rules.get(point, ()):
                error = rule.consider(detail, now)
                if error is not None:
                    self.fired_log.append((point, rule.description))
                    break
        if error is not None:
            raise error


#: The process-wide registry every injection site consults.
_REGISTRY = FaultRegistry()


def registry() -> FaultRegistry:
    return _REGISTRY


def inject(point: str, **detail) -> None:
    """The injection point: a no-op unless a rule (or tracing) is armed.

    This is the line threaded into the engine's failure-prone sites; it
    must stay cheap enough to leave compiled in permanently (see the
    idle-overhead gate in ``BENCH_faults.json``).
    """
    reg = _REGISTRY
    if reg._rules or reg._tracing:
        reg.hit(point, detail)
