"""Deterministic fault injection (the chaos-testing subsystem).

Named injection points are compiled into the engine's failure-prone
sites (storage writes, WAL append/fsync, checkpoint serialization,
refresh execution, pool worker tasks, commit); a process-wide
:class:`FaultRegistry` arms schedule-driven rules against them. See
:mod:`repro.faults.registry` for the point list and the hot path,
:mod:`repro.faults.schedule` for the activation shapes, and the README's
"Failure handling & chaos testing" section for how to write a schedule.
"""

from repro.faults.registry import (KNOWN_POINTS, FaultRegistry, FaultRule,
                                   inject, registry)
from repro.faults.schedule import (EveryN, FaultSchedule, HlcWindow, NthHit,
                                   PlannedFault, Probability, Schedule,
                                   every, hlc_window, nth_hit, probability)

__all__ = [
    "KNOWN_POINTS", "FaultRegistry", "FaultRule", "inject", "registry",
    "EveryN", "FaultSchedule", "HlcWindow", "NthHit", "PlannedFault",
    "Probability", "Schedule", "every", "hlc_window", "nth_hit",
    "probability",
]
