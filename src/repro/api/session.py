"""Sessions: the per-connection layer of the public API.

A :class:`Session` models one client connection to the database (the
multi-tenant frontend the paper's system places in front of the
refresh/IVM substrate). Each session carries its own state on top of the
shared :class:`~repro.txn.manager.TransactionManager`:

* a **default warehouse** — used by ``CREATE DYNAMIC TABLE`` statements
  that omit the WAREHOUSE clause;
* an **AS-OF time** — when set, every SELECT in the session reads the
  snapshot at that wall time (time travel as session state);
* a **role** — surfaced to queries through ``CURRENT_ROLE``;
* an optional **open transaction** — see below.

Statements enter through :meth:`execute` / :meth:`query` (one-shot),
:meth:`prepare` (repeated execution with binds, plan-cache backed), or
:meth:`cursor` (DB-API-flavored streaming reads). All three cross the same
**error boundary**: any error escaping the session carries the offending
SQL on its ``sql`` attribute, and internal Python exceptions (KeyError,
ValueError, ...) are wrapped as :class:`~repro.errors.StatementError` — a
``UserError`` subtype — instead of leaking raw.

Transactions
------------

By default every statement auto-commits, exactly as before. An explicit
transaction — opened with :meth:`begin`, the :meth:`transaction` context
manager, or the SQL statement ``BEGIN`` — holds one open
:class:`~repro.txn.manager.Transaction` across statements:

* reads see the snapshot taken at BEGIN **plus the transaction's own
  staged writes** (read-your-writes);
* writes stage into the transaction and become visible to other sessions
  only at COMMIT, all under one HLC commit timestamp;
* ``SAVEPOINT name`` / ``ROLLBACK TO name`` checkpoint and restore the
  staged-write state without closing the transaction;
* an execution error mid-transaction **poisons** it: every further
  statement fails until ``ROLLBACK`` (or ``ROLLBACK TO`` a savepoint,
  which un-poisons);
* COMMIT may raise :class:`~repro.errors.LockConflict` under snapshot
  isolation's first-committer-wins rule — the transaction is then rolled
  back automatically and the caller retries (the server front end in
  :mod:`repro.server` automates the retry loop);
* ``session.autocommit = False`` gives DB-API connection semantics: the
  first statement implicitly opens a transaction and ``commit()`` /
  ``rollback()`` close it.

AS-OF session state and :meth:`query_at` bypass the open transaction —
they are historical reads against the committed store. DDL is **not**
transactional: it applies to the catalog immediately even inside an open
transaction.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

from repro.analysis.analyzer import analyze_bound_query, analyze_statement
from repro.analysis.diagnostics import AnalysisReport
from repro.api.prepared import ParameterSpec, PreparedStatement
from repro.api.results import QueryResult
from repro.engine import types as t
from repro.engine.executor import evaluate, stream_evaluate
from repro.engine.expressions import EvalContext, compile_expression
from repro.engine.schema import Column, Schema
from repro.engine.types import Value
from repro.core.dynamic_table import (apply_policy_options,
                                      encode_option_detail)
from repro.errors import (AnalysisError, CatalogError, LockConflict,
                          ParseError, ReproError, StatementError,
                          TransactionError, UserError)
from repro.plan import logical as lp
from repro.plan.builder import bind_expression, build_plan
from repro.plan.rewrite import optimize
from repro.sql import nodes as n
from repro.sql.parser import parse_prepared, parse_statements
from repro.txn.manager import Transaction
from repro.util.timeutil import Timestamp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.cursor import Cursor
    from repro.api.database import Database

#: Session settings and their validators.
_SETTING_NAMES = ("warehouse", "as_of", "role", "analyze_level")

#: Internal exception types the boundary converts to StatementError;
#: anything else non-Repro (e.g. MemoryError) keeps propagating raw.
_INTERNAL_EXCEPTIONS = (KeyError, ValueError, TypeError, IndexError,
                        AttributeError, ZeroDivisionError)

#: Transaction-control statements: never trigger an implicit BEGIN and
#: (mostly) remain executable on a poisoned transaction.
_CONTROL_STATEMENTS = (n.BeginTransaction, n.CommitTransaction,
                       n.RollbackTransaction, n.Savepoint)


@contextmanager
def statement_boundary(sql: str):
    """The API error boundary: attach the offending SQL to every
    :class:`ReproError` passing through, and wrap raw internal exceptions
    as :class:`StatementError` so callers never see a bare KeyError."""
    try:
        yield
    except ReproError as exc:
        if getattr(exc, "sql", None) is None:
            exc.sql = sql
        raise
    except _INTERNAL_EXCEPTIONS as exc:
        raise StatementError(
            f"internal error: {type(exc).__name__}: {exc}",
            sql=sql) from exc


class Session:
    """One connection's view of the database."""

    def __init__(self, database: "Database", session_id: int):
        self.database = database
        self.id = session_id
        self._warehouse: Optional[str] = None
        self._as_of: Optional[Timestamp] = None
        self._role: str = "sysadmin"
        self._analyze_level: str = "warn"
        self._autocommit = True
        self._txn: Optional[Transaction] = None
        self._txn_began_at: Timestamp = 0
        self._txn_error: Optional[str] = None
        #: Transaction covering one executemany batch (no statement-level
        #: commits while set); distinct from the user-visible ``_txn``.
        self._batch_txn: Optional[Transaction] = None

    # -- settings ------------------------------------------------------------

    @property
    def settings(self) -> dict:
        """A snapshot of the session settings."""
        return {"warehouse": self._warehouse, "as_of": self._as_of,
                "role": self._role, "analyze_level": self._analyze_level}

    def set_setting(self, name: str, value: object) -> None:
        if name == "warehouse":
            self.use_warehouse(value)  # type: ignore[arg-type]
        elif name == "as_of":
            self.set_as_of(value)  # type: ignore[arg-type]
        elif name == "role":
            self.set_role(value)  # type: ignore[arg-type]
        elif name == "analyze_level":
            self.set_analyze_level(value)  # type: ignore[arg-type]
        else:
            raise UserError(
                f"unknown session setting {name!r} "
                f"(expected one of {', '.join(_SETTING_NAMES)})")

    def use_warehouse(self, name: Optional[str]) -> None:
        """Set (or clear) the session's default warehouse."""
        if name is not None and not self.database.warehouses.exists(name):
            raise CatalogError(f"unknown warehouse: {name}")
        self._warehouse = name

    def set_as_of(self, wall: Optional[Timestamp]) -> None:
        """Pin the session's reads to the snapshot at ``wall`` (None
        returns to reading the current snapshot)."""
        if wall is not None and not isinstance(wall, int):
            raise UserError(f"AS-OF time must be a timestamp, got {wall!r}")
        self._as_of = wall

    @contextmanager
    def as_of(self, wall: Timestamp):
        """Temporarily pin reads to the snapshot at ``wall``."""
        saved = self._as_of
        self.set_as_of(wall)
        try:
            yield self
        finally:
            self._as_of = saved

    def set_role(self, role: str) -> None:
        if not isinstance(role, str) or not role:
            raise UserError(f"role must be a non-empty string, got {role!r}")
        self._role = role

    def set_analyze_level(self, level: str) -> None:
        """Set the strictness of the static analyzer for this session:
        ``"warn"`` (the default) attaches diagnostics without blocking,
        ``"error"`` rejects any statement whose analysis reports a
        warning or error before it executes."""
        if level not in ("warn", "error"):
            raise UserError(
                f"analyze_level must be 'warn' or 'error', got {level!r}")
        self._analyze_level = level

    # -- transactions --------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        """Whether an explicit transaction is open on this session."""
        return self._txn is not None

    @property
    def autocommit(self) -> bool:
        """DB-API autocommit mode. True (the default) commits every
        statement individually; False opens an implicit transaction on the
        first statement, closed by :meth:`commit` / :meth:`rollback`."""
        return self._autocommit

    @autocommit.setter
    def autocommit(self, value: bool) -> None:
        if value and self._txn is not None:
            raise TransactionError(
                "cannot enable autocommit with a transaction in progress; "
                "COMMIT or ROLLBACK first")
        self._autocommit = bool(value)

    def begin(self) -> None:
        """Open an explicit transaction (SQL: ``BEGIN``).

        The snapshot is the latest HLC point: everything committed so far
        is visible, every later commit — even within the same simulated
        instant — is not.
        """
        if self._txn is not None:
            raise TransactionError("a transaction is already in progress")
        self._txn = self.database.txns.begin_at_latest()
        self._txn_began_at = self.database.clock.now()
        self._txn_error = None

    def commit(self) -> None:
        """Commit the open transaction (SQL: ``COMMIT``).

        A no-op when no transaction is open (DB-API convention). On
        failure — a first-committer-wins conflict or a lock timeout — the
        transaction is rolled back automatically and the error re-raised;
        the session is immediately usable (callers retry from BEGIN).
        """
        txn = self._txn
        if txn is None:
            return
        if self._txn_error is not None:
            raise TransactionError(
                f"cannot COMMIT: current transaction is aborted "
                f"({self._txn_error}); issue ROLLBACK")
        try:
            txn.commit()
        except BaseException:
            self._txn = None
            self._txn_error = None
            if txn.committed is None and not txn.aborted:
                txn.abort()
            raise
        self._txn = None
        self._txn_error = None

    def rollback(self) -> None:
        """Discard the open transaction (SQL: ``ROLLBACK``); clears the
        poisoned state. A no-op when no transaction is open."""
        txn = self._txn
        self._txn = None
        self._txn_error = None
        if txn is not None and txn.committed is None and not txn.aborted:
            txn.abort()

    def savepoint(self, name: str) -> None:
        """Checkpoint the open transaction (SQL: ``SAVEPOINT name``)."""
        if self._txn is None:
            raise TransactionError("SAVEPOINT requires an open transaction")
        self._txn.savepoint(name)

    def rollback_to(self, name: str) -> None:
        """Restore the open transaction to a savepoint (SQL: ``ROLLBACK
        TO name``); the transaction stays open and is un-poisoned."""
        if self._txn is None:
            raise TransactionError(
                "ROLLBACK TO requires an open transaction")
        self._txn.rollback_to(name)
        self._txn_error = None

    @contextmanager
    def transaction(self):
        """Scoped transaction: BEGIN on entry; COMMIT on clean exit,
        ROLLBACK when the body raises::

            with session.transaction():
                session.execute("INSERT INTO t VALUES (1)")
                session.execute("UPDATE t SET a = a + 1")
        """
        self.begin()
        try:
            yield self
        except BaseException:
            self.rollback()
            raise
        else:
            self.commit()

    def _active_txn(self) -> Optional[Transaction]:
        return self._txn if self._txn is not None else self._batch_txn

    def _poison(self, exc: BaseException) -> None:
        """Mark the open transaction as failed: nothing but ROLLBACK (or
        ROLLBACK TO a savepoint) will be accepted until then."""
        if self._txn is not None and self._txn_error is None:
            self._txn_error = str(exc).split("\n", 1)[0]

    @contextmanager
    def _execution_guard(self):
        try:
            yield
        except Exception as exc:
            self._poison(exc)
            raise

    @contextmanager
    def _statement_scope(self, sql: str):
        """Error boundary + transaction poisoning, as one scope (the
        cursor's fetch path uses it for errors surfacing mid-stream)."""
        with self._execution_guard():
            with statement_boundary(sql):
                yield

    def _pre_statement(self, statement: n.Statement) -> None:
        """Per-statement transaction gatekeeping: reject anything but
        ROLLBACK on a poisoned transaction, and open the implicit
        transaction when autocommit is off."""
        if self._txn_error is not None:
            raise TransactionError(
                f"current transaction is aborted by a prior error "
                f"({self._txn_error}); issue ROLLBACK")
        if (not self._autocommit and self._txn is None
                and self._batch_txn is None
                and not isinstance(statement, _CONTROL_STATEMENTS)):
            self.begin()

    #: Attempt budget of one auto-commit DML statement under contention.
    _AUTOCOMMIT_ATTEMPTS = 5

    def _stage_autocommit(self, stage):
        """Run ``stage(txn)`` in the transaction a DML statement belongs
        to: the session's open (or batch) transaction — left open — or an
        ephemeral one committed here (the auto-commit path).

        Ephemeral transactions retry on :class:`LockConflict` — a
        concurrent committer winning the first-committer-wins race, or a
        lock wait timing out — from a fresh snapshot, so single-statement
        auto-commit DML under the server behaves like the one-statement
        transaction it is, instead of surfacing retryable races.
        """
        active = self._active_txn()
        if active is not None:
            return stage(active)
        last_conflict: Optional[BaseException] = None
        for __ in range(self._AUTOCOMMIT_ATTEMPTS):
            txn = self.database.txns.begin_at_latest()
            try:
                result = stage(txn)
                txn.commit()
                return result
            except LockConflict as exc:
                if txn.committed is None and not txn.aborted:
                    txn.abort()
                last_conflict = exc
            except BaseException:
                if txn.committed is None and not txn.aborted:
                    txn.abort()
                raise
        assert last_conflict is not None
        raise last_conflict

    @contextmanager
    def _batch_transaction(self) -> Iterator[None]:
        """One transaction covering a whole ``executemany`` batch, so a
        mid-batch error rolls back every bind set (no partial commit).
        Inside an explicit transaction the batch just stages there."""
        if self._txn is not None or self._batch_txn is not None:
            yield
            return
        txn = self.database.txns.begin_at_latest()
        self._batch_txn = txn
        try:
            yield
            txn.commit()
        except BaseException:
            if txn.committed is None and not txn.aborted:
                txn.abort()
            raise
        finally:
            self._batch_txn = None

    # -- execution entry points ----------------------------------------------

    def prepare(self, sql: str) -> PreparedStatement:
        """Parse ``sql`` once into a reusable :class:`PreparedStatement`.

        SELECTs are planned eagerly (warming the shared plan cache),
        which is also when bind-parameter types are inferred from their
        comparison/arithmetic contexts — a parameter used in conflicting
        type contexts raises a typed ``UserError`` here, at prepare time,
        rather than failing mid-execution.
        """
        with statement_boundary(sql):
            statement, parameters = parse_prepared(sql)
            spec = ParameterSpec(parameters)
            prepared = PreparedStatement(self, sql, statement, spec)
            if prepared.is_query:
                prepared.plan()  # plan eagerly (and warm the shared cache)
            return prepared

    def execute(self, sql: str, binds: object = None,
                ) -> Optional[QueryResult]:
        """Execute a single statement; returns rows for SELECTs.

        One-shot statements are parsed and planned per call; use
        :meth:`prepare` when the same statement runs repeatedly.
        """
        with statement_boundary(sql):
            statement, parameters = parse_prepared(sql)
            spec = ParameterSpec(parameters)
            values = spec.bind(binds)
            result, __ = self._dispatch(statement, spec, values)
            return result

    def query(self, sql: str, binds: object = None) -> QueryResult:
        result = self.execute(sql, binds)
        if result is None:
            raise UserError("statement did not return rows")
        return result

    def query_at(self, sql: str, wall: Timestamp,
                 binds: object = None) -> QueryResult:
        """Time travel: evaluate a query against the snapshot at ``wall``.

        This is the oracle of the paper's randomized testing (section
        6.1): "if you run the defining query as of the data timestamp, you
        should get the same result as in the DT." Works inside an open
        transaction too — the read is historical and ignores staged
        writes.
        """
        with statement_boundary(sql):
            statement, parameters = parse_prepared(sql)
            if not isinstance(statement, n.Query):
                raise UserError("query_at requires a SELECT")
            spec = ParameterSpec(parameters)
            values = spec.bind(binds)
            plan = self._plan_select(statement.select, spec)
            return self._evaluate_select(plan, values, wall=wall)

    def execute_script(self, sql: str) -> list[Optional[QueryResult]]:
        """Execute a ``;``-separated script (no bind parameters).

        Transaction control works textually: a script may bracket its
        statements with ``BEGIN; ...; COMMIT``.
        """
        with statement_boundary(sql):
            statements = parse_statements(sql)
        results = []
        empty = ParameterSpec()
        for statement in statements:
            with statement_boundary(sql):
                results.append(self._dispatch(statement, empty, ())[0])
        return results

    def cursor(self) -> "Cursor":
        from repro.api.cursor import Cursor

        return Cursor(self)

    def analyze(self, sql: str) -> AnalysisReport:
        """Statically analyze one statement without executing it.

        Returns an :class:`~repro.analysis.AnalysisReport`: structured
        :class:`~repro.analysis.Diagnostic` objects with stable
        ``RPR0xx`` codes, severities, source positions, and fix hints,
        plus the statically inferred output schema when the statement is
        a query that binds. Problems *in the statement* never raise —
        they come back as diagnostics (a syntax error is an ``RPR001``
        report, not a :class:`~repro.errors.ParseError`).
        """
        with statement_boundary(sql):
            try:
                statement, parameters = parse_prepared(sql)
            except ParseError as exc:
                from repro.analysis.analyzer import diagnostic_from_error

                return AnalysisReport(sql, (diagnostic_from_error(exc),))
            report = analyze_statement(
                statement, self.database.catalog, self.database.registry,
                parameters=ParameterSpec(parameters), sql=sql)
            select = getattr(statement, "select", None)
            if isinstance(select, n.Select):
                extra = self._durability_diagnostics(select)
                if extra:
                    report = AnalysisReport(sql,
                                            report.diagnostics + extra,
                                            schema=report.schema)
            return report

    def _durability_diagnostics(self, select: n.Select) -> tuple:
        """RPR031 for referenced dynamic tables whose aggregate
        accumulator state is not covered by the latest checkpoint
        (durable databases only; in-memory databases have nothing to
        restore, so the diagnostic never fires)."""
        durability = self.database.durability
        if durability is None:
            return ()
        from repro.analysis.diagnostics import make_diagnostic
        from repro.core.evolution import collect_source_names

        try:
            names = sorted(collect_source_names(select,
                                                self.database.catalog))
        except ReproError:
            return ()  # binding problems are already reported as RPR00x
        diagnostics = []
        for name in names:
            try:
                entry = self.database.catalog.get(name)
            except ReproError:
                continue
            if entry.kind != "dynamic table":
                continue
            if durability.agg_recovery_status(entry.payload) == "rebuild":
                diagnostics.append(make_diagnostic(
                    "RPR031",
                    f"dynamic table {name!r} carries aggregate state not "
                    f"covered by the latest checkpoint; after a restart "
                    f"its next incremental refresh rebuilds the "
                    f"accumulators",
                    hint="run Database.checkpoint() to capture it"))
        return tuple(diagnostics)

    def _enforce_strict(self, statement: n.Statement,
                        spec: ParameterSpec) -> None:
        """Strict mode (``analyze_level="error"``): refuse to execute a
        statement whose analysis reports warnings or errors."""
        if self._analyze_level != "error":
            return
        report = analyze_statement(
            statement, self.database.catalog, self.database.registry,
            parameters=spec)
        violations = report.strict_violations
        if violations:
            raise AnalysisError(
                "statement rejected by strict analysis:\n"
                + "\n".join(d.render() for d in violations),
                diagnostics=violations)

    def explain(self, sql: str, optimized: bool = True) -> str:
        """The bound (and by default optimized) logical plan of a query,
        rendered as an indented tree.

        Filters directly over scans additionally report zone-map pruning
        statistics — how many of the table's micro-partitions the
        columnar scan path reads versus skips under the filter's
        pushed-down bounds, resolved against the current snapshot — so
        partition pruning is observable without tracing the executor.

        Aggregate and Distinct nodes report their incremental refresh
        strategy: ``stateful`` (the O(|delta|) accumulator fold of
        :mod:`repro.ivm.aggstate`) or ``recompute`` (affected-group
        endpoint recomputation), with the reason when the node cannot be
        maintained statefully.
        """
        with statement_boundary(sql):
            statement, parameters = parse_prepared(sql)
            if not isinstance(statement, n.Query):
                raise UserError("explain requires a SELECT")
            plan = build_plan(statement.select, self.database.catalog,
                              self.database.registry,
                              parameters=ParameterSpec(parameters))
            if optimized:
                plan = optimize(plan)
            lines = [plan.pretty()]
            from repro.engine.executor import scan_pruning_stats

            # Stats read through the same resolver a SELECT would use
            # (open transaction / AS-OF included), and are strictly
            # best-effort: EXPLAIN must keep working on plans whose
            # tables cannot be read yet (e.g. an uninitialized dynamic
            # table), exactly as it did before it reported stats.
            try:
                reader, __ = self._read_state(())
                stats = scan_pruning_stats(plan, reader)
            except ReproError:
                stats = []
            for table, total, scanned, skipped in stats:
                lines.append(
                    f"-- pruning {table}: {scanned}/{total} partitions "
                    f"scanned ({skipped} skipped by zone maps)")
            from repro.ivm.aggstate import refresh_strategy

            for node, strategy, reason in refresh_strategy(plan):
                detail = ("O(|delta|) accumulator fold" if strategy == "stateful"
                          else f"affected-group endpoint recompute: {reason}")
                lines.append(
                    f"-- refresh {node._describe()}: {strategy} ({detail})")
            # Parallel-refresh observability, same `-- <section> ...`
            # format: the parallelism each referenced DT's most recent
            # executed refresh actually chose — its dependency-wave
            # placement and DAG worker count, and/or the partition
            # fan-out its delta work used.
            lines.extend(self._parallel_lines(statement.select))
            # Failure-driven staleness, same `-- <section> ...` format:
            # which referenced DTs are serving old data because they are
            # suspended, failing, or skipping behind a failed upstream.
            lines.extend(self._staleness_lines(statement.select))
            # Analyzer warnings, in the same `-- <section> ...` format as
            # the pruning and refresh-strategy reports above.
            report = analyze_bound_query(statement.select, plan, sql=sql)
            for diag in report.strict_violations:
                lines.append(f"-- analysis {diag.render()}")
            # Durability state, in the same `-- <section> ...` format:
            # what a process restart would replay, and which referenced
            # DTs would restore their aggregate state exactly.
            durability = self.database.durability
            if durability is not None:
                status = durability.status()
                checkpoint_note = (
                    f"last checkpoint seq {status['last_checkpoint_seq']}"
                    if status["last_checkpoint_seq"]
                    else "no checkpoint yet")
                lines.append(
                    f"-- durability wal: {status['wal_bytes']} bytes, "
                    f"{status['records_since_checkpoint']} records to "
                    f"replay on restart ({checkpoint_note})")
                from repro.core.evolution import collect_source_names

                try:
                    names = sorted(collect_source_names(
                        statement.select, self.database.catalog))
                except ReproError:
                    names = []
                for name in names:
                    try:
                        entry = self.database.catalog.get(name)
                    except ReproError:
                        continue
                    if entry.kind != "dynamic table":
                        continue
                    agg = durability.agg_recovery_status(entry.payload)
                    if agg is None:
                        continue
                    lines.append(
                        f"-- durability {name}: aggregate state "
                        + ("restored exactly after a restart"
                           if agg == "intact"
                           else "rebuilt on the next refresh after a "
                                "restart"))
            return "\n".join(lines)

    def _parallel_lines(self, select: n.Select) -> list[str]:
        """``-- parallel <dt>: ...`` EXPLAIN lines for every referenced
        DT whose most recent executed refresh recorded parallelism."""
        from repro.core.evolution import collect_source_names

        try:
            names = sorted(collect_source_names(select,
                                                self.database.catalog))
        except ReproError:
            return []
        lines: list[str] = []
        for name in names:
            try:
                entry = self.database.catalog.get(name)
            except ReproError:
                continue
            if entry.kind != "dynamic table":
                continue
            for past in reversed(entry.payload.refresh_history):
                if past.skipped:
                    continue
                info = past.parallel
                if info:
                    parts = []
                    if "wave" in info:
                        parts.append(f"wave {info['wave']}/{info['waves']}, "
                                     f"workers={info['workers']}")
                    if "partition_tasks" in info:
                        parts.append(
                            f"partition fan-out={info['partition_workers']} "
                            f"({info['partition_tasks']} tasks)")
                    lines.append(f"-- parallel {name}: " + ", ".join(parts))
                break
        return lines

    def _staleness_lines(self, select: n.Select) -> list[str]:
        """``-- staleness <dt>: ...`` EXPLAIN lines for every referenced
        DT serving stale data because of failures (its own or an
        upstream's) — section 3.3.3's graceful degradation made visible
        at query time."""
        from repro.core.evolution import collect_source_names
        from repro.scheduler.liveness import staleness_report
        from repro.util.timeutil import format_duration

        try:
            names = sorted(collect_source_names(select,
                                                self.database.catalog))
        except ReproError:
            return []
        dts = []
        for name in names:
            try:
                entry = self.database.catalog.get(name)
            except ReproError:
                continue
            if entry.kind == "dynamic table":
                dts.append(entry.payload)
        lines: list[str] = []
        now = self.database.clock.now()
        for entry in staleness_report(dts, now):
            if entry.serving is None:
                serving = "no readable version yet"
            else:
                lag = format_duration(entry.lag) if entry.lag else "0 seconds"
                serving = (f"serving data as of t={entry.serving} "
                           f"({lag} behind)")
            lines.append(f"-- staleness {entry.dt_name}: {entry.cause} — "
                         f"{serving}; {entry.detail}")
        return lines

    # -- prepared-statement execution (called by PreparedStatement) ----------

    def _execute_prepared(self, prepared: PreparedStatement,
                          binds: object) -> tuple[Optional[QueryResult], int]:
        with statement_boundary(prepared.sql):
            values = prepared.spec.bind(binds)
            if prepared.is_query:
                self._pre_statement(prepared.statement)
                self._enforce_strict(prepared.statement, prepared.spec)
                with self._execution_guard():
                    result = self._evaluate_select(prepared.plan(), values)
                return result, len(result.rows)
            return self._dispatch(prepared.statement, prepared.spec, values)

    def _executemany_prepared(self, prepared: PreparedStatement,
                              bind_sets: Iterable[object]) -> int:
        with statement_boundary(prepared.sql):
            statement = prepared.statement
            self._pre_statement(statement)
            # Unlike single statements, the whole batch runs inside the
            # guard: a mid-batch bind error inside an *explicit*
            # transaction leaves earlier bind sets staged there, so the
            # transaction must poison until the user rolls back.
            with self._execution_guard():
                if isinstance(statement, n.Insert) and statement.rows:
                    return self._insert_many(statement, prepared.spec,
                                             bind_sets)
                total = 0
                with self._batch_transaction():
                    for binds in bind_sets:
                        values = prepared.spec.bind(binds)
                        __, rowcount = self._dispatch_inner(
                            statement, prepared.spec, values)
                        total += max(rowcount, 0)
                return total

    def _stream_prepared(self, prepared: PreparedStatement, binds: object,
                         ) -> tuple[Schema, Iterator[list]]:
        """Schema + per-micro-partition batch iterator for a SELECT (the
        cursor's read path); falls back to one materialized batch when the
        plan shape (or an open transaction's overlay read) cannot
        stream."""
        with statement_boundary(prepared.sql):
            if not prepared.is_query:
                raise UserError("cannot stream a non-SELECT statement")
            self._pre_statement(prepared.statement)
            # Bind validation happens before the statement reaches the
            # engine, so a bad bind never poisons an open transaction
            # (same contract as execute / prepared execution).
            values = prepared.spec.bind(binds)
            with self._execution_guard():
                plan = prepared.plan()
                reader, ctx = self._read_state(values)
                batches = stream_evaluate(plan, reader, ctx)
                if batches is None:
                    relation = evaluate(plan, reader, ctx)
                    pairs = list(relation.pairs())
                    batches = iter([pairs] if pairs else [])
                return plan.schema, batches

    # -- reads ---------------------------------------------------------------

    @property
    def _read_wall(self) -> Timestamp:
        return (self._as_of if self._as_of is not None
                else self.database.clock.now())

    def _read_state(self, values: tuple[Value, ...],
                    wall: Optional[Timestamp] = None):
        if wall is None and self._as_of is None:
            txn = self._active_txn()
            if txn is not None:
                # Reads inside a transaction resolve through it: the
                # snapshot taken at BEGIN plus the txn's staged writes.
                ts = (self._txn_began_at if txn is self._txn
                      else self.database.clock.now())
                return txn, EvalContext(timestamp=ts, role=self._role,
                                        params=values)
        ts = wall if wall is not None else self._read_wall
        if wall is None and self._as_of is None:
            # Default reads take an HLC-consistent snapshot (never a torn
            # multi-table commit); CURRENT_TIMESTAMP still reports now.
            reader = self.database.txns.reader()
        else:
            reader = self.database.txns.reader(ts)
        ctx = EvalContext(timestamp=ts, role=self._role, params=values)
        return reader, ctx

    def _plan_select(self, select: n.Select,
                     spec: ParameterSpec) -> lp.PlanNode:
        return optimize(build_plan(select, self.database.catalog,
                                   self.database.registry, parameters=spec))

    def _evaluate_select(self, plan: lp.PlanNode, values: tuple[Value, ...],
                         wall: Optional[Timestamp] = None) -> QueryResult:
        reader, ctx = self._read_state(values, wall)
        return QueryResult.from_relation(evaluate(plan, reader, ctx))

    # -- statement dispatch --------------------------------------------------

    def _dispatch(self, statement: n.Statement, spec: ParameterSpec,
                  values: tuple[Value, ...],
                  ) -> tuple[Optional[QueryResult], int]:
        """Execute one parsed statement; returns (rows-or-None, rowcount).

        ``rowcount`` follows DB-API: rows affected for DML, row count for
        SELECTs, -1 for DDL and control statements.
        """
        # Transaction control first: ROLLBACK must work on a poisoned
        # transaction, and COMMIT of one wants its specific error.
        if isinstance(statement, n.RollbackTransaction):
            if statement.savepoint is not None:
                self.rollback_to(statement.savepoint)
            else:
                self.rollback()
            return None, -1
        if isinstance(statement, n.CommitTransaction):
            self.commit()
            return None, -1
        self._pre_statement(statement)
        if isinstance(statement, n.BeginTransaction):
            self.begin()
            return None, -1
        if isinstance(statement, n.Savepoint):
            self.savepoint(statement.name)
            return None, -1
        self._enforce_strict(statement, spec)
        with self._execution_guard():
            return self._dispatch_inner(statement, spec, values)

    def _dispatch_inner(self, statement: n.Statement, spec: ParameterSpec,
                        values: tuple[Value, ...],
                        ) -> tuple[Optional[QueryResult], int]:
        db = self.database
        if isinstance(statement, n.Query):
            plan = self._plan_select(statement.select, spec)
            result = self._evaluate_select(plan, values)
            return result, len(result.rows)
        if isinstance(statement, n.CreateTable):
            schema = Schema(Column(col.name, t.type_from_name(col.type_name))
                            for col in statement.columns)
            db.catalog.create_table(statement.name, schema,
                                    or_replace=statement.or_replace,
                                    if_not_exists=statement.if_not_exists)
            return None, -1
        if isinstance(statement, n.CreateView):
            db.catalog.create_view(statement.name, "", statement.query,
                                   or_replace=statement.or_replace)
            return None, -1
        if isinstance(statement, n.CreateDynamicTable):
            warehouse = statement.warehouse or self._warehouse
            if warehouse is None:
                raise UserError(
                    "dynamic table requires WAREHOUSE (no session default "
                    "warehouse is set)")
            db.create_dynamic_table(
                statement.name, statement.query,
                target_lag=statement.target_lag,
                warehouse=warehouse,
                refresh_mode=statement.refresh_mode,
                initialize=statement.initialize,
                or_replace=statement.or_replace)
            return None, -1
        if isinstance(statement, n.Insert):
            return None, self._run_insert(statement, spec, values)
        if isinstance(statement, n.Delete):
            return None, self._run_delete(statement, spec, values)
        if isinstance(statement, n.Update):
            return None, self._run_update(statement, spec, values)
        if isinstance(statement, n.Drop):
            db.catalog.drop(statement.name, statement.kind,
                            statement.if_exists)
            return None, -1
        if isinstance(statement, n.Undrop):
            db.catalog.undrop(statement.name, statement.kind)
            return None, -1
        if isinstance(statement, n.AlterDynamicTable):
            dt = db.dynamic_table(statement.name)
            detail = statement.action
            if statement.action == "suspend":
                dt.suspend()
            elif statement.action == "resume":
                dt.resume()
            elif statement.action == "refresh":
                db.refresh_dynamic_table(statement.name)
            elif statement.action == "set":
                options = dict(statement.options)
                apply_policy_options(dt, options)
                # Round-trippable detail string: recovery replays the
                # policy change from the DDL log.
                detail = encode_option_detail(options)
            db.catalog.log_alter("dynamic table", statement.name, detail)
            return None, -1
        if isinstance(statement, n.AlterTableRename):
            db.catalog.rename(statement.name, statement.new_name)
            return None, -1
        if isinstance(statement, n.CloneEntity):
            if statement.kind == "dynamic table":
                db.clone_dynamic_table(statement.source, statement.name)
            else:
                db.clone_table(statement.source, statement.name)
            return None, -1
        if isinstance(statement, n.Recluster):
            db.recluster(statement.name)
            return None, -1
        raise UserError(f"unsupported statement: {type(statement).__name__}")

    # -- DML -----------------------------------------------------------------

    def _write_ctx(self, values: tuple[Value, ...]) -> EvalContext:
        # DML always writes against *now* — AS-OF pins reads, not writes.
        return EvalContext(timestamp=self.database.clock.now(),
                           role=self._role, params=values)

    def _eval_literal_row(self, exprs, spec: ParameterSpec,
                          ctx: EvalContext) -> tuple:
        registry = self.database.registry
        return tuple(
            bind_expression(expr, Schema(()), registry,
                            parameters=spec).eval((), ctx)
            for expr in exprs)

    def _coerce_row(self, schema: Schema, columns, values: tuple) -> tuple:
        if columns:
            index_of = {name: position
                        for position, name in enumerate(columns)}
            if len(values) != len(columns):
                raise UserError("INSERT arity mismatch")
            row = []
            for column in schema:
                position = index_of.get(column.name)
                row.append(t.cast_value(values[position], column.type)
                           if position is not None else None)
            return tuple(row)
        if len(values) != len(schema):
            raise UserError(
                f"INSERT arity mismatch: expected {len(schema)} values, "
                f"got {len(values)}")
        return tuple(t.cast_value(value, column.type)
                     for value, column in zip(values, schema))

    def _insert_rows_of(self, statement: n.Insert, spec: ParameterSpec,
                        values: tuple[Value, ...]) -> list[tuple]:
        table = self.database.catalog.versioned_table(statement.table)
        if statement.query is not None:
            plan = self._plan_select(statement.query, spec)
            result = self._evaluate_select(plan, values)
            return [self._coerce_row(table.schema, statement.columns, row)
                    for row in result.rows]
        ctx = self._write_ctx(values)
        return [self._coerce_row(table.schema, statement.columns,
                                 self._eval_literal_row(row_exprs, spec, ctx))
                for row_exprs in statement.rows]

    def _run_insert(self, statement: n.Insert, spec: ParameterSpec,
                    values: tuple[Value, ...]) -> int:
        # Rows are computed up front (reading through the open
        # transaction when there is one), so a retried stage re-inserts
        # identical rows.
        rows = self._insert_rows_of(statement, spec, values)

        def stage(txn: Transaction) -> int:
            txn.insert_rows(statement.table, rows)
            return len(rows)

        return self._stage_autocommit(stage)

    def _insert_many(self, statement: n.Insert, spec: ParameterSpec,
                     bind_sets: Iterable[object]) -> int:
        """``executemany`` over INSERT ... VALUES: every bind set's rows
        are staged into one transaction and committed once; a mid-batch
        bind (or cast) error rolls the whole batch back."""
        rows: list[tuple] = []
        for binds in bind_sets:
            rows.extend(self._insert_rows_of(statement, spec,
                                             spec.bind(binds)))

        def stage(txn: Transaction) -> int:
            txn.insert_rows(statement.table, rows)
            return len(rows)

        return self._stage_autocommit(stage)

    def _matching_rows(self, txn: Transaction, table_name: str,
                       where: Optional[n.Expr], spec: ParameterSpec,
                       ctx: EvalContext) -> list[tuple[str, tuple]]:
        """Rows of ``table_name`` as seen *by the transaction* (snapshot
        plus its own staged writes) matching ``where``."""
        relation = txn.scan(table_name)
        if where is None:
            return list(relation.pairs())
        table = self.database.catalog.versioned_table(table_name)
        schema = table.schema.requalified(table_name)
        predicate = compile_expression(
            bind_expression(where, schema, self.database.registry,
                            parameters=spec), ctx)
        return [(row_id, row) for row_id, row in relation.pairs()
                if t.is_true(predicate(row))]

    def _run_delete(self, statement: n.Delete, spec: ParameterSpec,
                    values: tuple[Value, ...]) -> int:
        ctx = self._write_ctx(values)

        def stage(txn: Transaction) -> int:
            matches = self._matching_rows(txn, statement.table,
                                          statement.where, spec, ctx)
            txn.delete_rows(statement.table,
                            [row_id for row_id, __ in matches])
            return len(matches)

        return self._stage_autocommit(stage)

    def _run_update(self, statement: n.Update, spec: ParameterSpec,
                    values: tuple[Value, ...]) -> int:
        db = self.database
        table = db.catalog.versioned_table(statement.table)
        schema = table.schema.requalified(statement.table)
        ctx = self._write_ctx(values)
        assignments = {
            table.schema.resolve(column): compile_expression(
                bind_expression(expr, schema, db.registry, parameters=spec),
                ctx)
            for column, expr in statement.assignments}

        def stage(txn: Transaction) -> int:
            updates: dict[str, tuple] = {}
            for row_id, row in self._matching_rows(txn, statement.table,
                                                   statement.where, spec,
                                                   ctx):
                new_row = list(row)
                for index, expr_fn in assignments.items():
                    new_row[index] = t.cast_value(expr_fn(row),
                                                  table.schema[index].type)
                updates[row_id] = tuple(new_row)
            txn.update_rows(statement.table, updates)
            return len(updates)

        return self._stage_autocommit(stage)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "open txn" if self._txn is not None else "autocommit"
        return (f"Session(#{self.id}, warehouse={self._warehouse!r}, "
                f"as_of={self._as_of!r}, role={self._role!r}, {state})")
