"""Prepared statements: parse once, plan once, execute many times.

A :class:`PreparedStatement` is created by ``Session.prepare(sql)``. The
SQL is parsed exactly once; its bind parameters (``?`` positional or
``:name`` named) are collected into a :class:`ParameterSpec` that assigns
each a slot. For SELECTs, the bound and optimized plan is obtained through
the database-wide :class:`~repro.plan.cache.PlanCache` under a
parameter-aware key — the query *text* with markers left in place, plus
the catalog epoch and function-registry version — so re-executing with new
binds performs **zero parse or optimize work**, and even re-preparing the
same text in another session reuses the plan.

Bind values travel to execution inside the
:class:`~repro.engine.expressions.EvalContext` (``ctx.params``), where
each :class:`~repro.engine.expressions.BoundParameter` slot reads — and
the closure compiler pins — the value for that one execution.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Sequence

from repro.engine import expressions as e
from repro.engine import types as t
from repro.engine.types import Value
from repro.errors import BindParameterError, TypeError_, UserError
from repro.plan import logical as lp
from repro.plan.builder import build_plan
from repro.plan.rewrite import optimize
from repro.sql import nodes as n

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.cursor import Cursor
    from repro.api.results import QueryResult
    from repro.api.session import Session


class ParameterSpec:
    """The bind parameters of one statement, with their slot assignment.

    Positional parameters occupy slots ``0 .. count-1`` in order of
    appearance; named parameters occupy one slot per distinct name, in
    first-appearance order. Mixing the two styles in one statement is
    rejected (DB-API style).
    """

    def __init__(self, parameters: Sequence[n.Parameter] = ()):
        positional = [p for p in parameters if p.name is None]
        names: list[str] = []
        for parameter in parameters:
            if parameter.name is not None and parameter.name not in names:
                names.append(parameter.name)
        if positional and names:
            raise BindParameterError(
                "cannot mix positional (?) and named (:name) parameters "
                "in one statement")
        self.positional_count = len(positional)
        self.names: tuple[str, ...] = tuple(names)
        self._name_slots = {name: slot for slot, name in enumerate(names)}
        #: Types inferred per slot from comparison/arithmetic contexts by
        #: the binder (see ``observe_type``); used to type-check bind
        #: values up front instead of failing mid-execution.
        self._inferred: dict[int, t.SqlType] = {}

    @property
    def slot_count(self) -> int:
        return self.positional_count or len(self.names)

    @property
    def is_empty(self) -> bool:
        return self.slot_count == 0

    def slot_of(self, parameter: n.Parameter) -> int:
        """The value slot of one AST parameter (the builder's hook)."""
        if parameter.name is not None:
            return self._name_slots[parameter.name]
        assert parameter.index is not None
        return parameter.index

    # -- type inference ------------------------------------------------------

    def observe_type(self, slot: int, sql_type: t.SqlType,
                     label: str) -> None:
        """Record a type inferred for ``slot`` from its expression context
        (the binder's hook). A parameter observed in *conflicting*
        contexts — say compared against both an INT and a TEXT column —
        raises a typed ``UserError`` right here, which for SELECTs means
        at ``prepare()`` time, long before any value is bound."""
        if sql_type in (t.SqlType.NULL, t.SqlType.VARIANT):
            return  # nothing usable to pin
        existing = self._inferred.get(slot)
        if existing is None:
            self._inferred[slot] = sql_type
            return
        try:
            self._inferred[slot] = t.unify_types(existing, sql_type)
        except TypeError_:
            raise TypeError_(
                f"bind parameter {label} is used in conflicting type "
                f"contexts: {existing} vs {sql_type}") from None

    def inferred_type(self, slot: int) -> Optional[t.SqlType]:
        """The type inferred for ``slot``, or None when its contexts said
        nothing (a bare projection, a VARIANT path, ...)."""
        return self._inferred.get(slot)

    _NUMERIC = frozenset({t.SqlType.INT, t.SqlType.FLOAT})

    @classmethod
    def _value_matches(cls, expected: t.SqlType, actual: t.SqlType) -> bool:
        if expected == actual:
            return True
        if expected in cls._NUMERIC and actual in cls._NUMERIC:
            return True  # INT and FLOAT are mutually comparable, as literals
        if expected == t.SqlType.TIMESTAMP and actual == t.SqlType.INT:
            return True  # timestamps are nanosecond ints
        return False

    def bind(self, binds: object = None) -> tuple[Value, ...]:
        """Validate user-supplied binds into a slot-ordered value tuple."""
        if self.is_empty:
            if binds:
                raise BindParameterError(
                    "statement takes no bind parameters")
            return ()
        if self.names:
            return self._bind_named(binds)
        return self._bind_positional(binds)

    def _bind_positional(self, binds: object) -> tuple[Value, ...]:
        if binds is None or isinstance(binds, (str, bytes, Mapping)):
            raise BindParameterError(
                f"expected a sequence of {self.positional_count} "
                f"positional bind values, got {binds!r}")
        values = tuple(binds)  # type: ignore[arg-type]
        if len(values) != self.positional_count:
            raise BindParameterError(
                f"statement takes {self.positional_count} positional "
                f"parameters, got {len(values)} values")
        return tuple(self._check_value(value, f"?{slot + 1}", slot)
                     for slot, value in enumerate(values))

    def _bind_named(self, binds: object) -> tuple[Value, ...]:
        if not isinstance(binds, Mapping):
            raise BindParameterError(
                f"expected a mapping of named bind values for "
                f"{', '.join(':' + name for name in self.names)}, "
                f"got {binds!r}")
        missing = [name for name in self.names if name not in binds]
        if missing:
            raise BindParameterError(
                "missing bind values for "
                + ", ".join(f":{name}" for name in missing))
        extra = [key for key in binds if key not in self._name_slots]
        if extra:
            raise BindParameterError(
                "unknown bind names: "
                + ", ".join(f":{key}" for key in extra))
        return tuple(self._check_value(binds[name], f":{name}",
                                       self._name_slots[name])
                     for name in self.names)

    def _check_value(self, value: object, label: str, slot: int) -> Value:
        try:
            actual = t.type_of_value(value)
        except TypeError_ as exc:
            raise BindParameterError(
                f"bind value for {label} has no SQL type: {exc}") from None
        expected = self._inferred.get(slot)
        if (expected is not None and value is not None
                and not self._value_matches(expected, actual)):
            raise BindParameterError(
                f"bind value for {label} should be {expected} "
                f"(inferred from the statement), got {actual}: {value!r}")
        return value


def _parameter_types(plan: lp.PlanNode) -> list[tuple[int, t.SqlType, str]]:
    """``(slot, type, label)`` of every context-typed bound parameter in a
    plan. Re-deriving inference from the plan itself is what keeps typed
    binds working on plan-cache *hits*, where the binder never runs."""
    found: list[tuple[int, t.SqlType, str]] = []
    for node in plan.walk():
        for value in vars(node).values():
            _collect_parameters(value, found)
    return found


def _collect_parameters(value: object,
                        found: list[tuple[int, t.SqlType, str]]) -> None:
    if isinstance(value, e.Expression):
        if (isinstance(value, e.BoundParameter)
                and value.type != t.SqlType.NULL):
            found.append((value.slot, value.type, value.label))
        for child in value.children():
            _collect_parameters(child, found)
    elif isinstance(value, (tuple, list)):
        for item in value:
            _collect_parameters(item, found)
    elif (dataclasses.is_dataclass(value) and not isinstance(value, type)
            and not isinstance(value, lp.PlanNode)):
        # Aggregate/window call wrappers carry expressions one level deep.
        for field_value in vars(value).values():
            _collect_parameters(field_value, found)


class PreparedStatement:
    """A statement parsed (and, for SELECTs, planned) once for repeated
    execution with varying binds."""

    def __init__(self, session: "Session", sql: str,
                 statement: n.Statement, spec: ParameterSpec):
        self._session = session
        self.sql = sql
        self.statement = statement
        self.spec = spec
        #: The plan whose typed parameter slots the spec was last seeded
        #: from — the type walk runs once per (re-)plan, not per execution.
        self._typed_from_plan: Optional[lp.PlanNode] = None

    @property
    def is_query(self) -> bool:
        return isinstance(self.statement, n.Query)

    @property
    def parameter_count(self) -> int:
        return self.spec.slot_count

    def plan(self) -> lp.PlanNode:
        """The optimized plan of a SELECT, via the shared plan cache.

        The key carries the statement text (bind markers included), the
        catalog DDL epoch, and the function-registry version: repeated
        executions hit; any DDL or UDF change transparently re-plans the
        stored AST (no re-parse, ever).
        """
        if not self.is_query:
            raise UserError("only SELECT statements have a plan")
        db = self._session.database
        key = ("prepared", self.sql, db.catalog.epoch, db.registry.version)
        plan = db.plan_cache.get(key)
        if plan is None:
            assert isinstance(self.statement, n.Query)
            plan = optimize(build_plan(self.statement.select, db.catalog,
                                       db.registry, parameters=self.spec))
            db.plan_cache.put(key, plan)
        # Seed (or re-derive, on a cache hit) the spec's inferred bind
        # types from the plan's typed parameter slots — once per plan, so
        # re-executions stay on the zero-work fast path.
        if self._typed_from_plan is not plan:
            for slot, sql_type, label in _parameter_types(plan):
                self.spec.observe_type(slot, sql_type, label)
            self._typed_from_plan = plan
        return plan

    # -- execution -----------------------------------------------------------

    def execute(self, binds: object = None) -> "Optional[QueryResult]":
        """Execute with the given binds; rows for SELECTs, else None."""
        result, __ = self._session._execute_prepared(self, binds)
        return result

    def query(self, binds: object = None) -> "QueryResult":
        result = self.execute(binds)
        if result is None:
            raise UserError("statement did not return rows")
        return result

    def executemany(self, bind_sets: Iterable[object]) -> int:
        """Execute once per bind set; returns total rows affected.

        INSERT ... VALUES is batched: every bind set's rows are staged and
        committed in a **single transaction** (one new table version), so
        bulk loads do not pay a commit per row.
        """
        return self._session._executemany_prepared(self, bind_sets)

    def cursor(self) -> "Cursor":
        """A fresh cursor over this statement's session."""
        return self._session.cursor()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = type(self.statement).__name__
        return (f"PreparedStatement({kind}, params={self.parameter_count}, "
                f"sql={self.sql.strip()[:40]!r})")
