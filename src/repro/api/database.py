"""The :class:`Database` object: shared substrates + a default session.

One object wires together the substrates (catalog, versioned storage,
transaction manager, SQL frontend, executor) with the paper's systems
(dynamic tables, the refresh engine, the scheduler, virtual warehouses),
and owns the resources shared by every session: the plan cache, the
warehouse pool, and the simulated clock.

``Database.execute`` / ``query`` / ``execute_script`` remain the one-call
facade — they delegate to an implicit **default session** — while
``Database.session()`` opens additional sessions with independent state
(default warehouse, AS-OF time, role). See :mod:`repro.api` for the
layered surface.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.api.cursor import Cursor
from repro.api.prepared import PreparedStatement
from repro.api.results import QueryResult
from repro.api.session import Session
from repro.core.dynamic_table import (DynamicTable, RefreshMode,
                                      RefreshRecord)
from repro.core.evolution import record_dependencies
from repro.core.graph import DependencyGraph
from repro.core.initialization import choose_initialization_timestamp
from repro.core.lag import TargetLag
from repro.core.refresh import RefreshEngine
from repro.engine.expressions import EvalContext, FunctionRegistry
from repro.engine.executor import evaluate
from repro.engine.relation import Relation
from repro.errors import (CatalogError, NotIncrementalizableError, UserError)
from repro.ivm.differentiator import OUTER_JOIN_DIRECT
from repro.plan.builder import build_plan
from repro.plan.cache import PlanCache
from repro.plan.properties import incrementalizability
from repro.scheduler.clock import SimClock
from repro.scheduler.cost import CostModel
from repro.scheduler.scheduler import Scheduler, SchedulerReport
from repro.scheduler.warehouse import Warehouse, WarehousePool
from repro.sql import nodes as n
from repro.storage.catalog import Catalog
from repro.txn.manager import TransactionManager
from repro.util.timeutil import Duration, MINUTE, Timestamp


class Database:
    """An in-process analytical database with Dynamic Tables."""

    def __init__(self, clock: SimClock | None = None,
                 cost_model: CostModel | None = None,
                 outer_join_strategy: str = OUTER_JOIN_DIRECT,
                 path: str | None = None,
                 durability: str = "fsync",
                 checkpoint_every: Duration | None = None,
                 checkpoint_wal_bytes: int | None = None,
                 parallelism: int | None = None,
                 partition_fanout: int | None = None,
                 wal_failure_policy: str = "readonly"):
        """``path`` opts into durability: the directory holds the WAL and
        checkpoint files, existing state is recovered before the first
        statement runs, and every commit is logged. ``durability`` picks
        the WAL flush policy — ``"fsync"`` (one fsync per commit) or
        ``"async"`` (OS-buffered; a machine crash may lose the unsynced
        suffix). ``checkpoint_every`` (simulated time) schedules a
        background checkpointer; ``checkpoint_wal_bytes`` checkpoints
        whenever the WAL outgrows the threshold (checked by the server
        front end after each commit, or via :meth:`maybe_checkpoint`).

        ``parallelism`` turns on DAG-parallel scheduled refreshes with
        that many concurrent workers (None keeps the serial scheduler);
        ``partition_fanout`` gives the refresh engine a worker pool of
        that size for intra-refresh partition work. Both modes produce
        byte-identical table states to serial refresh; see
        :meth:`set_parallelism`.

        ``wal_failure_policy`` decides what a *failed WAL write* does:
        ``"readonly"`` (the default) fails the commit and flips the
        database into degraded read-only mode — reads keep serving the
        last consistent versions, writes are refused until
        ``durability.exit_degraded()`` — while ``"continue"`` counts the
        failure and carries on accepting (unlogged) writes."""
        self.clock = clock if clock is not None else SimClock()
        self.catalog = Catalog(self.clock.now)
        self.txns = TransactionManager(self.catalog, self.clock.now)
        self.registry = FunctionRegistry()
        self.warehouses = WarehousePool()
        self.engine = RefreshEngine(self.catalog, self.txns, self.registry,
                                    outer_join_strategy)
        self.scheduler = Scheduler(self.catalog, self.engine, self.warehouses,
                                   self.clock, cost_model)
        if parallelism is not None or partition_fanout is not None:
            self.set_parallelism(parallelism,
                                 partition_fanout=partition_fanout)
        #: Optimized-plan cache shared by every session's prepared
        #: statements (parameter-aware keys; see repro.plan.cache).
        self.plan_cache = PlanCache()
        # Session ids are allocated under a mutex: Server.connect calls
        # session() from concurrent pool threads, and an unguarded
        # counter can hand two sessions the same id.
        self._session_mutex = threading.Lock()
        self._session_count = 0
        self._default_session = Session(self, 0)
        #: The durability manager, or None for a purely in-memory
        #: database (the default).
        self.durability = None
        if path is not None:
            if durability not in ("fsync", "async"):
                raise UserError(
                    f"unknown durability mode: {durability!r} "
                    f"(expected 'fsync' or 'async')")
            from repro.durability.manager import DurabilityManager

            manager = DurabilityManager(
                self, path, fsync=(durability == "fsync"),
                checkpoint_every=checkpoint_every,
                checkpoint_wal_bytes=checkpoint_wal_bytes,
                wal_failure_policy=wal_failure_policy)
            manager.open()
            # Hooks attach only after recovery: replayed operations must
            # never be re-logged.
            self.durability = manager
            self.catalog.durability = manager
            self.txns.durability = manager
            if checkpoint_every is not None:
                self._schedule_checkpoint_tick(checkpoint_every)

    def _schedule_checkpoint_tick(self, interval: Duration) -> None:
        """Background checkpointer on the simulated clock: a
        self-rescheduling scheduler callback (no wall-clock thread)."""
        def tick() -> None:
            if self.durability is None or self.durability.closed:
                return
            self.durability.checkpoint()
            self.scheduler.at(self.clock.now() + interval, tick)

        self.scheduler.at(self.clock.now() + interval, tick)

    # -- parallel refresh ---------------------------------------------------------

    def set_parallelism(self, workers: int | None,
                        partition_fanout: int | None = None) -> None:
        """(Re)configure parallel refresh.

        ``workers`` — DAG-level: scheduled refreshes of independent DTs
        run concurrently in dependency waves on ``workers`` threads, and
        the scheduler's modeled durations queue on as many dispatch
        slots. ``None`` restores the exact serial legacy scheduler.

        ``partition_fanout`` — intra-refresh: one refresh's partition
        diffs and aggregate-state scans fan out across a pool of that
        size (``None`` keeps them inline). The pools are separate by
        design, so a refresh occupying a DAG worker never blocks on the
        partition pool it submits to.
        """
        from repro.util.parallel import WorkerPool

        self.scheduler.set_parallelism(workers)
        previous = self.engine.partition_pool
        self.engine.partition_pool = (
            WorkerPool(partition_fanout, name="repro-partition")
            if partition_fanout is not None and partition_fanout > 1
            else None)
        if previous is not None:
            previous.close()

    # -- sessions ----------------------------------------------------------------

    @property
    def default_session(self) -> Session:
        """The implicit session behind the ``execute``/``query`` facade."""
        return self._default_session

    def session(self) -> Session:
        """Open a new session with independent per-session state."""
        with self._session_mutex:
            self._session_count += 1
            session_id = self._session_count
        return Session(self, session_id)

    def cursor(self) -> Cursor:
        """A streaming cursor over the default session."""
        return self._default_session.cursor()

    def prepare(self, sql: str) -> PreparedStatement:
        """Prepare a statement on the default session."""
        return self._default_session.prepare(sql)

    def transaction(self):
        """Scoped transaction on the default session (BEGIN on entry,
        COMMIT on clean exit, ROLLBACK on error)."""
        return self._default_session.transaction()

    def serve(self, workers: int = 8):
        """A thread-pool :class:`~repro.server.Server` front end over this
        database — concurrent sessions, retried transactions."""
        from repro.server import Server

        return Server(self, workers=workers)

    # -- time --------------------------------------------------------------------

    @property
    def now(self) -> Timestamp:
        return self.clock.now()

    def run_for(self, duration: Duration) -> SchedulerReport:
        """Advance simulated time, letting the scheduler refresh DTs."""
        return self.scheduler.run_until(self.clock.now() + duration)

    def run_until(self, time: Timestamp) -> SchedulerReport:
        return self.scheduler.run_until(time)

    def at(self, time: Timestamp, callback: Callable[[], None]) -> None:
        """Schedule a workload callback at an absolute simulated time."""
        self.scheduler.at(time, callback)

    # -- warehouses ------------------------------------------------------------------

    def create_warehouse(self, name: str, size: int = 1,
                         auto_suspend: Optional[Duration] = MINUTE,
                         ) -> Warehouse:
        warehouse = self.warehouses.create(name, size, auto_suspend)
        if self.durability is not None:
            self.durability.log_ddl(
                "create_warehouse",
                {"name": name, "size": size, "auto_suspend": auto_suspend},
                self.catalog.epoch)
        return warehouse

    # -- SQL (facade over the default session) -----------------------------------

    def execute(self, sql: str, binds: object = None,
                ) -> Optional[QueryResult]:
        """Execute a single SQL statement; returns rows for SELECTs."""
        return self._default_session.execute(sql, binds)

    def execute_script(self, sql: str) -> list[Optional[QueryResult]]:
        """Execute a ``;``-separated script."""
        return self._default_session.execute_script(sql)

    def query(self, sql: str, binds: object = None) -> QueryResult:
        return self._default_session.query(sql, binds)

    def query_at(self, sql: str, wall: Timestamp) -> QueryResult:
        """Time travel: evaluate a query against the snapshot at ``wall``."""
        return self._default_session.query_at(sql, wall)

    def explain(self, sql: str, optimized: bool = True) -> str:
        """The bound (and by default optimized) logical plan of a query,
        rendered as an indented tree."""
        return self._default_session.explain(sql, optimized)

    # -- storage maintenance ------------------------------------------------------

    def clone_table(self, source: str, name: str) -> None:
        """Zero-copy clone of a base table (section 3.4)."""
        from repro.core.cloning import clone_table

        # Under the commit mutex: reading the source's current version
        # and stamping the clone must not interleave with an in-flight
        # commit's installation.
        with self.txns.commit_mutex:
            ts = self.txns.hlc.now()
            clone_table(self.catalog, source, name, ts)
            if self.durability is not None:
                self.durability.log_ddl(
                    "clone_table", {"source": source, "name": name,
                                    "ts": ts},
                    self.catalog.epoch)

    def clone_dynamic_table(self, source: str, name: str) -> DynamicTable:
        """Zero-copy clone of a dynamic table, preserving its frontier so
        the clone avoids reinitialization (section 3.4)."""
        from repro.core.cloning import clone_dynamic_table

        with self.txns.commit_mutex:
            ts = self.txns.hlc.now()
            clone = clone_dynamic_table(self.catalog, source, name, ts)
            if self.durability is not None:
                self.durability.log_ddl(
                    "clone_dt", {"source": source, "name": name, "ts": ts},
                    self.catalog.epoch)
            return clone

    def recluster(self, table_name: str) -> None:
        """Background maintenance: rewrite partitions without logical
        change (section 5.5.2's data-equivalent operations)."""
        table = self.catalog.versioned_table(table_name)
        # The read-rebuild-install cycle is a commit critical section:
        # without the mutex, a concurrent DML commit between the read of
        # the current version and the install would be silently undone.
        with self.txns.commit_mutex:
            ts = self.txns.hlc.now()
            table.recluster(ts)
            if self.durability is not None:
                self.durability.log_ddl(
                    "recluster", {"name": table_name, "ts": ts},
                    self.catalog.epoch)

    # -- durability ---------------------------------------------------------------------

    def checkpoint(self) -> str:
        """Snapshot the database and truncate the WAL behind it; returns
        the checkpoint file's path. Requires ``path=`` at construction."""
        if self.durability is None:
            raise UserError("checkpoint() requires a durable database "
                            "(open with Database(path=...))")
        return self.durability.checkpoint()

    def maybe_checkpoint(self) -> bool:
        """Checkpoint iff the WAL outgrew ``checkpoint_wal_bytes``. A
        no-op (False) for in-memory databases or below the threshold."""
        if self.durability is None:
            return False
        return self.durability.maybe_checkpoint()

    def durability_status(self) -> Optional[dict]:
        """WAL/checkpoint/recovery state, or None when in-memory."""
        if self.durability is None:
            return None
        return self.durability.status()

    def close(self) -> None:
        """Flush and close the WAL. The object stays usable for reads;
        in-memory databases treat this as a no-op."""
        if self.durability is not None:
            self.durability.close()

    # -- dynamic tables -----------------------------------------------------------------

    def dynamic_table(self, name: str) -> DynamicTable:
        entry = self.catalog.get(name)
        if entry.kind != "dynamic table":
            raise CatalogError(f"{name!r} is not a dynamic table")
        payload = entry.payload
        assert isinstance(payload, DynamicTable)
        return payload

    def dynamic_tables(self, include_hidden: bool = False,
                       ) -> list[DynamicTable]:
        """All dynamic tables; hidden fragment DTs (section 5.5.3's
        "hidden, internal DTs") are filtered unless requested."""
        tables = [entry.payload  # type: ignore[misc]
                  for entry in self.catalog.entries(kind="dynamic table")]
        if include_hidden:
            return tables
        return [dt for dt in tables if not getattr(dt, "hidden", False)]

    def create_dynamic_table(self, name: str, query: n.Select | str,
                             target_lag: str | TargetLag,
                             warehouse: str,
                             refresh_mode: str = "auto",
                             initialize: str = "on_create",
                             or_replace: bool = False,
                             auto_fragment: bool = False,
                             options: dict | None = None) -> DynamicTable:
        """Create (and by default synchronously initialize) a DT.

        ``auto_fragment=True`` enables the section 5.5.3 extension:
        top-level UNION ALL queries split into hidden per-branch DTs
        (intermediate state), letting each branch pick its own refresh
        mode; the visible DT becomes a cheap union over the fragments.

        ``options`` sets the failure policy at creation — the same keys
        ``ALTER DYNAMIC TABLE ... SET`` accepts: ``retries`` (transient
        failures retried with exponential backoff), ``backoff`` (base
        delay, duration string or nanoseconds), ``backoff_factor``, and
        ``error_threshold`` (consecutive failures before auto-suspend,
        section 3.3.3).
        """
        if isinstance(query, str):
            from repro.sql.parser import parse_query

            query_text = query
            query = parse_query(query)
        else:
            query_text = ""

        if auto_fragment:
            fragmented = self._maybe_fragment(
                name, query, target_lag, warehouse, initialize)
            if fragmented is not None:
                query = fragmented
        lag = (TargetLag.parse(target_lag)
               if isinstance(target_lag, str) else target_lag)
        if not self.warehouses.exists(warehouse):
            raise CatalogError(f"unknown warehouse: {warehouse}")
        try:
            mode = RefreshMode(refresh_mode.lower())
        except ValueError:
            raise UserError(f"unknown refresh mode: {refresh_mode}") from None
        if initialize not in ("on_create", "on_schedule"):
            raise UserError(f"unknown initialize option: {initialize}")

        plan = build_plan(query, self.catalog, self.registry)
        check = incrementalizability(plan)
        if mode == RefreshMode.INCREMENTAL and not check.supported:
            raise NotIncrementalizableError("; ".join(check.reasons))

        from repro.storage.table import VersionedTable

        schema = plan.schema.requalified(None)
        table = VersionedTable(name, schema, self.catalog.allocate_table_seq())
        dependencies = record_dependencies(query, self.catalog)
        dt = DynamicTable(name, query_text, query, lag, warehouse, mode,
                          table, dependencies, check.supported, check.reasons)
        from repro.analysis.analyzer import analyze_bound_query

        # The plan is already bound: the analyzer reuses it, so the
        # attached report costs no second bind.
        dt.analysis = analyze_bound_query(query, plan,
                                          refresh_mode=mode.value,
                                          sql=query_text)
        if options:
            from repro.core.dynamic_table import apply_policy_options

            apply_policy_options(dt, options)
        self.catalog.create_dynamic_entry(name, dt, or_replace=or_replace)
        if self.durability is not None:
            # Logged before initialization: the initializing refresh is a
            # normal transaction and replays from its own commit records.
            data = {"name": name, "query_text": query_text, "query": query,
                    "target_lag": lag, "warehouse": warehouse,
                    "refresh_mode": mode.value, "or_replace": or_replace}
            if options:
                data["options"] = dict(options)
            self.durability.log_ddl("create_dynamic_table", data,
                                    self.catalog.epoch)

        if initialize == "on_create":
            self._initialize(dt)
        return dt

    def _maybe_fragment(self, name: str, query: n.Select,
                        target_lag: str | TargetLag, warehouse: str,
                        initialize: str) -> Optional[n.Select]:
        """Split a UNION ALL defining query into hidden fragment DTs;
        returns the rewritten main query, or None when not fragmentable."""
        from repro.core.fragments import (fragment_name, split_union,
                                          union_of_fragments)

        branches = split_union(query)
        if branches is None:
            return None
        branch_schemas: list[list[str]] = []
        for index, branch in enumerate(branches):
            fragment = self.create_dynamic_table(
                fragment_name(name, index), branch,
                target_lag="downstream", warehouse=warehouse,
                refresh_mode="auto", initialize=initialize)
            fragment.hidden = True
            if self.durability is not None:
                self.durability.log_ddl("dt_hidden",
                                        {"name": fragment.name},
                                        self.catalog.epoch)
            branch_schemas.append(fragment.schema.names)
        return union_of_fragments(name, branch_schemas)

    def _initialize(self, dt: DynamicTable) -> None:
        """Synchronous initialization with the timestamp selection of
        section 3.1.2."""
        graph = DependencyGraph(self.catalog)
        upstream = graph.upstream_dts(dt.name)
        lag = (dt.target_lag.duration if not dt.target_lag.is_downstream
               else graph.effective_lag(dt.name))
        choice = choose_initialization_timestamp(upstream, self.clock.now(), lag)
        if choice.requires_upstream_refresh:
            for upstream_dt in graph.upstream_closure(dt.name):
                self._refresh_now(upstream_dt, choice.data_timestamp)
        record = self._refresh_now(dt, choice.data_timestamp)
        if record.error is not None:
            raise UserError(
                f"initialization of {dt.name!r} failed: {record.error}")

    def _refresh_now(self, dt: DynamicTable,
                     refresh_ts: Timestamp) -> RefreshRecord:
        """Run a refresh immediately (manual path: no warehouse queueing)."""
        if dt.frontier is not None and dt.frontier.data_timestamp == refresh_ts:
            # Already at this data timestamp: nothing to do.
            return dt.refresh_history[-1]
        record = self.engine.refresh(dt, refresh_ts)
        record.start_wall = record.end_wall = self.clock.now()
        return record

    def refresh_dynamic_table(self, name: str) -> RefreshRecord:
        """Manual refresh: "Manual refreshes choose a data timestamp that
        is after the refresh command was issued" (section 3.1.2) — the
        clock ticks forward one millisecond, and the whole upstream chain
        refreshes at the new timestamp first."""
        from repro.util.timeutil import MILLISECOND

        dt = self.dynamic_table(name)
        dt.ensure_refreshable()
        refresh_ts = self.clock.advance(MILLISECOND)
        graph = DependencyGraph(self.catalog)
        for upstream_dt in graph.upstream_closure(name):
            upstream_record = self._refresh_now(upstream_dt, refresh_ts)
            if upstream_record.error is not None:
                raise UserError(
                    f"upstream refresh of {upstream_dt.name!r} failed: "
                    f"{upstream_record.error}")
        record = self._refresh_now(dt, refresh_ts)
        if record.error is not None:
            raise UserError(f"refresh of {name!r} failed: {record.error}")
        return record

    # -- the DVS oracle ---------------------------------------------------------------

    def check_dvs(self, name: str) -> bool:
        """The paper's strongest assertion (section 6.1): "if you run the
        defining query as of the data timestamp, you should get the same
        result as in the DT." Returns True when it holds; raises
        AssertionError with a diff otherwise."""
        dt = self.dynamic_table(name)
        dt.ensure_readable()
        assert dt.frontier is not None
        data_ts = dt.frontier.data_timestamp

        plan = build_plan(dt.query, self.catalog, self.registry)
        resolver = _FrontierReader(self, dt)
        ctx = EvalContext(timestamp=data_ts)
        expected = evaluate(plan, resolver, ctx)
        actual = dt.table.relation()

        expected_rows = sorted(expected.rows, key=repr)
        actual_rows = sorted(actual.rows, key=repr)
        if expected_rows != actual_rows:
            raise AssertionError(
                f"DVS violation on {name!r} at data_ts={data_ts}:\n"
                f"  expected {expected_rows!r}\n"
                f"  actual   {actual_rows!r}")
        return True


class _FrontierReader:
    """Resolver reading each source exactly at the DT's frontier cursor —
    the snapshot the last refresh was (or should have been) computed on."""

    def __init__(self, db: Database, dt: DynamicTable):
        self._db = db
        self._dt = dt

    def scan(self, table: str) -> Relation:
        versioned = self._db.catalog.versioned_table(table)
        cursor = self._dt.frontier.cursor(table) if self._dt.frontier else None
        if cursor is not None:
            version = versioned.version(cursor.version_index)
        else:
            version = versioned.version_at(self._dt.frontier.data_timestamp)
        return versioned.relation(version)
