"""The public API: a layered Session/Cursor surface over one Database.

The package separates the **shared substrates** from **per-connection
state**, mirroring the paper's split between the multi-tenant frontend and
the refresh/IVM machinery:

* :class:`Database` (``database.py``) owns what every connection shares —
  catalog, versioned storage, transaction manager, refresh engine,
  scheduler, warehouses, and the parameter-aware plan cache;
* :class:`Session` (``session.py``) is one connection: default warehouse,
  AS-OF snapshot time, role, and the optional **open transaction**
  (``BEGIN`` / ``COMMIT`` / ``ROLLBACK`` / ``SAVEPOINT``, via SQL or the
  ``begin()``/``commit()``/``rollback()``/``transaction()`` API) — plus
  the statement dispatch and the API error boundary;
* :class:`PreparedStatement` (``prepared.py``) parses once and executes
  many times with ``?`` positional / ``:name`` named binds, skipping all
  parse and optimize work on re-execution via the plan cache;
* :class:`Cursor` (``cursor.py``) is the DB-API-flavored reader that
  streams SELECT results lazily, one micro-partition per pull;
* :class:`QueryResult` (``results.py``) is the materialized result the
  one-shot facade returns.

One-shot use (unchanged from the original single-object API)::

    from repro import Database
    from repro.util.timeutil import minutes

    db = Database()
    db.create_warehouse("trains_wh")
    db.execute("CREATE TABLE trains (id int, name text)")
    db.execute("INSERT INTO trains VALUES (1, 'express')")
    db.execute('''
        CREATE DYNAMIC TABLE arrivals
        TARGET_LAG = '1 minute' WAREHOUSE = trains_wh
        AS SELECT id, name FROM trains
    ''')
    db.run_for(minutes(10))          # simulated time; scheduler refreshes
    print(db.query("SELECT * FROM arrivals").rows)

Layered use — sessions, prepared statements, streaming cursors::

    session = db.session()
    session.use_warehouse("trains_wh")       # session default warehouse

    lookup = session.prepare(
        "SELECT name FROM trains WHERE id = ?")
    for train_id in ids:
        rows = lookup.query((train_id,)).rows  # no re-parse, no re-plan

    loader = session.prepare("INSERT INTO trains VALUES (:id, :name)")
    loader.executemany([{"id": 2, "name": "local"},
                        {"id": 3, "name": "night"}])  # one transaction

    cursor = session.cursor()
    cursor.execute("SELECT * FROM trains WHERE id >= ?", (0,))
    while page := cursor.fetchmany(1000):    # streamed per micro-partition
        handle(page)

Transactions — multi-statement atomicity with read-your-writes::

    with session.transaction():              # BEGIN ... COMMIT/ROLLBACK
        session.execute("INSERT INTO trains VALUES (9, 'owl')")
        session.execute("UPDATE trains SET name = 'night owl' WHERE id = 9")
        # visible here (read-your-writes), invisible to other sessions
        # until the block commits

Concurrency — the server front end (:mod:`repro.server`) executes many
sessions on a thread pool, retrying snapshot-isolation conflicts::

    with db.serve(workers=8) as server:
        server.run_transaction(lambda s: s.execute(
            "UPDATE trains SET name = 'renamed' WHERE id = 1"))

``Database.execute`` / ``query`` / ``execute_script`` delegate to an
implicit default session, so the facade is exactly the old single-object
API; SQL and programmatic surfaces keep dispatching onto the same
primitives. Auto-commit per statement remains the default everywhere.
"""

from repro.api.cursor import Cursor
from repro.api.database import Database
from repro.api.prepared import ParameterSpec, PreparedStatement
from repro.api.results import QueryResult
from repro.api.session import Session

__all__ = ["Cursor", "Database", "ParameterSpec", "PreparedStatement",
           "QueryResult", "Session"]
