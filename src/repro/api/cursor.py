"""DB-API-flavored cursors with per-micro-partition streaming reads.

A :class:`Cursor` executes statements against its session and serves
SELECT results page by page: the underlying plan is evaluated lazily, one
micro-partition at a time (:func:`repro.engine.executor.stream_evaluate`),
so ``fetchmany(k)`` holds at most the unserved remainder of a single
partition beyond the page it returns — a large scan never materializes an
O(result) row list. Each streamed batch is a columnar
:class:`~repro.engine.executor.Block` — the partition's column arrays,
filtered and projected by the vectorized evaluators — which the cursor
transposes into row tuples once per page served. ``ORDER BY ... LIMIT k``
streams through a bounded top-k heap (at most ``k`` buffered rows); plans
whose shape cannot stream (aggregates, joins, unbounded sorts)
transparently fall back to one materialized batch.

The surface follows PEP 249 where it makes sense for an embedded
analytical engine: ``execute`` / ``executemany``, ``fetchone`` /
``fetchmany`` / ``fetchall``, iteration, ``description``, ``rowcount``,
``arraysize`` — plus the connection-level transaction controls
(``commit`` / ``rollback`` / ``autocommit``), which delegate to the
cursor's session. Auto-commit remains the default; ``BEGIN`` /
``COMMIT`` / ``ROLLBACK`` may equally be issued as SQL text through
``execute``.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Union

from repro.api.prepared import PreparedStatement
from repro.api.results import description_of
from repro.errors import UserError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Session

#: Default ``fetchmany`` page size.
DEFAULT_ARRAYSIZE = 64


class Cursor:
    """A streaming statement executor bound to one session."""

    def __init__(self, session: "Session"):
        self.session = session
        self.arraysize = DEFAULT_ARRAYSIZE
        self._description: Optional[list[tuple]] = None
        self._rowcount = -1
        self._batches: Optional[Iterator[list]] = None
        self._buffer: deque[tuple] = deque()
        self._sql: Optional[str] = None
        self._closed = False

    # -- DB-API attributes ---------------------------------------------------

    @property
    def description(self) -> Optional[list[tuple]]:
        """Column descriptions of the last SELECT, else None."""
        return self._description

    @property
    def rowcount(self) -> int:
        """Rows affected by the last DML statement; -1 when unknown (DDL,
        or a streaming SELECT whose end has not been reached)."""
        return self._rowcount

    # -- DB-API transaction controls (delegate to the session) ---------------

    @property
    def autocommit(self) -> bool:
        """The session's autocommit mode (see
        :attr:`repro.api.session.Session.autocommit`)."""
        return self.session.autocommit

    @autocommit.setter
    def autocommit(self, value: bool) -> None:
        self.session.autocommit = value

    def commit(self) -> None:
        """Commit the session's open transaction (no-op without one)."""
        self.session.commit()

    def rollback(self) -> None:
        """Roll back the session's open transaction (no-op without one)."""
        self.session.rollback()

    # -- execution -----------------------------------------------------------

    def execute(self, operation: Union[str, PreparedStatement],
                binds: object = None) -> "Cursor":
        """Execute a statement (SQL text or a prepared statement).

        SQL text is prepared through the session, so repeated ``execute``
        calls with the same text hit the shared plan cache.
        """
        self._check_open()
        prepared = self._prepared(operation)
        self._reset()
        self._sql = prepared.sql
        if prepared.is_query:
            schema, batches = self.session._stream_prepared(prepared, binds)
            self._description = description_of(schema)
            self._batches = batches
        else:
            __, self._rowcount = self.session._execute_prepared(prepared,
                                                                binds)
        return self

    def executemany(self, operation: Union[str, PreparedStatement],
                    bind_sets: Iterable[object]) -> "Cursor":
        """Execute once per bind set (INSERT ... VALUES is committed as a
        single batched transaction); no result rows are produced."""
        self._check_open()
        prepared = self._prepared(operation)
        if prepared.is_query:
            raise UserError("executemany does not support SELECT")
        self._reset()
        self._rowcount = prepared.executemany(bind_sets)
        return self

    def _prepared(self,
                  operation: Union[str, PreparedStatement],
                  ) -> PreparedStatement:
        if isinstance(operation, PreparedStatement):
            if operation._session is not self.session:
                raise UserError(
                    "prepared statement belongs to a different session")
            return operation
        return self.session.prepare(operation)

    # -- fetching ------------------------------------------------------------

    def fetchone(self) -> Optional[tuple]:
        """The next result row, or None when exhausted."""
        self._check_results()
        if not self._fill(1):
            return None
        return self._buffer.popleft()

    def fetchmany(self, size: Optional[int] = None) -> list[tuple]:
        """The next page of at most ``size`` rows (default ``arraysize``).

        Pulls micro-partitions from the stream only until the page is
        covered: beyond the returned page, at most the unserved tail of
        one partition stays buffered.
        """
        self._check_results()
        if size is None:
            size = self.arraysize
        if size < 0:
            raise UserError(f"fetch size must be non-negative, got {size}")
        self._fill(size)
        return [self._buffer.popleft()
                for __ in range(min(size, len(self._buffer)))]

    def fetchall(self) -> list[tuple]:
        """All remaining rows (materializes the rest of the stream)."""
        self._check_results()
        self._fill(None)
        rows = list(self._buffer)
        self._buffer.clear()
        return rows

    def __iter__(self) -> "Cursor":
        return self

    def __next__(self) -> tuple:
        row = self.fetchone()
        if row is None:
            raise StopIteration
        return row

    def _fill(self, want: Optional[int]) -> bool:
        """Buffer rows until ``want`` are available (None: drain); True
        when at least one row is buffered."""
        while self._batches is not None and (want is None
                                             or len(self._buffer) < want):
            # Lazy evaluation surfaces errors at fetch time; they must
            # cross the same boundary as execute-time errors (including
            # poisoning an open transaction).
            with self.session._statement_scope(self._sql or ""):
                try:
                    batch = next(self._batches)
                except StopIteration:
                    self._batches = None
                    break
            # Streamed batches are columnar blocks: one transpose per
            # partition beats one tuple-unpack per row. The materialized
            # fallback yields plain ``(row_id, row)`` pair lists.
            row_tuples = getattr(batch, "row_tuples", None)
            if row_tuples is not None:
                self._buffer.extend(row_tuples())
            else:
                self._buffer.extend(row for __, row in batch)
        return bool(self._buffer)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        self._reset()

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _reset(self) -> None:
        self._description = None
        self._rowcount = -1
        self._batches = None
        self._buffer.clear()

    def _check_open(self) -> None:
        if self._closed:
            raise UserError("cursor is closed")

    def _check_results(self) -> None:
        self._check_open()
        if self._description is None and self._batches is None \
                and not self._buffer:
            raise UserError("no result set: execute a SELECT first")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return f"Cursor(session=#{self.session.id}, {state})"
