"""Result objects of the public API.

:class:`QueryResult` is the fully materialized result the
``Database.query`` / ``Session.query`` facade returns (schema + rows +
row ids). Streaming results — pages served per micro-partition — live on
:class:`repro.api.cursor.Cursor`; this module only contributes the shared
DB-API ``description`` rendering of a schema.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.relation import Relation
from repro.engine.schema import Schema


@dataclass
class QueryResult:
    """The result of a SELECT: schema + rows (row ids retained)."""

    schema: Schema
    rows: list[tuple]
    row_ids: list[str]

    @property
    def columns(self) -> list[str]:
        return self.schema.names

    def to_dicts(self) -> list[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def sorted_rows(self) -> list[tuple]:
        """Rows under a stable order (handy for assertions)."""
        return sorted(self.rows, key=lambda row: tuple(map(repr, row)))

    @staticmethod
    def from_relation(relation: Relation) -> "QueryResult":
        return QueryResult(relation.schema, list(relation.rows),
                           list(relation.row_ids))


def description_of(schema: Schema) -> list[tuple]:
    """DB-API 2.0 ``description`` tuples for a result schema: 7-item rows
    of which only ``name`` and ``type_code`` are meaningful here."""
    return [(column.name, column.type.name.lower(), None, None, None, None,
             None)
            for column in schema]
