"""Versioned storage: micro-partitions, tables with time travel, catalog."""

from repro.storage.catalog import Catalog
from repro.storage.table import StagedWrite, TableVersion, VersionedTable

__all__ = ["Catalog", "StagedWrite", "TableVersion", "VersionedTable"]
