"""The catalog: named entities, DDL, RBAC grants, and the DDL log.

Section 5.1 of the paper: "The catalog stores the metadata needed by the
compiler... The catalog generates a timestamped, linearizable log of DDL
operations to all DTs and related entities. This DDL log is consumed by a
job in the scheduler that renders the dependency graph of DTs and issues
refresh commands."

The catalog also implements the operational DDL behaviours of section 3.4:

* DROP / UNDROP — a dropped entity's storage is retained; UNDROP restores
  it and downstream DT refreshes "resume without issue";
* CREATE OR REPLACE — bumps the entity's *generation*, which query
  evolution (:mod:`repro.core.evolution`) detects and answers with
  REINITIALIZE;
* RENAME — upstream dependencies take precedence over downstream: the
  rename succeeds and downstream DTs fail (then recover if the name
  returns);
* RBAC — every entity has an owner role and grants; dynamic tables add
  the MONITOR and OPERATE privileges.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.engine.schema import Schema
from repro.errors import CatalogError, EntityDropped, EntityNotFound
from repro.sql import nodes as n
from repro.storage.table import VersionedTable
from repro.util.timeutil import Timestamp

#: Privileges recognized by the catalog (section 3.4: "In addition to
#: SELECT and OWNERSHIP, DTs also provide MONITOR and OPERATE privileges").
PRIVILEGES = ("select", "ownership", "monitor", "operate", "insert")


@dataclass(frozen=True)
class ViewDefinition:
    """A (non-materialized) view: just a stored query."""

    query_text: str
    query: n.Select


@dataclass(frozen=True)
class DdlEvent:
    """One entry in the linearizable DDL log."""

    seq: int
    timestamp: Timestamp
    op: str          # create | replace | drop | undrop | rename | alter
    kind: str        # table | view | dynamic table
    name: str
    detail: str = ""


@dataclass
class CatalogEntry:
    """A named catalog entity."""

    name: str
    kind: str  # "table" | "view" | "dynamic table"
    payload: object  # VersionedTable | ViewDefinition | core.DynamicTable
    owner: str
    created_at: Timestamp
    #: Globally unique identity of this entity *object*. A CREATE OR
    #: REPLACE — or a drop/rename followed by re-creation under the same
    #: name — produces a new id. Query evolution compares ids, which is
    #: what prevents a recreated table's coincidentally matching version
    #: indexes from silently corrupting downstream DTs.
    entity_id: int = 0
    #: Bumped by CREATE OR REPLACE; informational.
    generation: int = 0
    dropped: bool = False
    grants: dict[str, set[str]] = field(default_factory=dict)

    def grant(self, privilege: str, role: str) -> None:
        if privilege not in PRIVILEGES:
            raise CatalogError(f"unknown privilege {privilege!r}")
        self.grants.setdefault(privilege, set()).add(role)

    def revoke(self, privilege: str, role: str) -> None:
        self.grants.get(privilege, set()).discard(role)

    def has_privilege(self, privilege: str, role: str) -> bool:
        if role == self.owner or privilege == "ownership" and role == self.owner:
            return True
        return role in self.grants.get(privilege, set())


class Catalog:
    """Named entities plus the DDL log. Also acts as the plan builder's
    :class:`~repro.plan.builder.SchemaProvider`."""

    def __init__(self, clock: Callable[[], Timestamp] = lambda: 0):
        self._clock = clock
        self._entries: dict[str, CatalogEntry] = {}
        self._ddl_log: list[DdlEvent] = []
        # Plain-int counters (last allocated value) rather than
        # itertools.count: checkpoints must serialize and restore them so
        # sequence numbers, row-id namespaces, and entity identities stay
        # continuous across a crash-recovery cycle.
        self._ddl_seq = 0
        self._table_seq = 0
        self._entity_ids = 0
        #: Serializes catalog mutations (the DDL critical section) under
        #: the multi-session server; reads stay lock-free — entries are
        #: only ever added or flag-flipped, never restructured in place.
        self._mutex = threading.RLock()
        #: Durability hook (:class:`repro.durability.DurabilityManager`);
        #: attached by Database *after* recovery, so replayed DDL is never
        #: re-logged. Hooked methods append their WAL record inside the
        #: catalog mutex — WAL order equals DDL-log order.
        self.durability = None

    # -- SchemaProvider interface ------------------------------------------------

    def table_schema(self, name: str) -> Schema:
        entry = self.get(name)
        if entry.kind == "view":
            raise EntityNotFound(f"{name!r} is a view, not a table")
        table = self.versioned_table(name)
        return table.schema

    def view_definition(self, name: str) -> Optional[n.Select]:
        entry = self._entries.get(name)
        if entry is None or entry.dropped or entry.kind != "view":
            return None
        payload = entry.payload
        assert isinstance(payload, ViewDefinition)
        return payload.query

    # -- lookups ---------------------------------------------------------------

    def get(self, name: str) -> CatalogEntry:
        entry = self._entries.get(name)
        if entry is None:
            raise EntityNotFound(f"unknown entity: {name}")
        if entry.dropped:
            raise EntityDropped(f"entity {name!r} has been dropped")
        return entry

    def maybe_get(self, name: str) -> Optional[CatalogEntry]:
        entry = self._entries.get(name)
        if entry is None or entry.dropped:
            return None
        return entry

    def exists(self, name: str) -> bool:
        return self.maybe_get(name) is not None

    def versioned_table(self, name: str) -> VersionedTable:
        """The storage object behind a base table or dynamic table."""
        entry = self.get(name)
        if entry.kind == "table":
            assert isinstance(entry.payload, VersionedTable)
            return entry.payload
        if entry.kind == "dynamic table":
            # Dynamic tables expose their storage via a ``table`` attribute
            # (duck-typed to avoid a circular import with repro.core).
            return entry.payload.table  # type: ignore[attr-defined]
        raise EntityNotFound(f"{name!r} has no storage (it is a {entry.kind})")

    def entries(self, kind: str | None = None,
                include_dropped: bool = False) -> Iterator[CatalogEntry]:
        for entry in self._entries.values():
            if entry.dropped and not include_dropped:
                continue
            if kind is not None and entry.kind != kind:
                continue
            yield entry

    # -- DDL -----------------------------------------------------------------------

    def _log(self, op: str, kind: str, name: str, detail: str = "") -> None:
        self._ddl_seq += 1
        self._ddl_log.append(DdlEvent(self._ddl_seq, self._clock(),
                                      op, kind, name, detail))

    @property
    def ddl_log(self) -> list[DdlEvent]:
        return list(self._ddl_log)

    @property
    def epoch(self) -> int:
        """A monotonically increasing DDL epoch: the sequence number of the
        latest DDL event (0 before any DDL). Any catalog change — create,
        replace, drop, undrop, rename, alter — bumps it, so cached compiled
        plans keyed by epoch are invalidated by every schema change."""
        return self._ddl_log[-1].seq if self._ddl_log else 0

    def ddl_log_since(self, seq: int) -> list[DdlEvent]:
        """DDL events with sequence number > ``seq`` (scheduler polling)."""
        return [event for event in self._ddl_log if event.seq > seq]

    def allocate_table_seq(self) -> int:
        """A unique sequence number used in base row ids."""
        with self._mutex:
            self._table_seq += 1
            return self._table_seq

    def counters(self) -> tuple[int, int, int]:
        """(ddl_seq, table_seq, entity_id) — the last allocated value of
        each catalog counter, for checkpointing."""
        with self._mutex:
            return (self._ddl_seq, self._table_seq, self._entity_ids)

    def restore_counters(self, ddl_seq: int, table_seq: int,
                         entity_seq: int) -> None:
        """Restore counter positions from a checkpoint, so allocations
        after recovery continue the pre-crash sequences (entity-id
        continuity is what keeps query evolution's REINITIALIZE detection
        correct across a restart)."""
        with self._mutex:
            self._ddl_seq = ddl_seq
            self._table_seq = table_seq
            self._entity_ids = entity_seq

    def create_table(self, name: str, schema: Schema, owner: str = "sysadmin",
                     or_replace: bool = False,
                     if_not_exists: bool = False) -> VersionedTable:
        with self._mutex:
            replaced = self._prepare_create(name, "table", or_replace,
                                            if_not_exists)
            if replaced is not None and not or_replace:
                assert isinstance(replaced.payload, VersionedTable)
                return replaced.payload
            table = VersionedTable(name, schema, self.allocate_table_seq())
            self._put(name, "table", table, owner, replaced)
            if self.durability is not None:
                self.durability.log_ddl(
                    "create_table",
                    {"name": name, "schema": schema, "owner": owner,
                     "or_replace": replaced is not None},
                    self.epoch)
            return table

    def create_table_entry(self, name: str, table: VersionedTable,
                           owner: str = "sysadmin") -> None:
        """Register an already-built VersionedTable (cloning path)."""
        with self._mutex:
            replaced = self._prepare_create(name, "table", False, False)
            self._put(name, "table", table, owner, replaced)

    def create_view(self, name: str, query_text: str, query: n.Select,
                    owner: str = "sysadmin", or_replace: bool = False) -> None:
        with self._mutex:
            replaced = self._prepare_create(name, "view", or_replace, False)
            self._put(name, "view", ViewDefinition(query_text, query), owner,
                      replaced)
            if self.durability is not None:
                self.durability.log_ddl(
                    "create_view",
                    {"name": name, "query_text": query_text, "query": query,
                     "owner": owner, "or_replace": replaced is not None},
                    self.epoch)

    def create_dynamic_entry(self, name: str, dynamic_table: object,
                             owner: str = "sysadmin",
                             or_replace: bool = False) -> None:
        with self._mutex:
            replaced = self._prepare_create(name, "dynamic table", or_replace,
                                            False)
            self._put(name, "dynamic table", dynamic_table, owner, replaced)

    def _prepare_create(self, name: str, kind: str, or_replace: bool,
                        if_not_exists: bool) -> Optional[CatalogEntry]:
        existing = self._entries.get(name)
        if existing is not None and not existing.dropped:
            if if_not_exists:
                return existing
            if not or_replace:
                raise CatalogError(f"entity {name!r} already exists")
            return existing
        return None

    def _put(self, name: str, kind: str, payload: object, owner: str,
             replaced: Optional[CatalogEntry]) -> None:
        generation = replaced.generation + 1 if replaced is not None else 0
        self._entity_ids += 1
        self._entries[name] = CatalogEntry(
            name=name, kind=kind, payload=payload, owner=owner,
            created_at=self._clock(), entity_id=self._entity_ids,
            generation=generation)
        self._log("replace" if replaced is not None else "create", kind, name)

    def drop(self, name: str, kind: str | None = None,
             if_exists: bool = False) -> None:
        with self._mutex:
            entry = self._entries.get(name)
            if entry is None or entry.dropped:
                if if_exists:
                    return
                raise EntityNotFound(f"unknown entity: {name}")
            if kind is not None and entry.kind != kind:
                raise CatalogError(
                    f"{name!r} is a {entry.kind}, not a {kind}")
            entry.dropped = True
            self._log("drop", entry.kind, name)
            if self.durability is not None:
                self.durability.log_ddl(
                    "drop", {"name": name, "kind": entry.kind}, self.epoch)

    def undrop(self, name: str, kind: str | None = None) -> None:
        with self._mutex:
            entry = self._entries.get(name)
            if entry is None or not entry.dropped:
                raise EntityNotFound(f"no dropped entity named {name!r}")
            if kind is not None and entry.kind != kind:
                raise CatalogError(f"{name!r} is a {entry.kind}, not a {kind}")
            entry.dropped = False
            self._log("undrop", entry.kind, name)
            if self.durability is not None:
                self.durability.log_ddl(
                    "undrop", {"name": name, "kind": entry.kind}, self.epoch)

    def rename(self, name: str, new_name: str) -> None:
        with self._mutex:
            entry = self.get(name)
            if self.exists(new_name):
                raise CatalogError(f"entity {new_name!r} already exists")
            del self._entries[name]
            entry.name = new_name
            if isinstance(entry.payload, VersionedTable):
                entry.payload.name = new_name
            self._entries[new_name] = entry
            self._log("rename", entry.kind, name, detail=f"-> {new_name}")
            if self.durability is not None:
                self.durability.log_ddl(
                    "rename", {"name": name, "new_name": new_name},
                    self.epoch)

    def log_alter(self, kind: str, name: str, detail: str) -> None:
        with self._mutex:
            self._log("alter", kind, name, detail)
            if self.durability is not None:
                self.durability.log_ddl(
                    "alter", {"kind": kind, "name": name, "detail": detail},
                    self.epoch)
