"""Immutable micro-partitions with per-column zone maps.

Snowflake tables are stored as immutable micro-partitions; a table version
is a set of partitions, and every change is expressed as partitions added
and removed (copy-on-write). We reproduce that model because two behaviours
the paper discusses fall out of it naturally:

* **change queries** (the Streams substrate of [5], section 5.5): the
  changes between two versions are exactly the rows of the added
  partitions minus the rows of the removed partitions, with identical
  copied rows cancelling — including the *read amplification* effect of
  section 5.5.2 ("naively reading from added and removed partitions ...
  often causes read amplification"), which our consolidation eliminates;
* **data-equivalent operations** (section 5.5.2): background reclustering
  rewrites partitions without changing logical contents; versions flagged
  data-equivalent are skipped by the differ.

Since the columnar-execution refactor a partition stores its data
**column-major**: ``row_ids`` is a tuple of stable identifiers and
``columns[i]`` is the tuple of column ``i``'s values, parallel to it.
This is the on-disk shape Snowflake's micro-partition format presumes
(column chunks within an immutable file): scans hand whole column arrays
to the vectorized evaluators without ever building row tuples, and zone
maps are a single min/max pass over an already-materialized column array.
The old ``rows`` view — a tuple of ``(row_id, row)`` pairs — remains as a
lazily cached compatibility property for row-oriented consumers
(transaction overlays, DML partition rewrites).

Each partition is stamped at creation with per-column **zone maps**
(min/max plus a value-kind tag), mirroring Snowflake's per-micro-partition
metadata. Scans with pushed-down column bounds use them to skip partitions
wholesale; the pruning is conservative — a partition is only skipped when
*no* row in it could satisfy the bounds under exact SQL semantics
(including NULL comparisons evaluating to NULL, and mixed-type columns
never being pruned so runtime type errors still surface).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Optional, Sequence


#: Global partition id allocator (ids only need to be unique per process).
_partition_ids = itertools.count(1)


@dataclass(frozen=True)
class ColumnStats:
    """Zone-map entry for one column of one partition.

    ``kind`` is ``"num"`` (all non-NULL values are int/float, no NaN),
    ``"str"`` (all non-NULL values are text), ``None`` (every value is
    NULL), or ``"other"`` (mixed or non-orderable values — never pruned).
    ``low``/``high`` are only meaningful for ``"num"`` and ``"str"``.
    """

    kind: Optional[str]
    low: object = None
    high: object = None
    has_null: bool = False


def _column_stats(values: Iterable[object]) -> ColumnStats:
    kind: Optional[str] = None
    low = high = None
    has_null = False
    other = False
    for value in values:
        # has_null must stay accurate even for "other"-kind columns: the
        # IS NULL pruning rule relies on it, so the scan never stops early.
        if value is None:
            has_null = True
            continue
        if other:
            continue
        if isinstance(value, bool):
            other = True
            continue
        if isinstance(value, (int, float)):
            if isinstance(value, float) and value != value:  # NaN
                other = True
                continue
            value_kind = "num"
        elif isinstance(value, str):
            value_kind = "str"
        else:
            other = True
            continue
        if kind is None:
            kind = value_kind
            low = high = value
        elif kind != value_kind:
            other = True
        else:
            if value < low:
                low = value
            if value > high:
                high = value
    if other:
        return ColumnStats("other", has_null=has_null)
    return ColumnStats(kind, low, high, has_null)


def zone_maps_of_columns(columns: Sequence[Sequence],
                         ) -> tuple[ColumnStats, ...]:
    """Per-column stats over already-materialized column arrays — the
    nearly-free columnar zone-map construction (one pass per array, no
    row-tuple indexing)."""
    return tuple(_column_stats(column) for column in columns)


def build_zone_maps(rows: Sequence[tuple[str, tuple]]) -> tuple[ColumnStats, ...]:
    """Per-column stats over the ``(row_id, row)`` pairs of a partition
    (row-major compatibility entry point)."""
    if not rows:
        return ()
    width = len(rows[0][1])
    return tuple(
        _column_stats(row[index] if index < len(row) else None
                      for __, row in rows)
        for index in range(width))


def _columns_of_pairs(rows: Sequence[tuple[str, tuple]],
                      ) -> tuple[tuple, ...]:
    """Transpose ``(row_id, row)`` pairs into column arrays. Width follows
    the first row; short rows pad with NULL (matching what the zone maps
    have always assumed for ragged input)."""
    if not rows:
        return ()
    width = len(rows[0][1])
    uniform = all(len(row) == width for __, row in rows)
    if uniform:
        return tuple(zip(*(row for __, row in rows)))
    return tuple(
        tuple(row[index] if index < len(row) else None for __, row in rows)
        for index in range(width))


def _range_allows(stats: ColumnStats, op: str, value: object) -> bool:
    """Whether any non-NULL value in [low, high] could satisfy
    ``col <op> value``. Callers must have established kind safety first."""
    if op == "=":
        return stats.low <= value <= stats.high
    if op == "<":
        return stats.low < value
    if op == "<=":
        return stats.low <= value
    if op == ">":
        return stats.high > value
    if op == ">=":
        return stats.high >= value
    if op in ("!=", "<>"):
        # Excludable only when every non-NULL value equals the literal.
        return not (stats.low == value == stats.high)
    return True


@dataclass(frozen=True)
class Partition:
    """An immutable columnar bundle of rows with zone maps.

    ``columns[i][j]`` is column ``i`` of row ``j``; ``row_ids[j]`` is row
    ``j``'s stable identifier.
    """

    id: int
    row_ids: tuple[str, ...]
    columns: tuple[tuple, ...]
    zone_maps: tuple[ColumnStats, ...] = ()

    @staticmethod
    def create(rows: Sequence[tuple[str, tuple]]) -> "Partition":
        """Build from ``(row_id, row)`` pairs (compatibility constructor)."""
        columns = _columns_of_pairs(rows)
        return Partition(next(_partition_ids),
                         tuple(row_id for row_id, __ in rows),
                         columns, zone_maps_of_columns(columns))

    @staticmethod
    def from_columns(row_ids: Sequence[str],
                     columns: Sequence[Sequence]) -> "Partition":
        """Build directly from parallel column arrays (the columnar write
        path; zone maps are a min/max pass over each array)."""
        cols = tuple(tuple(column) for column in columns)
        return Partition(next(_partition_ids), tuple(row_ids), cols,
                         zone_maps_of_columns(cols))

    def __len__(self) -> int:
        return len(self.row_ids)

    @cached_property
    def row_tuples(self) -> tuple[tuple, ...]:
        """Row tuples (lazily cached transpose of ``columns``)."""
        if not self.columns:
            return ((),) * len(self.row_ids)
        return tuple(zip(*self.columns))

    @cached_property
    def rows(self) -> tuple[tuple[str, tuple], ...]:
        """``(row_id, row)`` pairs — the pre-columnar compatibility view."""
        return tuple(zip(self.row_ids, self.row_tuples))

    def might_match(self, bounds: Sequence[tuple]) -> bool:
        """Whether this partition could contain a row satisfying the
        conjunction of scan bounds (see
        :func:`repro.engine.executor.extract_scan_bounds`). False means
        the partition can be skipped.

        Soundness: the partition is only skipped when, for every row, the
        full predicate provably evaluates to FALSE or NULL *without
        raising*. Each ``("cmp", ...)`` bound therefore first checks kind
        safety — a column whose values are mixed-kind, boolean, NaN, or of
        a different kind than the literal could make ``t.compare`` raise,
        so such a partition is never skipped (returns True immediately).
        """
        zone_maps = self.zone_maps
        excluded = False
        for bound in bounds:
            if bound[0] == "cmp":
                __, index, op, value = bound
                if index >= len(zone_maps):
                    return True  # ragged row shape: cannot reason
                stats = zone_maps[index]
                if stats.kind is None:
                    # All NULL: the comparison is NULL on every row —
                    # never raises, never selects.
                    excluded = True
                    continue
                value_kind = ("num" if isinstance(value, (int, float))
                              and not isinstance(value, bool) else "str")
                if stats.kind != value_kind:
                    # Mixed/boolean column or kind mismatch: evaluating
                    # this conjunct could raise; keep the partition.
                    return True
                if not _range_allows(stats, op, value):
                    excluded = True
            else:  # ("null", index, negated) — IS [NOT] NULL never raises
                __, index, negated = bound
                if index >= len(zone_maps):
                    return True
                stats = zone_maps[index]
                if not negated:
                    if not stats.has_null:
                        excluded = True  # no NULLs: IS NULL false per row
                elif stats.kind is None:
                    excluded = True  # all NULL: IS NOT NULL false per row
        return not excluded

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Partition(id={self.id}, rows={len(self.row_ids)})"


def build_partitions(rows: list[tuple[str, tuple]],
                     max_rows: int) -> list[Partition]:
    """Chunk rows into partitions of at most ``max_rows`` rows."""
    partitions = []
    for start in range(0, len(rows), max_rows):
        partitions.append(Partition.create(tuple(rows[start:start + max_rows])))
    return partitions
