"""Immutable micro-partitions.

Snowflake tables are stored as immutable micro-partitions; a table version
is a set of partitions, and every change is expressed as partitions added
and removed (copy-on-write). We reproduce that model because two behaviours
the paper discusses fall out of it naturally:

* **change queries** (the Streams substrate of [5], section 5.5): the
  changes between two versions are exactly the rows of the added
  partitions minus the rows of the removed partitions, with identical
  copied rows cancelling — including the *read amplification* effect of
  section 5.5.2 ("naively reading from added and removed partitions ...
  often causes read amplification"), which our consolidation eliminates;
* **data-equivalent operations** (section 5.5.2): background reclustering
  rewrites partitions without changing logical contents; versions flagged
  data-equivalent are skipped by the differ.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass


#: Global partition id allocator (ids only need to be unique per process).
_partition_ids = itertools.count(1)


@dataclass(frozen=True)
class Partition:
    """An immutable bundle of ``(row_id, row)`` pairs."""

    id: int
    rows: tuple[tuple[str, tuple], ...]

    @staticmethod
    def create(rows: tuple[tuple[str, tuple], ...]) -> "Partition":
        return Partition(next(_partition_ids), rows)

    def __len__(self) -> int:
        return len(self.rows)

    def row_ids(self) -> list[str]:
        return [row_id for row_id, __ in self.rows]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Partition(id={self.id}, rows={len(self.rows)})"


def build_partitions(rows: list[tuple[str, tuple]],
                     max_rows: int) -> list[Partition]:
    """Chunk rows into partitions of at most ``max_rows`` rows."""
    partitions = []
    for start in range(0, len(rows), max_rows):
        partitions.append(Partition.create(tuple(rows[start:start + max_rows])))
    return partitions
