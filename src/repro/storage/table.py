"""Versioned tables: copy-on-write partition sets with time travel.

A :class:`VersionedTable` is the storage object behind both base tables and
dynamic tables. Every committed mutation produces a new
:class:`TableVersion` — an immutable set of partition ids stamped with the
transaction's HLC commit timestamp. Reading "as of" a time resolves the
version with the largest commit timestamp ≤ t (section 5.3 of the paper),
which is what makes delayed view semantics implementable: a refresh
evaluates its defining query against source versions resolved at its data
timestamp.

Dynamic tables additionally maintain the **refresh-timestamp → version**
mapping of section 5.3 ("we store a mapping from refresh timestamp to
commit timestamp for each DT's table versions"), exposed via
:meth:`VersionedTable.register_refresh` / :meth:`version_for_refresh`. A
missing entry raises :class:`~repro.errors.VersionNotFound` — the paper's
first production validation.
"""

from __future__ import annotations

import bisect
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.engine.relation import Relation, columnar_enabled
from repro.engine.schema import Schema
from repro.errors import ChangeIntegrityError, InternalError, VersionNotFound
from repro.faults import inject
from repro.ivm import rowid
from repro.ivm.changes import ChangeSet
from repro.storage.partition import Partition, build_partitions
from repro.txn.hlc import HLC_ZERO, HlcTimestamp
from repro.util.timeutil import Timestamp

#: Default micro-partition capacity, in rows.
DEFAULT_PARTITION_ROWS = 4096

#: How many materialized versions the per-table relation cache retains.
#: Long refresh histories produce unboundedly many versions; only the most
#: recently read few are worth keeping in memory.
RELATION_CACHE_VERSIONS = 8

#: Upper bound on HLC logical components, used when resolving a bare wall
#: timestamp: every commit at that wall clock is visible.
_MAX_LOGICAL = float("inf")


@dataclass(frozen=True)
class TableVersion:
    """One immutable version of a table."""

    index: int
    commit_ts: HlcTimestamp
    partition_ids: frozenset[int]
    #: True for versions created by data-equivalent maintenance
    #: (reclustering); the differ skips these (section 5.5.2).
    data_equivalent: bool = False
    #: Row ids this commit deleted or updated — its *conflict footprint*.
    #: Inserted rows are absent: their ids are freshly allocated at apply
    #: time, so no concurrent transaction can have staged a write against
    #: them. Row-level first-committer-wins intersects footprints.
    written_ids: frozenset[str] = frozenset()
    #: True when this commit replaced the table wholesale (overwrite
    #: refresh / INSERT OVERWRITE): it conflicts with every concurrent
    #: writer regardless of row ids.
    overwrote: bool = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TableVersion(#{self.index}, commit={self.commit_ts}, "
                f"partitions={len(self.partition_ids)})")


@dataclass
class StagedWrite:
    """Uncommitted DML staged by a transaction against one table.

    ``inserts`` are value rows (ids assigned at apply time); ``deletes``
    are existing row ids; ``updates`` map an existing row id to its new
    contents (same identity). ``changeset`` is the refresh-merge path: a
    consolidated :class:`ChangeSet` carrying explicit row ids.
    """

    inserts: list[tuple] = field(default_factory=list)
    deletes: set[str] = field(default_factory=set)
    updates: dict[str, tuple] = field(default_factory=dict)
    changeset: Optional[ChangeSet] = None
    overwrite: bool = False  # INSERT OVERWRITE: replace all contents

    @property
    def is_empty(self) -> bool:
        return (not self.inserts and not self.deletes and not self.updates
                and self.changeset is None and not self.overwrite)

    @property
    def is_blind_append(self) -> bool:
        """True when the write only inserts new rows. A blind append
        cannot lose anyone's update, so snapshot isolation's
        first-committer-wins validation does not apply to it — two
        transactions appending to one table may both commit."""
        return (bool(self.inserts) and not self.deletes
                and not self.updates and self.changeset is None
                and not self.overwrite)

    @property
    def written_row_ids(self) -> Optional[frozenset[str]]:
        """The existing row ids this write touches (its conflict
        footprint), or ``None`` for an overwrite — which touches every
        row, present and future, of the table. Inserts never contribute:
        their ids do not exist until apply time."""
        if self.overwrite:
            return None
        ids: set[str] = set(self.deletes)
        ids.update(self.updates)
        if self.changeset is not None:
            ids.update(self.changeset.delete_arrays()[0])
        return frozenset(ids)


class VersionedTable:
    """A multi-versioned, micro-partitioned table."""

    def __init__(self, name: str, schema: Schema, table_seq: int,
                 partition_rows: int = DEFAULT_PARTITION_ROWS):
        self.name = name
        self.schema = schema
        self.table_seq = table_seq
        self.partition_rows = partition_rows
        self._partitions: dict[int, Partition] = {}
        self._versions: list[TableVersion] = [
            TableVersion(0, HLC_ZERO, frozenset())]
        #: Commit timestamps as (wall, logical) pairs, parallel to
        #: ``_versions``; bisected on the *full* HLC order so commits that
        #: share a wall clock still resolve deterministically.
        self._commit_keys: list[tuple[Timestamp, int]] = [
            (HLC_ZERO.wall, HLC_ZERO.logical)]
        self._next_row_seq = 0
        #: Row locator for the *latest* version: row_id -> partition id.
        self._locator: dict[str, int] = {}
        #: refresh data timestamp -> version index (dynamic tables only).
        self._refresh_versions: dict[Timestamp, int] = {}
        #: Bounded LRU of materialized relations keyed by version index.
        self._relation_cache: OrderedDict[int, Relation] = OrderedDict()
        self._relation_cache_limit = RELATION_CACHE_VERSIONS

    # -- version resolution ---------------------------------------------------

    @property
    def current_version(self) -> TableVersion:
        return self._versions[-1]

    @property
    def versions(self) -> list[TableVersion]:
        """A snapshot copy of all versions. O(V) — hot paths should use
        :meth:`version` / :attr:`version_count` instead."""
        return list(self._versions)

    def version(self, index: int) -> TableVersion:
        """O(1) access to the version with the given index."""
        return self._versions[index]

    @property
    def version_count(self) -> int:
        return len(self._versions)

    def version_at(self, point: Timestamp | HlcTimestamp) -> TableVersion:
        """The version with the largest commit timestamp ≤ ``point``
        (section 5.3's visibility rule for regular tables).

        ``point`` may be a plain wall timestamp — in which case every
        commit at that wall clock, whatever its logical component, is
        visible — or a full :class:`HlcTimestamp`, which discriminates
        between commits sharing a wall clock."""
        if isinstance(point, HlcTimestamp):
            key = (point.wall, point.logical)
        else:
            key = (point, _MAX_LOGICAL)
        index = bisect.bisect_right(self._commit_keys, key) - 1
        if index < 0:
            raise VersionNotFound(
                f"table {self.name!r} has no version at or before t={point}")
        return self._versions[index]

    def register_refresh(self, refresh_ts: Timestamp,
                         version: TableVersion) -> None:
        """Record that ``version`` carries the contents as of the refresh's
        data timestamp (the refresh-ts → commit-ts mapping of section 5.3)."""
        self._refresh_versions[refresh_ts] = version.index

    def version_for_refresh(self, refresh_ts: Timestamp) -> TableVersion:
        """Exact-match lookup used when one DT reads another (section 6.1's
        first validation: fail the refresh if the version is missing)."""
        index = self._refresh_versions.get(refresh_ts)
        if index is None:
            raise VersionNotFound(
                f"dynamic table {self.name!r} has no version for refresh "
                f"timestamp {refresh_ts}")
        return self._versions[index]

    def refresh_timestamps(self) -> list[Timestamp]:
        return sorted(self._refresh_versions)

    # -- reads ------------------------------------------------------------------

    def relation(self, version: TableVersion | None = None) -> Relation:
        """Materialize a version as a Relation (bounded LRU cache)."""
        if version is None:
            version = self.current_version
        cached = self._relation_cache.get(version.index)
        if cached is not None:
            try:
                self._relation_cache.move_to_end(version.index)
            except KeyError:
                # Concurrent reader evicted the entry between get and
                # move_to_end; the materialized relation itself is still
                # valid (immutable), so just serve it.
                pass
            return cached
        relation = self._materialize(sorted(version.partition_ids))
        self._relation_cache[version.index] = relation
        while len(self._relation_cache) > self._relation_cache_limit:
            self._relation_cache.popitem(last=False)
        return relation

    def _materialize(self, partition_ids: Sequence[int]) -> Relation:
        """Concatenate partitions into one relation. The columnar path
        extends per-column accumulators with whole partition column
        arrays — no row tuples are ever built; the row-major path (kept
        for the ablation benchmark) appends row by row as before."""
        if columnar_enabled():
            ids: list[str] = []
            columns: list[list] = [[] for __ in range(len(self.schema))]
            for partition_id in partition_ids:
                partition = self._partitions[partition_id]
                ids.extend(partition.row_ids)
                for accumulator, column in zip(columns, partition.columns):
                    accumulator.extend(column)
            return Relation.from_columns(self.schema, columns, ids)
        relation = Relation(self.schema)
        for partition_id in partition_ids:
            for row_id, row in self._partitions[partition_id].rows:
                relation.append(row_id, row)
        return relation

    def relation_pruned(self, version: TableVersion | None,
                        bounds: Sequence[tuple[int, str, object]]) -> Relation:
        """Materialize a version, skipping partitions whose zone maps prove
        no row can satisfy the pushed-down ``(column, op, value)`` bounds.

        The result preserves partition-id scan order, so it is the
        :meth:`relation` output minus rows the caller's predicate would
        reject anyway — pruning never changes query results."""
        if version is None:
            version = self.current_version
        ordered = sorted(version.partition_ids)
        kept = [partition_id for partition_id in ordered
                if self._partitions[partition_id].might_match(bounds)]
        if len(kept) == len(ordered):
            # Nothing pruned: serve the (cached) full materialization
            # instead of rebuilding an identical relation per call.
            return self.relation(version)
        return self._materialize(kept)

    def rows_by_id(self, version: TableVersion | None = None) -> dict[str, tuple]:
        relation = self.relation(version)
        return dict(relation.pairs())

    def row_count(self, version: TableVersion | None = None) -> int:
        if version is None:
            version = self.current_version
        return sum(len(self._partitions[pid]) for pid in version.partition_ids)

    def partitions_of(self, version: TableVersion) -> list[Partition]:
        return [self._partitions[pid] for pid in sorted(version.partition_ids)]

    def partition(self, partition_id: int) -> Partition:
        """O(1) access to one partition by id (change-query pruning)."""
        return self._partitions[partition_id]

    # -- mutation (called by the transaction manager at commit) ---------------

    def apply(self, write: StagedWrite, commit_ts: HlcTimestamp) -> TableVersion:
        """Apply a staged write, producing and installing a new version."""
        inject("storage.apply", table=self.name)
        if commit_ts <= self.current_version.commit_ts:
            raise InternalError(
                f"non-monotonic commit timestamp on table {self.name!r}")
        if write.changeset is not None:
            return self._apply_changeset(write.changeset, commit_ts,
                                         overwrite=write.overwrite)
        if write.overwrite:
            return self._apply_overwrite(write.inserts, commit_ts)
        return self._apply_dml(write, commit_ts)

    def _allocate_ids(self, count: int) -> list[str]:
        start = self._next_row_seq
        self._next_row_seq += count
        return [rowid.base_id(self.table_seq, start + offset)
                for offset in range(count)]

    def _apply_dml(self, write: StagedWrite,
                   commit_ts: HlcTimestamp) -> TableVersion:
        touched: dict[int, dict[str, tuple | None]] = {}
        for row_id in write.deletes:
            partition_id = self._locator.get(row_id)
            if partition_id is None:
                raise ChangeIntegrityError(
                    f"delete of nonexistent row {row_id} in {self.name!r}")
            touched.setdefault(partition_id, {})[row_id] = None
        for row_id, new_row in write.updates.items():
            partition_id = self._locator.get(row_id)
            if partition_id is None:
                raise ChangeIntegrityError(
                    f"update of nonexistent row {row_id} in {self.name!r}")
            touched.setdefault(partition_id, {})[row_id] = new_row

        removed: set[int] = set(touched)
        added: list[Partition] = []
        for partition_id, edits in touched.items():
            survivors = []
            for row_id, row in self._partitions[partition_id].rows:
                if row_id in edits:
                    replacement = edits[row_id]
                    if replacement is not None:
                        survivors.append((row_id, replacement))
                else:
                    survivors.append((row_id, row))
            if survivors:
                added.extend(build_partitions(survivors, self.partition_rows))

        if write.inserts:
            new_ids = self._allocate_ids(len(write.inserts))
            pairs = list(zip(new_ids, write.inserts))
            added.extend(build_partitions(pairs, self.partition_rows))

        footprint = frozenset(write.deletes) | frozenset(write.updates)
        return self._install(removed, added, commit_ts,
                             written_ids=footprint)

    def _apply_overwrite(self, rows: list[tuple],
                         commit_ts: HlcTimestamp) -> TableVersion:
        removed = set(self.current_version.partition_ids)
        new_ids = self._allocate_ids(len(rows))
        added = build_partitions(list(zip(new_ids, rows)), self.partition_rows)
        return self._install(removed, added, commit_ts, overwrote=True)

    def _apply_changeset(self, changes: ChangeSet, commit_ts: HlcTimestamp,
                         overwrite: bool = False) -> TableVersion:
        """Merge a consolidated change set (the refresh-merge of section
        5.4: "a merge operator ... applies the DELETE and INSERT actions to
        the DT itself"). Row ids come from the change set."""
        changes.validate(self._locator if not overwrite else None)
        insert_ids, insert_rows = changes.insert_arrays()
        if overwrite:
            removed = set(self.current_version.partition_ids)
            added = build_partitions(list(zip(insert_ids, insert_rows)),
                                     self.partition_rows)
            return self._install(removed, added, commit_ts, overwrote=True)

        delete_ids = changes.delete_arrays()[0]
        touched: dict[int, set[str]] = {}
        for row_id in delete_ids:
            partition_id = self._locator[row_id]
            touched.setdefault(partition_id, set()).add(row_id)

        removed = set(touched)
        added: list[Partition] = []
        for partition_id, dead in touched.items():
            survivors = [(row_id, row)
                         for row_id, row in self._partitions[partition_id].rows
                         if row_id not in dead]
            if survivors:
                added.extend(build_partitions(survivors, self.partition_rows))

        if insert_ids:
            added.extend(build_partitions(list(zip(insert_ids, insert_rows)),
                                          self.partition_rows))
        return self._install(removed, added, commit_ts,
                             written_ids=frozenset(delete_ids))

    def clone(self, name: str, table_seq: int,
              commit_ts: HlcTimestamp) -> "VersionedTable":
        """Zero-copy clone (section 3.4): the new table shares this
        table's immutable partitions by reference — "copying only its
        metadata". The clone starts with one version holding the current
        partition set; future writes diverge independently (fresh row-id
        namespace via ``table_seq``)."""
        cloned = VersionedTable(name, self.schema, table_seq,
                                self.partition_rows)
        # Continue the source's row-sequence counter: the clone carries
        # rows under the source's id namespace, and a fresh counter could
        # collide with them when the two tables share a table_seq (which
        # happens under cross-database replication).
        cloned._next_row_seq = self._next_row_seq
        current = self.current_version
        for partition_id in current.partition_ids:
            cloned._partitions[partition_id] = self._partitions[partition_id]
        version = TableVersion(1, commit_ts, current.partition_ids)
        cloned._versions.append(version)
        cloned._commit_keys.append((commit_ts.wall, commit_ts.logical))
        for partition_id in current.partition_ids:
            for row_id in cloned._partitions[partition_id].row_ids:
                cloned._locator[row_id] = partition_id
        return cloned

    def recluster(self, commit_ts: HlcTimestamp) -> TableVersion:
        """Rewrite all partitions into normalized sizes without changing
        logical contents — a data-equivalent maintenance operation
        (section 5.5.2). The new version is flagged so the differ skips it."""
        current = self.current_version
        pairs: list[tuple[str, tuple]] = []
        for partition in self.partitions_of(current):
            pairs.extend(partition.rows)
        removed = set(current.partition_ids)
        added = build_partitions(pairs, self.partition_rows)
        return self._install(removed, added, commit_ts, data_equivalent=True)

    def _install(self, removed: set[int], added: list[Partition],
                 commit_ts: HlcTimestamp,
                 data_equivalent: bool = False,
                 written_ids: frozenset[str] = frozenset(),
                 overwrote: bool = False) -> TableVersion:
        current = self.current_version
        partition_ids = (current.partition_ids - frozenset(removed)) | frozenset(
            partition.id for partition in added)
        version = TableVersion(len(self._versions), commit_ts,
                               frozenset(partition_ids), data_equivalent,
                               written_ids, overwrote)
        for partition in added:
            self._partitions[partition.id] = partition
            for row_id in partition.row_ids:
                self._locator[row_id] = partition.id
        for partition_id in removed:
            for row_id in self._partitions[partition_id].row_ids:
                if self._locator.get(row_id) == partition_id:
                    del self._locator[row_id]
        self._versions.append(version)
        self._commit_keys.append((commit_ts.wall, commit_ts.logical))
        return version

    # -- durability ---------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Checkpointable state, as plain Python objects. Partition
        *contents* are not included — checkpoints pool partitions across
        tables (clones share them by reference) and store only ids here;
        see :mod:`repro.durability.checkpoint`."""
        return {
            "name": self.name,
            "schema": self.schema,
            "table_seq": self.table_seq,
            "partition_rows": self.partition_rows,
            "next_row_seq": self._next_row_seq,
            "partition_ids": sorted(self._partitions),
            "versions": [(version.index, version.commit_ts,
                          sorted(version.partition_ids),
                          version.data_equivalent)
                         for version in self._versions],
            "refresh_versions": sorted(self._refresh_versions.items()),
        }

    @classmethod
    def from_snapshot(cls, state: dict,
                      partitions: dict[int, Partition]) -> "VersionedTable":
        """Rebuild a table from :meth:`snapshot_state` output.

        ``partitions`` maps the *snapshotted* partition ids to restored
        :class:`Partition` objects (whose process-local ids are fresh);
        sharing the same map across tables preserves zero-copy clone
        sharing through a checkpoint/restore cycle.
        """
        table = cls(state["name"], state["schema"], state["table_seq"],
                    state["partition_rows"])
        table._next_row_seq = state["next_row_seq"]
        table._partitions = {partitions[old_id].id: partitions[old_id]
                             for old_id in state["partition_ids"]}
        versions: list[TableVersion] = []
        commit_keys: list[tuple[Timestamp, int]] = []
        # Conflict footprints are not checkpointed: every transaction
        # started after a restore snapshots at or past the restored head,
        # so pre-checkpoint versions can never be conflict candidates.
        for index, commit_ts, partition_ids, data_equivalent in state["versions"]:
            versions.append(TableVersion(
                index, commit_ts,
                frozenset(partitions[old_id].id for old_id in partition_ids),
                data_equivalent))
            commit_keys.append((commit_ts.wall, commit_ts.logical))
        table._versions = versions
        table._commit_keys = commit_keys
        locator: dict[str, int] = {}
        for partition_id in versions[-1].partition_ids:
            for row_id in table._partitions[partition_id].row_ids:
                locator[row_id] = partition_id
        table._locator = locator
        table._refresh_versions = dict(state["refresh_versions"])
        return table

    # -- introspection -----------------------------------------------------------

    def partition_count(self, version: TableVersion | None = None) -> int:
        if version is None:
            version = self.current_version
        return len(version.partition_ids)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"VersionedTable({self.name!r}, rows={self.row_count()}, "
                f"versions={len(self._versions)})")
