"""The execution engine: values, expressions, schemas, and the executor."""

from repro.engine.executor import evaluate
from repro.engine.relation import DictResolver, Relation
from repro.engine.schema import Column, Schema, schema_of
from repro.engine.types import SqlType

__all__ = ["Column", "DictResolver", "Relation", "Schema", "SqlType",
           "evaluate", "schema_of"]
