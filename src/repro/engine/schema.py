"""Relation schemas and rows.

A row is a plain ``tuple`` of values; a :class:`Schema` names and types the
positions. Relations flowing between operators are lists of rows paired with
a schema. Keeping rows as bare tuples (rather than dict-per-row) keeps the
executor and the IVM delta machinery cheap and hashable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.engine.types import SqlType
from repro.errors import BindError

Row = tuple


@dataclass(frozen=True)
class Column:
    """A named, typed column. ``table`` is the binding qualifier (the table
    name or alias the column came from), used for name resolution only."""

    name: str
    type: SqlType
    table: str | None = None

    def renamed(self, name: str) -> "Column":
        return Column(name, self.type, self.table)

    def requalified(self, table: str | None) -> "Column":
        return Column(self.name, self.type, table)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        qualifier = f"{self.table}." if self.table else ""
        return f"{qualifier}{self.name}:{self.type}"


class Schema:
    """An ordered list of :class:`Column` with name-resolution helpers.

    Column names are case-insensitive (normalized to lower case by the SQL
    frontend). Duplicate names are allowed in intermediate schemas (e.g.
    after a join); resolving an ambiguous unqualified name raises
    :class:`~repro.errors.BindError`.
    """

    __slots__ = ("columns",)

    def __init__(self, columns: Iterable[Column]):
        self.columns: tuple[Column, ...] = tuple(columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __getitem__(self, index: int) -> Column:
        return self.columns[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.columns == other.columns

    def __hash__(self) -> int:
        return hash(self.columns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Schema({', '.join(map(repr, self.columns))})"

    @property
    def names(self) -> list[str]:
        return [column.name for column in self.columns]

    @property
    def types(self) -> list[SqlType]:
        return [column.type for column in self.columns]

    def resolve(self, name: str, table: str | None = None) -> int:
        """Resolve a (possibly qualified) column name to its index.

        Raises :class:`~repro.errors.BindError` if the name is unknown or
        ambiguous.
        """
        matches = [
            index
            for index, column in enumerate(self.columns)
            if column.name == name and (table is None or column.table == table)
        ]
        if not matches:
            qualified = f"{table}.{name}" if table else name
            raise BindError(f"unknown column: {qualified}")
        if len(matches) > 1:
            qualified = f"{table}.{name}" if table else name
            raise BindError(f"ambiguous column: {qualified}")
        return matches[0]

    def maybe_resolve(self, name: str, table: str | None = None) -> int | None:
        """Like :meth:`resolve` but returns None when absent (still raises
        on ambiguity, which is always a user error)."""
        try:
            return self.resolve(name, table)
        except BindError as exc:
            if "ambiguous" in str(exc):
                raise
            return None

    def index_map(self) -> dict[str, int]:
        """Map of unambiguous lower-case names to indices."""
        seen: dict[str, int | None] = {}
        for index, column in enumerate(self.columns):
            if column.name in seen:
                seen[column.name] = None
            else:
                seen[column.name] = index
        return {name: index for name, index in seen.items() if index is not None}

    def concat(self, other: "Schema") -> "Schema":
        return Schema(self.columns + other.columns)

    def requalified(self, table: str | None) -> "Schema":
        return Schema(column.requalified(table) for column in self.columns)

    def project(self, indices: Sequence[int]) -> "Schema":
        return Schema(self.columns[index] for index in indices)


def schema_of(*pairs: tuple[str, SqlType], table: str | None = None) -> Schema:
    """Convenience constructor: ``schema_of(("a", SqlType.INT), ...)``."""
    return Schema(Column(name, sql_type, table) for name, sql_type in pairs)
