"""Relations: schema + rows + stable row identifiers.

A :class:`Relation` is what flows from storage into the executor and the
differentiation framework. ``row_ids`` is parallel to ``rows`` and carries
the stable per-row identifiers that incremental view maintenance threads
through every operator (section 5.5: "Incremental DTs define a unique ID
for every row in the query result, and store those IDs alongside the
data").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Protocol

from repro.engine.schema import Schema


@dataclass
class Relation:
    """An in-memory bag of rows with parallel row ids."""

    schema: Schema
    rows: list[tuple] = field(default_factory=list)
    row_ids: list[str] = field(default_factory=list)

    def __post_init__(self):
        if self.row_ids and len(self.row_ids) != len(self.rows):
            raise ValueError("row_ids must parallel rows")
        if not self.row_ids and self.rows:
            # Positional fallback ids; storage always provides real ids.
            self.row_ids = [f"pos:{index}" for index in range(len(self.rows))]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def pairs(self) -> Iterator[tuple[str, tuple]]:
        """Iterate ``(row_id, row)`` pairs."""
        return zip(self.row_ids, self.rows)

    def append(self, row_id: str, row: tuple) -> None:
        self.rows.append(row)
        self.row_ids.append(row_id)

    @staticmethod
    def from_pairs(schema: Schema, pairs: Iterable[tuple[str, tuple]]) -> "Relation":
        relation = Relation(schema)
        for row_id, row in pairs:
            relation.append(row_id, row)
        return relation


class SnapshotResolver(Protocol):
    """Resolves table names to relations at one fixed point in time.

    Implementations: a transaction's snapshot view
    (:class:`repro.txn.manager.Transaction`), or a plain dict in tests. The
    executor never touches the catalog directly — this is what lets a
    dynamic-table refresh evaluate its defining query "as of" its data
    timestamp (delayed view semantics).
    """

    def scan(self, table: str) -> Relation:
        """The contents of ``table`` in this snapshot."""
        ...


class DictResolver:
    """A SnapshotResolver over ``{name: Relation}`` (for tests)."""

    def __init__(self, relations: dict[str, Relation]):
        self._relations = relations

    def scan(self, table: str) -> Relation:
        return self._relations[table]
