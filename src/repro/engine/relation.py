"""Relations: schema + columnar row storage + stable row identifiers.

A :class:`Relation` is what flows from storage into the executor and the
differentiation framework. Since the columnar-execution refactor it is a
**columnar block**: the canonical layout is a list of parallel per-column
value arrays plus a ``row_ids`` array carrying the stable per-row
identifiers that incremental view maintenance threads through every
operator (section 5.5: "Incremental DTs define a unique ID for every row
in the query result, and store those IDs alongside the data").

Compatibility view
------------------

Every pre-existing row-tuple entry point is preserved: ``Relation(schema,
rows, row_ids)`` construction, ``rows`` access, ``pairs()``, ``__iter__``,
``append`` and ``from_pairs`` all keep working. Internally the relation
holds *either* layout (whichever it was built from) and materializes the
other lazily, caching it; ``append`` keeps every materialized layout in
sync. Hot paths — storage scans, vectorized filters/projections — build
and consume the columnar layout directly and never pay for row tuples;
row-oriented code (joins, sorts, external callers) reads the ``rows``
view and is none the wiser.

The module-level :func:`row_major_mode` switch exists for the ablation
benchmark (``bench_t11_columnar_scan``): with columnar execution disabled,
storage materialization and the executor kernels fall back to the
pre-refactor row-at-a-time code paths, which is what the reported
"row-major baseline" numbers measure.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, Optional, Protocol, Sequence

from repro.engine.schema import Schema

#: Whether hot paths build/consume the columnar layout. Toggled only by
#: :func:`row_major_mode` (benchmark ablation); normal operation is True.
_COLUMNAR_ENABLED = True


def columnar_enabled() -> bool:
    """Whether columnar fast paths are active (see :func:`row_major_mode`)."""
    return _COLUMNAR_ENABLED


@contextmanager
def row_major_mode():
    """Disable the columnar fast paths, restoring the pre-refactor
    row-at-a-time behaviour of storage materialization, the executor
    kernels, and delta building. Results are identical either way; only
    the ablation benchmark should use this."""
    global _COLUMNAR_ENABLED
    saved = _COLUMNAR_ENABLED
    _COLUMNAR_ENABLED = False
    try:
        yield
    finally:
        _COLUMNAR_ENABLED = saved


class Relation:
    """An in-memory bag of rows with parallel row ids, stored column-major.

    ``rows`` and ``columns`` are two views of the same data; at least one
    is always materialized and the other is derived (and cached) on first
    access. Callers must treat both as read-only — mutate only through
    :meth:`append`.
    """

    __slots__ = ("schema", "row_ids", "_rows", "_columns")

    def __init__(self, schema: Schema, rows: Optional[list] = None,
                 row_ids: Optional[list] = None):
        self.schema = schema
        self._rows: Optional[list[tuple]] = rows if rows is not None else []
        self._columns: Optional[list] = None
        if row_ids is None:
            row_ids = []
        if row_ids and len(row_ids) != len(self._rows):
            raise ValueError("row_ids must parallel rows")
        if not row_ids and self._rows:
            # Positional fallback ids; storage always provides real ids.
            row_ids = [f"pos:{index}" for index in range(len(self._rows))]
        self.row_ids: list[str] = row_ids

    @staticmethod
    def from_columns(schema: Schema, columns: Sequence[Sequence],
                     row_ids: Optional[list] = None) -> "Relation":
        """Build a relation directly from parallel column arrays.

        ``columns`` is adopted by reference (no copy); every column must
        have the same length, equal to ``len(row_ids)``.
        """
        relation = Relation.__new__(Relation)
        relation.schema = schema
        relation._rows = None
        relation._columns = list(columns)
        count = len(columns[0]) if columns else 0
        if row_ids is None or not row_ids:
            row_ids = [f"pos:{index}" for index in range(count)]
        elif len(row_ids) != count:
            raise ValueError("row_ids must parallel columns")
        relation.row_ids = row_ids
        return relation

    # -- views ----------------------------------------------------------------

    @property
    def rows(self) -> list[tuple]:
        """Row tuples (compatibility view; materialized lazily)."""
        if self._rows is None:
            columns = self._columns
            if columns:
                self._rows = list(zip(*columns))
            else:
                self._rows = [()] * len(self.row_ids)
        return self._rows

    @property
    def columns(self) -> list:
        """Per-column value arrays, parallel to ``row_ids`` (materialized
        lazily from the row view when needed)."""
        if self._columns is None:
            rows = self._rows
            if rows:
                self._columns = [list(column) for column in zip(*rows)]
            else:
                self._columns = [[] for __ in range(len(self.schema))]
        return self._columns

    @property
    def is_columnar(self) -> bool:
        """Whether the columnar layout is already materialized (hot paths
        use this to pick the vectorized kernel without forcing a layout
        conversion)."""
        return self._columns is not None

    def column(self, index: int) -> Sequence:
        """One column's value array."""
        return self.columns[index]

    def __len__(self) -> int:
        return len(self.row_ids)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def pairs(self) -> Iterator[tuple[str, tuple]]:
        """Iterate ``(row_id, row)`` pairs."""
        return zip(self.row_ids, self.rows)

    # -- mutation -------------------------------------------------------------

    def append(self, row_id: str, row: tuple) -> None:
        """Append one row, keeping every materialized layout in sync."""
        if self._rows is not None:
            self._rows.append(row)
        columns = self._columns
        if columns is not None:
            for index, value in enumerate(row):
                column = columns[index]
                if type(column) is not list:
                    columns[index] = column = list(column)
                column.append(value)
        self.row_ids.append(row_id)

    @staticmethod
    def from_pairs(schema: Schema, pairs: Iterable[tuple[str, tuple]]) -> "Relation":
        relation = Relation(schema)
        for row_id, row in pairs:
            relation.append(row_id, row)
        return relation

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        layout = "columnar" if self._columns is not None else "row-major"
        return f"Relation({len(self)} rows, {layout})"


class SnapshotResolver(Protocol):
    """Resolves table names to relations at one fixed point in time.

    Implementations: a transaction's snapshot view
    (:class:`repro.txn.manager.Transaction`), or a plain dict in tests. The
    executor never touches the catalog directly — this is what lets a
    dynamic-table refresh evaluate its defining query "as of" its data
    timestamp (delayed view semantics).
    """

    def scan(self, table: str) -> Relation:
        """The contents of ``table`` in this snapshot."""
        ...


class DictResolver:
    """A SnapshotResolver over ``{name: Relation}`` (for tests)."""

    def __init__(self, relations: dict[str, Relation]):
        self._relations = relations

    def scan(self, table: str) -> Relation:
        return self._relations[table]
