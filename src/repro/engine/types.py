"""The SQL value model: types, NULL semantics, comparisons, and hashing.

Values are plain Python objects:

========== ==========================================
SQL type    Python representation
========== ==========================================
INT         ``int``
FLOAT       ``float``
TEXT        ``str``
BOOL        ``bool``
TIMESTAMP   ``int`` (nanoseconds since the sim epoch)
VARIANT     ``dict`` / ``list`` / any scalar (JSON-ish)
NULL        ``None``
========== ==========================================

The helpers in this module centralize the subtle parts of SQL semantics so
the executor and the IVM rules never reimplement them:

* three-valued logic (``sql_and``/``sql_or``/``sql_not``),
* NULL-aware comparison (any comparison with NULL is NULL),
* grouping keys where ``NULL == NULL`` (SQL GROUP BY / DISTINCT semantics),
* deterministic hashing of rows for row-id derivation.

Floats are permitted as values but, following section 3.4 of the paper
("we prohibit their use only when the nondeterminism would interfere with
view maintenance, such as joining on a float aggregate key"), the plan
validator in :mod:`repro.plan.properties` rejects float-typed join and
grouping keys for incremental dynamic tables.
"""

from __future__ import annotations

import enum
import hashlib
import json
import math
from typing import Any, Iterable, Sequence

from repro.errors import EvaluationError, TypeError_
from repro.util.timeutil import MINUTE, SECOND, Timestamp

Value = Any  # a SQL value in its Python representation (None for NULL)


class SqlType(enum.Enum):
    """The SQL types supported by the engine."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BOOL = "bool"
    TIMESTAMP = "timestamp"
    VARIANT = "variant"
    #: The type of bare NULL literals; unifies with every other type.
    NULL = "null"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value.upper()


#: Names accepted in DDL / cast syntax -> SqlType.
TYPE_NAMES: dict[str, SqlType] = {
    "int": SqlType.INT,
    "integer": SqlType.INT,
    "bigint": SqlType.INT,
    "smallint": SqlType.INT,
    "number": SqlType.INT,
    "float": SqlType.FLOAT,
    "double": SqlType.FLOAT,
    "real": SqlType.FLOAT,
    "text": SqlType.TEXT,
    "string": SqlType.TEXT,
    "varchar": SqlType.TEXT,
    "char": SqlType.TEXT,
    "bool": SqlType.BOOL,
    "boolean": SqlType.BOOL,
    "timestamp": SqlType.TIMESTAMP,
    "datetime": SqlType.TIMESTAMP,
    "variant": SqlType.VARIANT,
    "object": SqlType.VARIANT,
    "array": SqlType.VARIANT,
}


def type_from_name(name: str) -> SqlType:
    """Resolve a type name as it appears in SQL (case-insensitive)."""
    sql_type = TYPE_NAMES.get(name.lower())
    if sql_type is None:
        raise TypeError_(f"unknown type name: {name!r}")
    return sql_type


def type_of_value(value: Value) -> SqlType:
    """Infer the SqlType of a Python value (used for literals)."""
    if value is None:
        return SqlType.NULL
    if isinstance(value, bool):  # must precede int: bool is a subclass
        return SqlType.BOOL
    if isinstance(value, int):
        return SqlType.INT
    if isinstance(value, float):
        return SqlType.FLOAT
    if isinstance(value, str):
        return SqlType.TEXT
    if isinstance(value, (dict, list)):
        return SqlType.VARIANT
    raise TypeError_(f"unsupported Python value for SQL: {value!r}")


_NUMERIC = {SqlType.INT, SqlType.FLOAT}


def unify_types(left: SqlType, right: SqlType) -> SqlType:
    """The common supertype of two types, as used by CASE/UNION/COALESCE.

    NULL unifies with anything; INT and FLOAT unify to FLOAT; everything
    else must match exactly.
    """
    if left == right:
        return left
    if left == SqlType.NULL:
        return right
    if right == SqlType.NULL:
        return left
    if left in _NUMERIC and right in _NUMERIC:
        return SqlType.FLOAT
    if SqlType.VARIANT in (left, right):
        return SqlType.VARIANT
    raise TypeError_(f"cannot unify types {left} and {right}")


def is_comparable(left: SqlType, right: SqlType) -> bool:
    """Whether ``<`` / ``=`` between the two types is well-typed."""
    if SqlType.NULL in (left, right):
        return True
    if left in _NUMERIC and right in _NUMERIC:
        return True
    return left == right


# ---------------------------------------------------------------------------
# Three-valued logic
# ---------------------------------------------------------------------------

def sql_and(left: Value, right: Value) -> Value:
    """SQL AND with NULL propagation (NULL AND FALSE = FALSE)."""
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def sql_or(left: Value, right: Value) -> Value:
    """SQL OR with NULL propagation (NULL OR TRUE = TRUE)."""
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def sql_not(operand: Value) -> Value:
    """SQL NOT with NULL propagation."""
    if operand is None:
        return None
    return not operand


def is_true(value: Value) -> bool:
    """Whether a predicate result selects the row (NULL counts as false)."""
    return value is True


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------

def compare(left: Value, right: Value) -> int | None:
    """Three-way comparison; returns None when either side is NULL.

    Raises :class:`~repro.errors.EvaluationError` for incomparable values
    (e.g. comparing TEXT with INT), mirroring a runtime type error.
    """
    if left is None or right is None:
        return None
    left_is_num = isinstance(left, (int, float)) and not isinstance(left, bool)
    right_is_num = isinstance(right, (int, float)) and not isinstance(right, bool)
    if left_is_num and right_is_num:
        if left < right:
            return -1
        if left > right:
            return 1
        return 0
    if type(left) is not type(right):
        raise EvaluationError(f"cannot compare {left!r} with {right!r}")
    if left < right:
        return -1
    if left > right:
        return 1
    return 0


def sql_equal(left: Value, right: Value) -> Value:
    """SQL ``=``: NULL if either side is NULL."""
    result = compare(left, right)
    return None if result is None else result == 0


# ---------------------------------------------------------------------------
# Grouping keys (NULL == NULL, used by GROUP BY / DISTINCT / join hashing)
# ---------------------------------------------------------------------------

#: Sentinel object distinguishing SQL NULL inside grouping keys.
_NULL_KEY = ("\x00sql-null\x00",)


def group_key(values: Iterable[Value]) -> tuple:
    """A hashable key under which NULLs compare equal and numbers compare
    across int/float (1 and 1.0 share a group, as in SQL)."""
    key = []
    for value in values:
        if value is None:
            key.append(_NULL_KEY)
        elif isinstance(value, bool):
            key.append(("b", value))
        elif isinstance(value, (int, float)):
            # Normalize numerics so 1 and 1.0 coincide.
            if isinstance(value, float) and (math.isnan(value)):
                key.append(("nan",))
            else:
                key.append(("n", float(value)))
        elif isinstance(value, (dict, list)):
            key.append(("v", canonical_json(value)))
        else:
            key.append(("s", value))
    return tuple(key)


def group_key_columns(columns: Sequence[Sequence], count: int) -> list[tuple]:
    """Columnar analogue of :func:`group_key`: normalize one column array
    at a time, then zip per row. One branchy pass per column instead of
    one per cell-in-row-order, so delta slices and columnar relations can
    compute grouping keys without materializing row tuples."""
    if not columns:
        return [()] * count
    normalized: list[list] = []
    for column in columns:
        normed = []
        append = normed.append
        for value in column:
            if value is None:
                append(_NULL_KEY)
            elif isinstance(value, bool):
                append(("b", value))
            elif isinstance(value, (int, float)):
                if isinstance(value, float) and math.isnan(value):
                    append(("nan",))
                else:
                    append(("n", float(value)))
            elif isinstance(value, (dict, list)):
                append(("v", canonical_json(value)))
            else:
                append(("s", value))
        normalized.append(normed)
    if len(normalized) == 1:
        return [(item,) for item in normalized[0]]
    return list(zip(*normalized))


def canonical_json(value: Value) -> str:
    """A deterministic JSON rendering used for VARIANT hashing/equality."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"), default=str)


def stable_hash(values: Iterable[Value]) -> str:
    """A deterministic short hex digest of a row, independent of the Python
    process hash seed. Used by :mod:`repro.ivm.rowid`."""
    digest = hashlib.sha1()
    for value in values:
        if value is None:
            digest.update(b"\x00N")
        elif isinstance(value, bool):
            digest.update(b"\x00B" + (b"1" if value else b"0"))
        elif isinstance(value, int):
            digest.update(b"\x00I" + str(value).encode())
        elif isinstance(value, float):
            digest.update(b"\x00F" + repr(value).encode())
        elif isinstance(value, str):
            digest.update(b"\x00S" + value.encode())
        else:
            digest.update(b"\x00V" + canonical_json(value).encode())
    return digest.hexdigest()[:16]


# ---------------------------------------------------------------------------
# Casts
# ---------------------------------------------------------------------------

def cast_value(value: Value, target: SqlType) -> Value:
    """Cast a value to ``target``, following Snowflake-ish rules.

    TEXT timestamps accept ``'HH:MM[:SS]'`` and plain integers (treated as
    nanoseconds); this keeps the paper's Listing 1 expressible
    (``e.payload:time::timestamp``) without a calendar library.
    """
    if value is None:
        return None
    try:
        if target == SqlType.INT:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, (int, float)):
                return int(value)
            if isinstance(value, str):
                return int(value.strip())
        elif target == SqlType.FLOAT:
            if isinstance(value, bool):
                return float(value)
            if isinstance(value, (int, float)):
                return float(value)
            if isinstance(value, str):
                return float(value.strip())
        elif target == SqlType.TEXT:
            if isinstance(value, str):
                return value
            if isinstance(value, bool):
                return "true" if value else "false"
            if isinstance(value, (int, float)):
                return str(value)
            return canonical_json(value)
        elif target == SqlType.BOOL:
            if isinstance(value, bool):
                return value
            if isinstance(value, (int, float)):
                return value != 0
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "t", "yes", "1"):
                    return True
                if lowered in ("false", "f", "no", "0"):
                    return False
        elif target == SqlType.TIMESTAMP:
            if isinstance(value, bool):
                raise EvaluationError("cannot cast BOOL to TIMESTAMP")
            if isinstance(value, (int, float)):
                return int(value)
            if isinstance(value, str):
                return parse_timestamp_text(value)
        elif target == SqlType.VARIANT:
            if isinstance(value, str):
                # Parse JSON text into a VARIANT value (Snowflake's
                # TO_VARIANT/PARSE_JSON behaviour); non-JSON text stays text.
                try:
                    return json.loads(value)
                except json.JSONDecodeError:
                    return value
            return value
        elif target == SqlType.NULL:
            return None
    except (ValueError, TypeError) as exc:
        raise EvaluationError(f"cannot cast {value!r} to {target}: {exc}") from exc
    raise EvaluationError(f"cannot cast {value!r} to {target}")


def parse_timestamp_text(text: str) -> Timestamp:
    """Parse ``'HH:MM'``, ``'HH:MM:SS'``, or a bare integer (nanoseconds).

    The simulation has no calendar; clock-of-day strings map onto the first
    simulated day.
    """
    stripped = text.strip()
    if ":" in stripped:
        parts = stripped.split(":")
        if len(parts) not in (2, 3):
            raise EvaluationError(f"invalid timestamp literal: {text!r}")
        hour = int(parts[0])
        minute = int(parts[1])
        second = int(parts[2]) if len(parts) == 3 else 0
        return hour * 60 * MINUTE + minute * MINUTE + second * SECOND
    return int(stripped)
