"""The relational executor.

Evaluates a bound logical plan against a :class:`SnapshotResolver`,
producing a :class:`~repro.engine.relation.Relation` whose row ids follow
the deterministic derivation of :mod:`repro.ivm.rowid`. Because full
evaluation and incremental evaluation derive identical ids, a FULL refresh,
a REINITIALIZE, and a long chain of INCREMENTAL refreshes all converge on
byte-identical table states — the property the paper's randomized
production validation (section 6.1) checks.

The executor is a pull-based engine: each operator materializes its
output. Execution is **vector-at-a-time** on the row-preserving hot path:
storage hands scans over as columnar blocks (parallel per-column arrays),
and filters, projections and limits evaluate whole column arrays through
the vectorized compiler (:func:`compile_expression_columnar`) — one tight
loop per expression node per batch instead of one closure call per row.
Aggregation and window partitioning compute their group keys the same
way. Operators without a columnar kernel (joins, sorts) consume the
relation's row-tuple compatibility view and still use the closure-compiled
row evaluators, so every plan shape works on either layout; the
interpreter (``Expression.eval``) remains the reference semantics for
both.

Filters directly over scans additionally push simple column-vs-literal
bounds into the storage layer when the resolver supports it
(``scan_pruned``), letting zone-mapped micro-partitions be skipped
wholesale. Pruning only ever removes rows the predicate would reject, so
output rows, order, and row ids are unchanged; :func:`scan_pruning_stats`
reports the partitions-scanned/skipped split so EXPLAIN can surface it.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from itertools import compress as _itercompress, repeat as _repeat
from typing import Iterator, Optional, Sequence

from repro.engine import types as t
from repro.engine.expressions import (BoundParameter, ColumnRef, Comparison,
                                      Expression, IsNull, Literal,
                                      DEFAULT_CONTEXT, EvalContext,
                                      compile_expression,
                                      compile_expression_columnar,
                                      compile_group_key,
                                      compile_group_key_columnar,
                                      compile_row, compile_row_columnar,
                                      conjuncts, emits_tristate)
from repro.engine.relation import (Relation, SnapshotResolver,
                                   columnar_enabled)
from repro.engine.window import (compile_window_calls, evaluate_window_calls,
                                 sort_partition, _compare_with_nulls)
from repro.errors import InternalError, ReproError, UserError
from repro.ivm import rowid
from repro.plan import logical as lp
from repro.engine.aggregates import evaluate_aggregate


def evaluate(plan: lp.PlanNode, resolver: SnapshotResolver,
             ctx: EvalContext = DEFAULT_CONTEXT) -> Relation:
    """Evaluate ``plan`` against ``resolver``'s snapshot."""
    return _Executor(resolver, ctx).run(plan)


#: When True, the row-preserving kernels convert row-major inputs to the
#: columnar layout and always take the vectorized path (normally they
#: vectorize only inputs that are already columnar, i.e. storage scans).
_FORCE_COLUMNAR = False


@contextmanager
def force_columnar():
    """Route every row-preserving kernel through the vectorized columnar
    evaluators, converting row-major inputs as needed. Used by the
    three-way equivalence property test to pin the vectorized path against
    the compiled and interpreted row paths."""
    global _FORCE_COLUMNAR
    saved = _FORCE_COLUMNAR
    _FORCE_COLUMNAR = True
    try:
        yield
    finally:
        _FORCE_COLUMNAR = saved


def _vectorize(relation: Relation) -> bool:
    """Whether a kernel should take the vectorized path for this input."""
    return columnar_enabled() and (_FORCE_COLUMNAR or relation.is_columnar)


#: A pushed-down scan bound: either ``("cmp", column_index, op, value)``
#: for ``col <op> literal`` conjuncts (op in ``= != <> < <= > >=``) or
#: ``("null", column_index, negated)`` for ``col IS [NOT] NULL``. Storage
#: may use zone maps to skip partitions where no row can satisfy the
#: conjunction.
ScanBound = tuple

_SAFE_CMP_OPS = {"=", "!=", "<>", "<", "<=", ">", ">="}
_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=",
            "!=": "!=", "<>": "<>"}


def _const_operand(expr: Expression,
                   ctx: Optional[EvalContext]) -> tuple[bool, object]:
    """``(True, value)`` when ``expr`` is a constant at scan time: a
    Literal, or — when the execution context is available — a bind
    parameter whose slot carries a value. Prepared statements thus prune
    exactly like the equivalent literal query."""
    if isinstance(expr, Literal):
        return True, expr.value
    if (ctx is not None and isinstance(expr, BoundParameter)
            and expr.slot < len(ctx.params)):
        return True, ctx.params[expr.slot]
    return False, None


def extract_scan_bounds(predicate: Expression,
                        ctx: Optional[EvalContext] = None) -> list[ScanBound]:
    """Decompose a filter predicate into prunable scan bounds.

    Pruning is only sound when skipping a partition cannot change *any*
    observable behaviour — including runtime errors the predicate would
    raise on the skipped rows (a conjunct like ``1 % b = 0`` raises on
    ``b = 0`` rows even when another conjunct already excludes them). So
    bounds are returned only when **every** top-level conjunct is a
    provably non-raising shape — ``col <op> constant`` (either side; a
    constant is a literal, or a bound parameter value when ``ctx`` is
    supplied), ``col IS [NOT] NULL``, or a bare TRUE literal — and the
    per-partition check (:meth:`Partition.might_match`) additionally
    verifies that each compared column's zone kind matches the constant,
    so ``t.compare`` cannot raise on any row of a skipped partition. Any
    other conjunct disables pruning for the whole predicate (empty
    result).
    """
    bounds: list[ScanBound] = []
    for part in conjuncts(predicate):
        if isinstance(part, Comparison) and part.op in _SAFE_CMP_OPS:
            left, right, op = part.left, part.right, part.op
            if _const_operand(left, ctx)[0] and isinstance(right, ColumnRef):
                left, right, op = right, left, _FLIPPED[op]
            is_const, value = _const_operand(right, ctx)
            if not (isinstance(left, ColumnRef) and is_const):
                return []
            if (isinstance(value, bool)
                    or not isinstance(value, (int, float, str))):
                return []  # bools and non-scalars don't zone-map cleanly
            if isinstance(value, float) and value != value:
                return []  # NaN comparisons keep t.compare's odd semantics
            bounds.append(("cmp", left.index, op, value))
            continue
        if isinstance(part, IsNull) and isinstance(part.operand, ColumnRef):
            bounds.append(("null", part.operand.index, part.negated))
            continue
        if isinstance(part, Literal) and part.value is True:
            continue  # trivial conjunct (e.g. from conjoin of nothing)
        return []  # anything else might raise on skipped rows: no pruning
    return bounds


def scan_pruning_stats(plan: lp.PlanNode, resolver: SnapshotResolver,
                       ctx: Optional[EvalContext] = None,
                       ) -> list[tuple[str, int, int, int]]:
    """Zone-map pruning statistics for every Filter-over-Scan in ``plan``.

    Returns ``(table, total, scanned, skipped)`` tuples — how many of the
    table's micro-partitions the columnar scan reads versus skips under
    the filter's pushed-down bounds — in plan traversal order. Tables
    whose resolver has no partition-granular access, and filters whose
    predicate yields no sound bounds, report zero skipped (every
    partition scanned). This is what ``EXPLAIN`` surfaces so the pruning
    behaviour of the columnar scan path is observable without tracing the
    executor.
    """
    scan_partitions = getattr(resolver, "scan_partitions", None)
    if scan_partitions is None:
        return []
    stats: list[tuple[str, int, int, int]] = []
    for node in plan.walk():
        if not (isinstance(node, lp.Filter) and isinstance(node.child, lp.Scan)):
            continue
        table = node.child.table
        try:
            partitions = list(scan_partitions(table))
        except ReproError:
            # Best-effort reporting: a table that cannot be read right
            # now (e.g. an uninitialized dynamic table) contributes no
            # stats rather than failing the caller (EXPLAIN).
            continue
        total = len(partitions)
        bounds = extract_scan_bounds(node.predicate, ctx)
        if bounds:
            scanned = sum(1 for partition in partitions
                          if partition.might_match(bounds))
        else:
            scanned = total
        stats.append((table, total, scanned, total - scanned))
    return stats


def _compress(block_columns: Sequence[Sequence], row_ids: Sequence[str],
              mask: Sequence, strict: bool = False) -> tuple[list, list]:
    """Select the rows whose mask entry is True (columnar filter kernel).

    SQL selects only rows where the predicate is exactly TRUE — never
    NULL, never a merely truthy value — so unless the predicate provably
    emits three-valued booleans only (``strict``, from
    :func:`emits_tristate`; NULL is falsy to ``itertools.compress``), the
    mask is normalized first. Each column is then gathered with the
    C-level ``itertools.compress``.
    """
    selected = mask if strict else [value is True for value in mask]
    ids = (row_ids if isinstance(row_ids, list) else list(row_ids))
    kept = list(_itercompress(ids, selected))
    if len(kept) == len(ids):
        return list(block_columns), ids
    return ([list(_itercompress(column, selected))
             for column in block_columns], kept)


class _Executor:
    def __init__(self, resolver: SnapshotResolver, ctx: EvalContext):
        self._resolver = resolver
        self._ctx = ctx

    def run(self, plan: lp.PlanNode) -> Relation:
        method = getattr(self, f"_run_{type(plan).__name__.lower()}", None)
        if method is None:
            raise InternalError(f"no executor for {type(plan).__name__}")
        return method(plan)

    # -- leaves --------------------------------------------------------------

    def _run_scan(self, plan: lp.Scan) -> Relation:
        source = self._resolver.scan(plan.table)
        # Requalify under the plan's schema (alias binding); data unchanged
        # and shared by reference — columnar when storage is.
        if source.is_columnar:
            return Relation.from_columns(plan.schema, source.columns,
                                         source.row_ids)
        return Relation(plan.schema, source.rows, source.row_ids)

    def _run_values(self, plan: lp.Values) -> Relation:
        relation = Relation(plan.schema)
        for index, row in enumerate(plan.rows):
            relation.append(f"v:{index}", row)
        return relation

    # -- row-preserving operators ---------------------------------------------

    def _run_project(self, plan: lp.Project) -> Relation:
        child = self.run(plan.child)
        if _vectorize(child):
            columns_fn = compile_row_columnar(plan.exprs, self._ctx)
            return Relation.from_columns(
                plan.schema, columns_fn(child.columns, len(child)),
                child.row_ids)
        row_fn = compile_row(plan.exprs, self._ctx)
        return Relation(plan.schema, [row_fn(row) for row in child.rows],
                        list(child.row_ids))

    def _run_filter(self, plan: lp.Filter) -> Relation:
        child = self._filter_input(plan)
        if _vectorize(child):
            predicate = compile_expression_columnar(plan.predicate, self._ctx)
            mask = predicate(child.columns, len(child))
            columns, ids = _compress(child.columns, child.row_ids, mask,
                                     emits_tristate(plan.predicate))
            return Relation.from_columns(plan.schema, columns, ids)
        predicate = compile_expression(plan.predicate, self._ctx)
        rows: list[tuple] = []
        ids: list[str] = []
        for row_id, row in zip(child.row_ids, child.rows):
            if predicate(row) is True:
                rows.append(row)
                ids.append(row_id)
        return Relation(plan.schema, rows, ids)

    def _filter_input(self, plan: lp.Filter) -> Relation:
        """The filter's input, zone-map pruned when it is a direct scan and
        the resolver supports pruned reads."""
        child = plan.child
        if isinstance(child, lp.Scan):
            scan_pruned = getattr(self._resolver, "scan_pruned", None)
            if scan_pruned is not None:
                bounds = extract_scan_bounds(plan.predicate, self._ctx)
                if bounds:
                    source = scan_pruned(child.table, bounds)
                    if source.is_columnar:
                        return Relation.from_columns(child.schema,
                                                     source.columns,
                                                     source.row_ids)
                    return Relation(child.schema, source.rows, source.row_ids)
        return self.run(child)

    # -- joins ----------------------------------------------------------------

    def _run_join(self, plan: lp.Join) -> Relation:
        left = self.run(plan.left)
        right = self.run(plan.right)
        return join_relations(plan, left, right, self._ctx)

    # -- union ------------------------------------------------------------------

    def _run_unionall(self, plan: lp.UnionAll) -> Relation:
        output = Relation(plan.schema)
        for branch, child in enumerate(plan.inputs):
            relation = self.run(child)
            for row_id, row in relation.pairs():
                output.append(rowid.union_id(branch, row_id), row)
        return output

    # -- aggregation ---------------------------------------------------------

    def _run_aggregate(self, plan: lp.Aggregate) -> Relation:
        child = self.run(plan.child)
        return aggregate_relation(plan, child, self._ctx)

    def _run_distinct(self, plan: lp.Distinct) -> Relation:
        child = self.run(plan.child)
        return distinct_relation(plan.schema, child)

    # -- windows -----------------------------------------------------------------

    def _run_window(self, plan: lp.Window) -> Relation:
        child = self.run(plan.child)
        return window_relation(plan, child, self._ctx)

    # -- flatten ---------------------------------------------------------------

    def _run_flatten(self, plan: lp.Flatten) -> Relation:
        child = self.run(plan.child)
        return flatten_relation(plan, child, self._ctx)

    # -- presentation operators -------------------------------------------------

    def _run_sort(self, plan: lp.Sort) -> Relation:
        child = self.run(plan.child)
        ordered = sort_partition(child.rows, child.row_ids, plan.keys, self._ctx)
        output = Relation(plan.schema)
        for index in ordered:
            output.append(child.row_ids[index], child.rows[index])
        return output

    def _run_limit(self, plan: lp.Limit) -> Relation:
        if plan.count < 0:
            raise UserError(f"LIMIT count must be non-negative, got {plan.count}")
        # The executor materializes each child, so LIMIT cannot stream the
        # subtree; it slices the child's backing arrays directly (columnar
        # when the child is).
        child = self.run(plan.child)
        count = plan.count
        if _vectorize(child):
            return Relation.from_columns(
                plan.schema, [column[:count] for column in child.columns],
                child.row_ids[:count])
        return Relation(plan.schema, child.rows[:count],
                        child.row_ids[:count])


# ---------------------------------------------------------------------------
# Streaming evaluation (per-micro-partition, for the cursor API)
# ---------------------------------------------------------------------------

class Block:
    """One streamed batch: the rows of a single micro-partition, columnar.

    ``columns[i][j]`` is column ``i`` of row ``j``; ``row_ids[j]`` is row
    ``j``'s id. The block iterates as ``(row_id, row)`` pairs and supports
    ``len`` and slicing, so pre-columnar batch consumers keep working; the
    cursor's fill loop uses :meth:`row_tuples` to materialize each page's
    tuples in one transpose.
    """

    __slots__ = ("row_ids", "columns")

    def __init__(self, row_ids: Sequence[str],
                 columns: Sequence[Sequence]):
        self.row_ids = row_ids
        self.columns = columns

    def __len__(self) -> int:
        return len(self.row_ids)

    def row_tuples(self) -> list[tuple]:
        """The block's rows as tuples (one transpose of the columns)."""
        if not self.columns:
            return [()] * len(self.row_ids)
        return list(zip(*self.columns))

    def pairs(self) -> list[tuple[str, tuple]]:
        return list(zip(self.row_ids, self.row_tuples()))

    def __iter__(self):
        return iter(zip(self.row_ids, self.row_tuples()))

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Block(self.row_ids[index],
                         [column[index] for column in self.columns])
        return (self.row_ids[index],
                tuple(column[index] for column in self.columns))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Block({len(self)} rows x {len(self.columns)} columns)"


#: One streamed batch: a columnar :class:`Block` (iterates as
#: ``(row_id, row)`` pairs) produced from a single micro-partition of the
#: scanned table.
RowBatch = Block


def _block_of(partition) -> Block:
    """A partition's rows as a columnar block. Real micro-partitions hand
    over their column arrays by reference; transaction-overlay partitions
    (which only carry ``(row_id, row)`` pairs) are transposed."""
    columns = getattr(partition, "columns", None)
    if columns is not None:
        return Block(partition.row_ids, columns)
    rows = partition.rows
    if not rows:
        return Block([], [])
    return Block([row_id for row_id, __ in rows],
                 list(zip(*(row for __, row in rows))))


def stream_evaluate(plan: lp.PlanNode, resolver: SnapshotResolver,
                    ctx: EvalContext = DEFAULT_CONTEXT,
                    ) -> Optional[Iterator[RowBatch]]:
    """Evaluate ``plan`` lazily, one micro-partition at a time.

    Supports the row-preserving pipeline shapes — a chain of Project /
    Filter / Limit over a single Scan, UNION ALL over such chains (branch
    streams are concatenated), and ``ORDER BY ... LIMIT k`` (a bounded
    top-k heap over the child stream) — when the resolver exposes
    partition-granular reads (``scan_partitions``). Returns an iterator of
    columnar :class:`Block` batches, one per surviving partition, or None
    when the plan (a join, aggregate, unbounded sort, ...) or the resolver
    cannot stream; callers then fall back to :func:`evaluate`.

    The stream produces exactly the rows, ids, and order of the
    materialized path: filters apply the same vectorized predicates (plus
    zone-map partition pruning, which only ever skips rows the predicate
    rejects), projections the same vectorized expressions, and the top-k
    heap the same total sort order (ORDER BY keys, then the stable
    tie-break digest). No list of more than one partition's rows is ever
    built — a sorted-limit cursor holds at most ``k`` rows beyond the
    current partition — which is what lets a cursor serve pages of a large
    scan in O(partition) memory.
    """
    if isinstance(plan, lp.Scan):
        partitions = _scan_partitions(resolver, plan.table, ())
        if partitions is None:
            return None
        return (_block_of(partition) for partition in partitions)

    if isinstance(plan, lp.Filter):
        predicate = compile_expression_columnar(plan.predicate, ctx)
        strict = emits_tristate(plan.predicate)

        def filter_block(block: Block) -> Block:
            mask = predicate(block.columns, len(block))
            columns, ids = _compress(block.columns, block.row_ids, mask,
                                     strict)
            return Block(ids, columns)

        child = plan.child
        if isinstance(child, lp.Scan):
            bounds = extract_scan_bounds(plan.predicate, ctx)
            partitions = _scan_partitions(resolver, child.table, bounds)
            if partitions is None:
                return None
            return (filter_block(_block_of(partition))
                    for partition in partitions)
        batches = stream_evaluate(child, resolver, ctx)
        if batches is None:
            return None
        return (filter_block(batch) for batch in batches)

    if isinstance(plan, lp.Project):
        batches = stream_evaluate(plan.child, resolver, ctx)
        if batches is None:
            return None
        columns_fn = compile_row_columnar(plan.exprs, ctx)
        return (Block(batch.row_ids, columns_fn(batch.columns, len(batch)))
                for batch in batches)

    if isinstance(plan, lp.Limit):
        if plan.count < 0:
            raise UserError(
                f"LIMIT count must be non-negative, got {plan.count}")
        child = plan.child
        # ORDER BY ... LIMIT k: a bounded top-k heap over the child
        # stream — the sorted-limit cursor never materializes the full
        # result. The Sort may sit directly below, or below the final
        # Project (how the builder binds ORDER BY over unprojected
        # columns).
        if isinstance(child, lp.Sort):
            batches = stream_evaluate(child.child, resolver, ctx)
            if batches is None:
                return None
            return _topk_batches(batches, child.keys, plan.count, ctx, None)
        if (isinstance(child, lp.Project)
                and isinstance(child.child, lp.Sort)):
            sort = child.child
            batches = stream_evaluate(sort.child, resolver, ctx)
            if batches is None:
                return None
            columns_fn = compile_row_columnar(child.exprs, ctx)
            return _topk_batches(batches, sort.keys, plan.count, ctx,
                                 columns_fn)
        batches = stream_evaluate(child, resolver, ctx)
        if batches is None:
            return None
        return _limit_batches(batches, plan.count)

    if isinstance(plan, lp.UnionAll):
        # Branch streams are *created* eagerly — pinning every branch's
        # snapshot at execute time, exactly like the materialized path —
        # then drained one after the other, so a unioned SELECT still
        # holds at most one partition's rows. Row ids match
        # ``_run_unionall`` (union_id over the branch ordinal).
        streams = []
        for child in plan.inputs:
            batches = stream_evaluate(child, resolver, ctx)
            if batches is None:
                return None  # one branch can't stream -> materialize all
            streams.append(batches)
        return _union_batches(streams)

    return None  # joins/aggregates/unbounded sorts/etc. must materialize


def _scan_partitions(resolver: SnapshotResolver, table: str,
                     bounds: Sequence[ScanBound]):
    """Partition iterator for ``table``, zone-map pruned under ``bounds``;
    None when the resolver has no partition-granular access."""
    scan_partitions = getattr(resolver, "scan_partitions", None)
    if scan_partitions is None:
        return None
    partitions = scan_partitions(table)
    if not bounds:
        return partitions
    return (partition for partition in partitions
            if partition.might_match(bounds))


def _union_batches(streams: list) -> Iterator[RowBatch]:
    """Concatenate branch streams, rewriting row ids under the branch's
    union ordinal (identical to the materialized UNION ALL)."""
    union_id = rowid.union_id
    for branch, batches in enumerate(streams):
        for batch in batches:
            yield Block([union_id(branch, row_id)
                         for row_id in batch.row_ids], batch.columns)


def _limit_batches(batches: Iterator[RowBatch],
                   count: int) -> Iterator[RowBatch]:
    remaining = count
    for batch in batches:
        if remaining <= 0:
            return
        if len(batch) >= remaining:
            yield batch[:remaining]
            return
        remaining -= len(batch)
        yield batch


class _TopKEntry:
    """One candidate row in the top-k heap: ordered by the ORDER BY keys
    (NULLS LAST ascending / NULLS FIRST descending), then by the same
    stable tie-break as :func:`repro.engine.window.sort_partition` — the
    row's digest plus its row id, computed lazily (ties only)."""

    __slots__ = ("keys", "descending", "row_id", "row", "_tie")

    def __init__(self, keys: tuple, descending: tuple, row_id: str,
                 row: tuple):
        self.keys = keys
        self.descending = descending
        self.row_id = row_id
        self.row = row
        self._tie = None

    def _tie_key(self) -> tuple:
        tie = self._tie
        if tie is None:
            tie = self._tie = (t.stable_hash(self.row), self.row_id)
        return tie

    def __lt__(self, other: "_TopKEntry") -> bool:
        for position, descending in enumerate(self.descending):
            result = _compare_with_nulls(self.keys[position],
                                         other.keys[position], descending)
            if result != 0:
                return result < 0
        return self._tie_key() < other._tie_key()


def _topk_batches(batches: Iterator[RowBatch], order_by, count: int,
                  ctx: EvalContext, columns_fn) -> Iterator[RowBatch]:
    """Stream implementation of ``ORDER BY ... LIMIT count``: drain the
    child stream through a bounded heap holding at most ``count``
    candidates, then emit one block in exactly the materialized
    sort-then-limit order. ``columns_fn`` optionally applies a final
    projection (vectorized) to the ``count`` surviving rows — evaluated in
    output order, matching the materialized Project-over-Sort."""
    key_fns = [(compile_expression(expr, ctx), descending)
               for expr, descending in order_by]
    descending = tuple(flag for __, flag in key_fns)

    def entries() -> Iterator[_TopKEntry]:
        for batch in batches:
            for row_id, row in zip(batch.row_ids, batch.row_tuples()):
                keys = tuple(fn(row) for fn, __ in key_fns)
                yield _TopKEntry(keys, descending, row_id, row)

    top = heapq.nsmallest(count, entries()) if count else []
    if not top:
        return
    row_ids = [entry.row_id for entry in top]
    columns = list(zip(*(entry.row for entry in top)))
    if columns_fn is not None:
        columns = columns_fn(columns, len(row_ids))
    yield Block(row_ids, columns)


# ---------------------------------------------------------------------------
# Shared operator kernels (the IVM rules reuse these on delta inputs)
# ---------------------------------------------------------------------------

def join_relations(plan: lp.Join, left: Relation, right: Relation,
                   ctx: EvalContext) -> Relation:
    """Evaluate any join kind over two materialized inputs."""
    output = Relation(plan.schema)
    left_width = len(plan.left.schema)
    right_width = len(plan.right.schema)

    if plan.kind == "cross":
        for left_id, left_row in left.pairs():
            for right_id, right_row in right.pairs():
                output.append(rowid.join_id(left_id, right_id),
                              left_row + right_row)
        return output

    keys = lp.extract_equi_keys(plan)
    matched_right: set[int] = set()
    group_key = t.group_key

    if keys.left_keys:
        # Hash join on the equi-keys.
        left_key_fn = compile_row(keys.left_keys, ctx)
        right_key_fn = compile_row(keys.right_keys, ctx)
        residual = (compile_expression(keys.residual, ctx)
                    if keys.residual is not None else None)
        buckets: dict[tuple, list[int]] = {}
        for index, row in enumerate(right.rows):
            values = right_key_fn(row)
            if any(value is None for value in values):
                continue  # NULL keys never match
            buckets.setdefault(group_key(values), []).append(index)

        right_rows = right.rows
        right_ids = right.row_ids
        for left_index, left_row in enumerate(left.rows):
            values = left_key_fn(left_row)
            candidates: Sequence[int]
            if any(value is None for value in values):
                candidates = ()
            else:
                candidates = buckets.get(group_key(values), ())
            found = False
            for right_index in candidates:
                combined = left_row + right_rows[right_index]
                if residual is not None and residual(combined) is not True:
                    continue
                found = True
                matched_right.add(right_index)
                output.append(
                    rowid.join_id(left.row_ids[left_index],
                                  right_ids[right_index]), combined)
            if not found and plan.kind in ("left", "full"):
                output.append(rowid.outer_left_id(left.row_ids[left_index]),
                              left_row + (None,) * right_width)
    else:
        # No equi-keys: nested loops on the full condition.
        condition = (compile_expression(plan.condition, ctx)
                     if plan.condition is not None else None)
        for left_index, left_row in enumerate(left.rows):
            found = False
            for right_index, right_row in enumerate(right.rows):
                combined = left_row + right_row
                if condition is not None and condition(combined) is not True:
                    continue
                found = True
                matched_right.add(right_index)
                output.append(
                    rowid.join_id(left.row_ids[left_index],
                                  right.row_ids[right_index]), combined)
            if not found and plan.kind in ("left", "full"):
                output.append(rowid.outer_left_id(left.row_ids[left_index]),
                              left_row + (None,) * right_width)

    if plan.kind in ("right", "full"):
        for right_index, right_row in enumerate(right.rows):
            if right_index not in matched_right:
                output.append(rowid.outer_right_id(right.row_ids[right_index]),
                              (None,) * left_width + right_row)
    return output


def aggregate_relation(plan: lp.Aggregate, child: Relation,
                       ctx: EvalContext) -> Relation:
    """Evaluate grouped (or scalar) aggregation over a materialized input.

    Grouping keys are computed vectorized (one pass per group expression
    over the child's column arrays) when the input is columnar; the
    per-group aggregate evaluation consumes row tuples either way.
    """
    groups: dict[tuple, tuple[tuple, list[tuple]]] = {}
    group_key = t.group_key
    child_rows = child.rows
    if not plan.group_exprs:
        key_values_per_row = _repeat(())  # scalar aggregate: one group
    elif _vectorize(child):
        arrays = compile_row_columnar(plan.group_exprs, ctx)(
            child.columns, len(child))
        key_values_per_row = zip(*arrays)
    else:
        values_fn = compile_row(plan.group_exprs, ctx)
        key_values_per_row = map(values_fn, child_rows)
    for row, key_values in zip(child_rows, key_values_per_row):
        key = group_key(key_values)
        entry = groups.get(key)
        if entry is None:
            groups[key] = entry = (key_values, [])
        entry[1].append(row)

    output = Relation(plan.schema)
    if plan.is_scalar and not groups:
        # Scalar aggregate over empty input still yields one row.
        groups[group_key(())] = ((), [])
    arg_fns = [(None if call.arg is None
                else compile_expression(call.arg, ctx))
               for call in plan.aggregates]
    for key_values, rows in groups.values():
        aggregates = tuple(
            evaluate_aggregate(call.function, call.arg, call.distinct, rows,
                               ctx, arg_fn=arg_fn)
            for call, arg_fn in zip(plan.aggregates, arg_fns))
        output.append(rowid.group_id(key_values), key_values + aggregates)
    return output


def distinct_relation(schema, child: Relation) -> Relation:
    output = Relation(schema)
    seen: set[tuple] = set()
    group_key = t.group_key
    for row in child.rows:
        key = group_key(row)
        if key in seen:
            continue
        seen.add(key)
        output.append(rowid.distinct_id(row), row)
    return output


def window_relation(plan: lp.Window, child: Relation,
                    ctx: EvalContext) -> Relation:
    """Evaluate partitioned window calls, appending one column per call.
    Partition keys are computed vectorized over columnar inputs."""
    partitions: dict[tuple, list[int]] = {}
    child_rows = child.rows
    if _vectorize(child):
        keys = compile_group_key_columnar(plan.partition_exprs, ctx)(
            child.columns, len(child))
        for index, key in enumerate(keys):
            partitions.setdefault(key, []).append(index)
    else:
        key_fn = compile_group_key(plan.partition_exprs, ctx)
        for index, row in enumerate(child_rows):
            partitions.setdefault(key_fn(row), []).append(index)

    extra: list[list] = [[] for __ in child_rows]
    compiled = compile_window_calls(plan.calls, ctx)
    for indices in partitions.values():
        rows = [child_rows[index] for index in indices]
        ids = [child.row_ids[index] for index in indices]
        outputs = evaluate_window_calls(plan.calls, rows, ids, ctx,
                                        compiled=compiled)
        for local, index in enumerate(indices):
            extra[index] = outputs[local]

    output = Relation(plan.schema)
    for index, (row_id, row) in enumerate(child.pairs()):
        output.append(row_id, row + tuple(extra[index]))
    return output


def flatten_relation(plan: lp.Flatten, child: Relation,
                     ctx: EvalContext) -> Relation:
    """LATERAL FLATTEN: one output row per array element; non-array or NULL
    inputs contribute no rows (Snowflake's default OUTER => FALSE)."""
    output = Relation(plan.schema)
    input_fn = compile_expression(plan.input_expr, ctx)
    for row_id, row in zip(child.row_ids, child.rows):
        value = input_fn(row)
        if not isinstance(value, list):
            continue
        for index, element in enumerate(value):
            output.append(rowid.flatten_id(row_id, index),
                          row + (element, index))
    return output
