"""The relational executor.

Evaluates a bound logical plan against a :class:`SnapshotResolver`,
producing a :class:`~repro.engine.relation.Relation` whose row ids follow
the deterministic derivation of :mod:`repro.ivm.rowid`. Because full
evaluation and incremental evaluation derive identical ids, a FULL refresh,
a REINITIALIZE, and a long chain of INCREMENTAL refreshes all converge on
byte-identical table states — the property the paper's randomized
production validation (section 6.1) checks.

The executor is a pull-based engine: each operator materializes its
output. Expressions are *compiled* to closures once per operator
(:mod:`repro.engine.expressions`' closure compiler) and applied over row
batches, rather than interpreted per row per node. Joins hash on
equi-keys when the condition allows (falling back to nested loops),
aggregation and DISTINCT hash on SQL group keys (NULLs equal), and window
functions evaluate per partition via :mod:`repro.engine.window`.

Filters directly over scans additionally push simple column-vs-literal
bounds into the storage layer when the resolver supports it
(``scan_pruned``), letting zone-mapped micro-partitions be skipped
wholesale. Pruning only ever removes rows the predicate would reject, so
output rows, order, and row ids are unchanged.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.engine import types as t
from repro.engine.expressions import (BoundParameter, ColumnRef, Comparison,
                                      Expression, IsNull, Literal,
                                      DEFAULT_CONTEXT, EvalContext,
                                      compile_expression, compile_group_key,
                                      compile_row, conjuncts)
from repro.engine.relation import Relation, SnapshotResolver
from repro.engine.window import (compile_window_calls, evaluate_window_calls,
                                 sort_partition)
from repro.errors import InternalError, UserError
from repro.ivm import rowid
from repro.plan import logical as lp
from repro.engine.aggregates import evaluate_aggregate


def evaluate(plan: lp.PlanNode, resolver: SnapshotResolver,
             ctx: EvalContext = DEFAULT_CONTEXT) -> Relation:
    """Evaluate ``plan`` against ``resolver``'s snapshot."""
    return _Executor(resolver, ctx).run(plan)


#: A pushed-down scan bound: either ``("cmp", column_index, op, value)``
#: for ``col <op> literal`` conjuncts (op in ``= != <> < <= > >=``) or
#: ``("null", column_index, negated)`` for ``col IS [NOT] NULL``. Storage
#: may use zone maps to skip partitions where no row can satisfy the
#: conjunction.
ScanBound = tuple

_SAFE_CMP_OPS = {"=", "!=", "<>", "<", "<=", ">", ">="}
_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=",
            "!=": "!=", "<>": "<>"}


def _const_operand(expr: Expression,
                   ctx: Optional[EvalContext]) -> tuple[bool, object]:
    """``(True, value)`` when ``expr`` is a constant at scan time: a
    Literal, or — when the execution context is available — a bind
    parameter whose slot carries a value. Prepared statements thus prune
    exactly like the equivalent literal query."""
    if isinstance(expr, Literal):
        return True, expr.value
    if (ctx is not None and isinstance(expr, BoundParameter)
            and expr.slot < len(ctx.params)):
        return True, ctx.params[expr.slot]
    return False, None


def extract_scan_bounds(predicate: Expression,
                        ctx: Optional[EvalContext] = None) -> list[ScanBound]:
    """Decompose a filter predicate into prunable scan bounds.

    Pruning is only sound when skipping a partition cannot change *any*
    observable behaviour — including runtime errors the predicate would
    raise on the skipped rows (a conjunct like ``1 % b = 0`` raises on
    ``b = 0`` rows even when another conjunct already excludes them). So
    bounds are returned only when **every** top-level conjunct is a
    provably non-raising shape — ``col <op> constant`` (either side; a
    constant is a literal, or a bound parameter value when ``ctx`` is
    supplied), ``col IS [NOT] NULL``, or a bare TRUE literal — and the
    per-partition check (:meth:`Partition.might_match`) additionally
    verifies that each compared column's zone kind matches the constant,
    so ``t.compare`` cannot raise on any row of a skipped partition. Any
    other conjunct disables pruning for the whole predicate (empty
    result).
    """
    bounds: list[ScanBound] = []
    for part in conjuncts(predicate):
        if isinstance(part, Comparison) and part.op in _SAFE_CMP_OPS:
            left, right, op = part.left, part.right, part.op
            if _const_operand(left, ctx)[0] and isinstance(right, ColumnRef):
                left, right, op = right, left, _FLIPPED[op]
            is_const, value = _const_operand(right, ctx)
            if not (isinstance(left, ColumnRef) and is_const):
                return []
            if (isinstance(value, bool)
                    or not isinstance(value, (int, float, str))):
                return []  # bools and non-scalars don't zone-map cleanly
            if isinstance(value, float) and value != value:
                return []  # NaN comparisons keep t.compare's odd semantics
            bounds.append(("cmp", left.index, op, value))
            continue
        if isinstance(part, IsNull) and isinstance(part.operand, ColumnRef):
            bounds.append(("null", part.operand.index, part.negated))
            continue
        if isinstance(part, Literal) and part.value is True:
            continue  # trivial conjunct (e.g. from conjoin of nothing)
        return []  # anything else might raise on skipped rows: no pruning
    return bounds


class _Executor:
    def __init__(self, resolver: SnapshotResolver, ctx: EvalContext):
        self._resolver = resolver
        self._ctx = ctx

    def run(self, plan: lp.PlanNode) -> Relation:
        method = getattr(self, f"_run_{type(plan).__name__.lower()}", None)
        if method is None:
            raise InternalError(f"no executor for {type(plan).__name__}")
        return method(plan)

    # -- leaves --------------------------------------------------------------

    def _run_scan(self, plan: lp.Scan) -> Relation:
        source = self._resolver.scan(plan.table)
        # Requalify under the plan's schema (alias binding); data unchanged.
        return Relation(plan.schema, source.rows, source.row_ids)

    def _run_values(self, plan: lp.Values) -> Relation:
        relation = Relation(plan.schema)
        for index, row in enumerate(plan.rows):
            relation.append(f"v:{index}", row)
        return relation

    # -- row-preserving operators ---------------------------------------------

    def _run_project(self, plan: lp.Project) -> Relation:
        child = self.run(plan.child)
        row_fn = compile_row(plan.exprs, self._ctx)
        return Relation(plan.schema, [row_fn(row) for row in child.rows],
                        list(child.row_ids))

    def _run_filter(self, plan: lp.Filter) -> Relation:
        child = self._filter_input(plan)
        predicate = compile_expression(plan.predicate, self._ctx)
        rows: list[tuple] = []
        ids: list[str] = []
        for row_id, row in zip(child.row_ids, child.rows):
            if predicate(row) is True:
                rows.append(row)
                ids.append(row_id)
        return Relation(plan.schema, rows, ids)

    def _filter_input(self, plan: lp.Filter) -> Relation:
        """The filter's input, zone-map pruned when it is a direct scan and
        the resolver supports pruned reads."""
        child = plan.child
        if isinstance(child, lp.Scan):
            scan_pruned = getattr(self._resolver, "scan_pruned", None)
            if scan_pruned is not None:
                bounds = extract_scan_bounds(plan.predicate, self._ctx)
                if bounds:
                    source = scan_pruned(child.table, bounds)
                    return Relation(child.schema, source.rows, source.row_ids)
        return self.run(child)

    # -- joins ----------------------------------------------------------------

    def _run_join(self, plan: lp.Join) -> Relation:
        left = self.run(plan.left)
        right = self.run(plan.right)
        return join_relations(plan, left, right, self._ctx)

    # -- union ------------------------------------------------------------------

    def _run_unionall(self, plan: lp.UnionAll) -> Relation:
        output = Relation(plan.schema)
        for branch, child in enumerate(plan.inputs):
            relation = self.run(child)
            for row_id, row in relation.pairs():
                output.append(rowid.union_id(branch, row_id), row)
        return output

    # -- aggregation ---------------------------------------------------------

    def _run_aggregate(self, plan: lp.Aggregate) -> Relation:
        child = self.run(plan.child)
        return aggregate_relation(plan, child, self._ctx)

    def _run_distinct(self, plan: lp.Distinct) -> Relation:
        child = self.run(plan.child)
        return distinct_relation(plan.schema, child)

    # -- windows -----------------------------------------------------------------

    def _run_window(self, plan: lp.Window) -> Relation:
        child = self.run(plan.child)
        return window_relation(plan, child, self._ctx)

    # -- flatten ---------------------------------------------------------------

    def _run_flatten(self, plan: lp.Flatten) -> Relation:
        child = self.run(plan.child)
        return flatten_relation(plan, child, self._ctx)

    # -- presentation operators -------------------------------------------------

    def _run_sort(self, plan: lp.Sort) -> Relation:
        child = self.run(plan.child)
        ordered = sort_partition(child.rows, child.row_ids, plan.keys, self._ctx)
        output = Relation(plan.schema)
        for index in ordered:
            output.append(child.row_ids[index], child.rows[index])
        return output

    def _run_limit(self, plan: lp.Limit) -> Relation:
        if plan.count < 0:
            raise UserError(f"LIMIT count must be non-negative, got {plan.count}")
        # The executor materializes each child, so LIMIT cannot stream the
        # subtree; it does avoid the former full ``list(pairs())`` copy by
        # slicing the child's backing lists directly.
        child = self.run(plan.child)
        return Relation(plan.schema, child.rows[:plan.count],
                        child.row_ids[:plan.count])


# ---------------------------------------------------------------------------
# Streaming evaluation (per-micro-partition, for the cursor API)
# ---------------------------------------------------------------------------

#: One streamed batch: the ``(row_id, row)`` pairs produced from a single
#: micro-partition of the scanned table.
RowBatch = list  # list[tuple[str, tuple]]


def stream_evaluate(plan: lp.PlanNode, resolver: SnapshotResolver,
                    ctx: EvalContext = DEFAULT_CONTEXT,
                    ) -> Optional[Iterator[RowBatch]]:
    """Evaluate ``plan`` lazily, one micro-partition at a time.

    Supports the row-preserving pipeline shapes — a chain of Project /
    Filter / Limit over a single Scan, and UNION ALL over such chains
    (branch streams are concatenated) — when the resolver exposes
    partition-granular reads (``scan_partitions``). Returns an iterator of
    ``(row_id, row)`` batches, one per surviving partition, or None when
    the plan (a join, aggregate, sort, ...) or the resolver cannot stream;
    callers then fall back to :func:`evaluate`.

    The stream produces exactly the rows, ids, and order of the
    materialized path: filters reuse the same compiled predicates (plus
    zone-map partition pruning, which only ever skips rows the predicate
    rejects), and projections the same compiled row closures. No list of
    more than one partition's rows is ever built, which is what lets a
    cursor serve pages of a large scan in O(partition) memory.
    """
    if isinstance(plan, lp.Scan):
        partitions = _scan_partitions(resolver, plan.table, ())
        if partitions is None:
            return None
        return (list(partition.rows) for partition in partitions)

    if isinstance(plan, lp.Filter):
        predicate = compile_expression(plan.predicate, ctx)
        child = plan.child
        if isinstance(child, lp.Scan):
            bounds = extract_scan_bounds(plan.predicate, ctx)
            partitions = _scan_partitions(resolver, child.table, bounds)
            if partitions is None:
                return None
            return ([(row_id, row) for row_id, row in partition.rows
                     if predicate(row) is True]
                    for partition in partitions)
        batches = stream_evaluate(child, resolver, ctx)
        if batches is None:
            return None
        return ([(row_id, row) for row_id, row in batch
                 if predicate(row) is True]
                for batch in batches)

    if isinstance(plan, lp.Project):
        batches = stream_evaluate(plan.child, resolver, ctx)
        if batches is None:
            return None
        row_fn = compile_row(plan.exprs, ctx)
        return ([(row_id, row_fn(row)) for row_id, row in batch]
                for batch in batches)

    if isinstance(plan, lp.Limit):
        if plan.count < 0:
            raise UserError(
                f"LIMIT count must be non-negative, got {plan.count}")
        batches = stream_evaluate(plan.child, resolver, ctx)
        if batches is None:
            return None
        return _limit_batches(batches, plan.count)

    if isinstance(plan, lp.UnionAll):
        # Branch streams are *created* eagerly — pinning every branch's
        # snapshot at execute time, exactly like the materialized path —
        # then drained one after the other, so a unioned SELECT still
        # holds at most one partition's rows. Row ids match
        # ``_run_unionall`` (union_id over the branch ordinal).
        streams = []
        for child in plan.inputs:
            batches = stream_evaluate(child, resolver, ctx)
            if batches is None:
                return None  # one branch can't stream -> materialize all
            streams.append(batches)
        return _union_batches(streams)

    return None  # joins/aggregates/sorts/etc. require materialization


def _scan_partitions(resolver: SnapshotResolver, table: str,
                     bounds: Sequence[ScanBound]):
    """Partition iterator for ``table``, zone-map pruned under ``bounds``;
    None when the resolver has no partition-granular access."""
    scan_partitions = getattr(resolver, "scan_partitions", None)
    if scan_partitions is None:
        return None
    partitions = scan_partitions(table)
    if not bounds:
        return partitions
    return (partition for partition in partitions
            if partition.might_match(bounds))


def _union_batches(streams: list) -> Iterator[RowBatch]:
    """Concatenate branch streams, rewriting row ids under the branch's
    union ordinal (identical to the materialized UNION ALL)."""
    for branch, batches in enumerate(streams):
        for batch in batches:
            yield [(rowid.union_id(branch, row_id), row)
                   for row_id, row in batch]


def _limit_batches(batches: Iterator[RowBatch],
                   count: int) -> Iterator[RowBatch]:
    remaining = count
    for batch in batches:
        if remaining <= 0:
            return
        if len(batch) >= remaining:
            yield batch[:remaining]
            return
        remaining -= len(batch)
        yield batch


# ---------------------------------------------------------------------------
# Shared operator kernels (the IVM rules reuse these on delta inputs)
# ---------------------------------------------------------------------------

def join_relations(plan: lp.Join, left: Relation, right: Relation,
                   ctx: EvalContext) -> Relation:
    """Evaluate any join kind over two materialized inputs."""
    output = Relation(plan.schema)
    left_width = len(plan.left.schema)
    right_width = len(plan.right.schema)

    if plan.kind == "cross":
        for left_id, left_row in left.pairs():
            for right_id, right_row in right.pairs():
                output.append(rowid.join_id(left_id, right_id),
                              left_row + right_row)
        return output

    keys = lp.extract_equi_keys(plan)
    matched_right: set[int] = set()
    group_key = t.group_key

    if keys.left_keys:
        # Hash join on the equi-keys.
        left_key_fn = compile_row(keys.left_keys, ctx)
        right_key_fn = compile_row(keys.right_keys, ctx)
        residual = (compile_expression(keys.residual, ctx)
                    if keys.residual is not None else None)
        buckets: dict[tuple, list[int]] = {}
        for index, row in enumerate(right.rows):
            values = right_key_fn(row)
            if any(value is None for value in values):
                continue  # NULL keys never match
            buckets.setdefault(group_key(values), []).append(index)

        right_rows = right.rows
        right_ids = right.row_ids
        for left_index, left_row in enumerate(left.rows):
            values = left_key_fn(left_row)
            candidates: Sequence[int]
            if any(value is None for value in values):
                candidates = ()
            else:
                candidates = buckets.get(group_key(values), ())
            found = False
            for right_index in candidates:
                combined = left_row + right_rows[right_index]
                if residual is not None and residual(combined) is not True:
                    continue
                found = True
                matched_right.add(right_index)
                output.append(
                    rowid.join_id(left.row_ids[left_index],
                                  right_ids[right_index]), combined)
            if not found and plan.kind in ("left", "full"):
                output.append(rowid.outer_left_id(left.row_ids[left_index]),
                              left_row + (None,) * right_width)
    else:
        # No equi-keys: nested loops on the full condition.
        condition = (compile_expression(plan.condition, ctx)
                     if plan.condition is not None else None)
        for left_index, left_row in enumerate(left.rows):
            found = False
            for right_index, right_row in enumerate(right.rows):
                combined = left_row + right_row
                if condition is not None and condition(combined) is not True:
                    continue
                found = True
                matched_right.add(right_index)
                output.append(
                    rowid.join_id(left.row_ids[left_index],
                                  right.row_ids[right_index]), combined)
            if not found and plan.kind in ("left", "full"):
                output.append(rowid.outer_left_id(left.row_ids[left_index]),
                              left_row + (None,) * right_width)

    if plan.kind in ("right", "full"):
        for right_index, right_row in enumerate(right.rows):
            if right_index not in matched_right:
                output.append(rowid.outer_right_id(right.row_ids[right_index]),
                              (None,) * left_width + right_row)
    return output


def aggregate_relation(plan: lp.Aggregate, child: Relation,
                       ctx: EvalContext) -> Relation:
    """Evaluate grouped (or scalar) aggregation over a materialized input."""
    groups: dict[tuple, tuple[tuple, list[tuple]]] = {}
    values_fn = compile_row(plan.group_exprs, ctx) if plan.group_exprs else None
    group_key = t.group_key
    for row in child.rows:
        key_values = values_fn(row) if values_fn is not None else ()
        key = group_key(key_values)
        entry = groups.get(key)
        if entry is None:
            groups[key] = entry = (key_values, [])
        entry[1].append(row)

    output = Relation(plan.schema)
    if plan.is_scalar and not groups:
        # Scalar aggregate over empty input still yields one row.
        groups[group_key(())] = ((), [])
    arg_fns = [(None if call.arg is None
                else compile_expression(call.arg, ctx))
               for call in plan.aggregates]
    for key_values, rows in groups.values():
        aggregates = tuple(
            evaluate_aggregate(call.function, call.arg, call.distinct, rows,
                               ctx, arg_fn=arg_fn)
            for call, arg_fn in zip(plan.aggregates, arg_fns))
        output.append(rowid.group_id(key_values), key_values + aggregates)
    return output


def distinct_relation(schema, child: Relation) -> Relation:
    output = Relation(schema)
    seen: set[tuple] = set()
    group_key = t.group_key
    for row in child.rows:
        key = group_key(row)
        if key in seen:
            continue
        seen.add(key)
        output.append(rowid.distinct_id(row), row)
    return output


def window_relation(plan: lp.Window, child: Relation,
                    ctx: EvalContext) -> Relation:
    """Evaluate partitioned window calls, appending one column per call."""
    partitions: dict[tuple, list[int]] = {}
    key_fn = compile_group_key(plan.partition_exprs, ctx)
    for index, row in enumerate(child.rows):
        partitions.setdefault(key_fn(row), []).append(index)

    extra: list[list] = [[] for __ in child.rows]
    compiled = compile_window_calls(plan.calls, ctx)
    for indices in partitions.values():
        rows = [child.rows[index] for index in indices]
        ids = [child.row_ids[index] for index in indices]
        outputs = evaluate_window_calls(plan.calls, rows, ids, ctx,
                                        compiled=compiled)
        for local, index in enumerate(indices):
            extra[index] = outputs[local]

    output = Relation(plan.schema)
    for index, (row_id, row) in enumerate(child.pairs()):
        output.append(row_id, row + tuple(extra[index]))
    return output


def flatten_relation(plan: lp.Flatten, child: Relation,
                     ctx: EvalContext) -> Relation:
    """LATERAL FLATTEN: one output row per array element; non-array or NULL
    inputs contribute no rows (Snowflake's default OUTER => FALSE)."""
    output = Relation(plan.schema)
    input_fn = compile_expression(plan.input_expr, ctx)
    for row_id, row in zip(child.row_ids, child.rows):
        value = input_fn(row)
        if not isinstance(value, list):
            continue
        for index, element in enumerate(value):
            output.append(rowid.flatten_id(row_id, index),
                          row + (element, index))
    return output
