"""The relational executor.

Evaluates a bound logical plan against a :class:`SnapshotResolver`,
producing a :class:`~repro.engine.relation.Relation` whose row ids follow
the deterministic derivation of :mod:`repro.ivm.rowid`. Because full
evaluation and incremental evaluation derive identical ids, a FULL refresh,
a REINITIALIZE, and a long chain of INCREMENTAL refreshes all converge on
byte-identical table states — the property the paper's randomized
production validation (section 6.1) checks.

The executor is a straightforward pull-based interpreter: each operator
materializes its output. Joins hash on equi-keys when the condition allows
(falling back to nested loops), aggregation and DISTINCT hash on SQL group
keys (NULLs equal), and window functions evaluate per partition via
:mod:`repro.engine.window`.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine import types as t
from repro.engine.expressions import DEFAULT_CONTEXT, EvalContext
from repro.engine.relation import Relation, SnapshotResolver
from repro.engine.window import evaluate_window_calls, sort_partition
from repro.errors import InternalError
from repro.ivm import rowid
from repro.plan import logical as lp
from repro.engine.aggregates import evaluate_aggregate


def evaluate(plan: lp.PlanNode, resolver: SnapshotResolver,
             ctx: EvalContext = DEFAULT_CONTEXT) -> Relation:
    """Evaluate ``plan`` against ``resolver``'s snapshot."""
    return _Executor(resolver, ctx).run(plan)


class _Executor:
    def __init__(self, resolver: SnapshotResolver, ctx: EvalContext):
        self._resolver = resolver
        self._ctx = ctx

    def run(self, plan: lp.PlanNode) -> Relation:
        method = getattr(self, f"_run_{type(plan).__name__.lower()}", None)
        if method is None:
            raise InternalError(f"no executor for {type(plan).__name__}")
        return method(plan)

    # -- leaves --------------------------------------------------------------

    def _run_scan(self, plan: lp.Scan) -> Relation:
        source = self._resolver.scan(plan.table)
        # Requalify under the plan's schema (alias binding); data unchanged.
        return Relation(plan.schema, source.rows, source.row_ids)

    def _run_values(self, plan: lp.Values) -> Relation:
        relation = Relation(plan.schema)
        for index, row in enumerate(plan.rows):
            relation.append(f"v:{index}", row)
        return relation

    # -- row-preserving operators ---------------------------------------------

    def _run_project(self, plan: lp.Project) -> Relation:
        child = self.run(plan.child)
        output = Relation(plan.schema)
        for row_id, row in child.pairs():
            output.append(row_id, tuple(expr.eval(row, self._ctx)
                                        for expr in plan.exprs))
        return output

    def _run_filter(self, plan: lp.Filter) -> Relation:
        child = self.run(plan.child)
        output = Relation(plan.schema)
        for row_id, row in child.pairs():
            if t.is_true(plan.predicate.eval(row, self._ctx)):
                output.append(row_id, row)
        return output

    # -- joins ----------------------------------------------------------------

    def _run_join(self, plan: lp.Join) -> Relation:
        left = self.run(plan.left)
        right = self.run(plan.right)
        return join_relations(plan, left, right, self._ctx)

    # -- union ------------------------------------------------------------------

    def _run_unionall(self, plan: lp.UnionAll) -> Relation:
        output = Relation(plan.schema)
        for branch, child in enumerate(plan.inputs):
            relation = self.run(child)
            for row_id, row in relation.pairs():
                output.append(rowid.union_id(branch, row_id), row)
        return output

    # -- aggregation ---------------------------------------------------------

    def _run_aggregate(self, plan: lp.Aggregate) -> Relation:
        child = self.run(plan.child)
        return aggregate_relation(plan, child, self._ctx)

    def _run_distinct(self, plan: lp.Distinct) -> Relation:
        child = self.run(plan.child)
        return distinct_relation(plan.schema, child)

    # -- windows -----------------------------------------------------------------

    def _run_window(self, plan: lp.Window) -> Relation:
        child = self.run(plan.child)
        return window_relation(plan, child, self._ctx)

    # -- flatten ---------------------------------------------------------------

    def _run_flatten(self, plan: lp.Flatten) -> Relation:
        child = self.run(plan.child)
        return flatten_relation(plan, child, self._ctx)

    # -- presentation operators -------------------------------------------------

    def _run_sort(self, plan: lp.Sort) -> Relation:
        child = self.run(plan.child)
        ordered = sort_partition(child.rows, child.row_ids, plan.keys, self._ctx)
        output = Relation(plan.schema)
        for index in ordered:
            output.append(child.row_ids[index], child.rows[index])
        return output

    def _run_limit(self, plan: lp.Limit) -> Relation:
        child = self.run(plan.child)
        output = Relation(plan.schema)
        for row_id, row in list(child.pairs())[:plan.count]:
            output.append(row_id, row)
        return output


# ---------------------------------------------------------------------------
# Shared operator kernels (the IVM rules reuse these on delta inputs)
# ---------------------------------------------------------------------------

def join_relations(plan: lp.Join, left: Relation, right: Relation,
                   ctx: EvalContext) -> Relation:
    """Evaluate any join kind over two materialized inputs."""
    output = Relation(plan.schema)
    left_width = len(plan.left.schema)
    right_width = len(plan.right.schema)

    if plan.kind == "cross":
        for left_id, left_row in left.pairs():
            for right_id, right_row in right.pairs():
                output.append(rowid.join_id(left_id, right_id),
                              left_row + right_row)
        return output

    keys = lp.extract_equi_keys(plan)
    matched_right: set[int] = set()

    if keys.left_keys:
        # Hash join on the equi-keys.
        buckets: dict[tuple, list[int]] = {}
        for index, row in enumerate(right.rows):
            values = tuple(expr.eval(row, ctx) for expr in keys.right_keys)
            if any(value is None for value in values):
                continue  # NULL keys never match
            buckets.setdefault(t.group_key(values), []).append(index)

        for left_index, left_row in enumerate(left.rows):
            values = tuple(expr.eval(left_row, ctx) for expr in keys.left_keys)
            candidates: Sequence[int]
            if any(value is None for value in values):
                candidates = ()
            else:
                candidates = buckets.get(t.group_key(values), ())
            found = False
            for right_index in candidates:
                combined = left_row + right.rows[right_index]
                if keys.residual is not None and not t.is_true(
                        keys.residual.eval(combined, ctx)):
                    continue
                found = True
                matched_right.add(right_index)
                output.append(
                    rowid.join_id(left.row_ids[left_index],
                                  right.row_ids[right_index]), combined)
            if not found and plan.kind in ("left", "full"):
                output.append(rowid.outer_left_id(left.row_ids[left_index]),
                              left_row + (None,) * right_width)
    else:
        # No equi-keys: nested loops on the full condition.
        for left_index, left_row in enumerate(left.rows):
            found = False
            for right_index, right_row in enumerate(right.rows):
                combined = left_row + right_row
                if plan.condition is not None and not t.is_true(
                        plan.condition.eval(combined, ctx)):
                    continue
                found = True
                matched_right.add(right_index)
                output.append(
                    rowid.join_id(left.row_ids[left_index],
                                  right.row_ids[right_index]), combined)
            if not found and plan.kind in ("left", "full"):
                output.append(rowid.outer_left_id(left.row_ids[left_index]),
                              left_row + (None,) * right_width)

    if plan.kind in ("right", "full"):
        for right_index, right_row in enumerate(right.rows):
            if right_index not in matched_right:
                output.append(rowid.outer_right_id(right.row_ids[right_index]),
                              (None,) * left_width + right_row)
    return output


def aggregate_relation(plan: lp.Aggregate, child: Relation,
                       ctx: EvalContext) -> Relation:
    """Evaluate grouped (or scalar) aggregation over a materialized input."""
    groups: dict[tuple, tuple[tuple, list[tuple]]] = {}
    for row in child.rows:
        key_values = tuple(expr.eval(row, ctx) for expr in plan.group_exprs)
        key = t.group_key(key_values)
        if key not in groups:
            groups[key] = (key_values, [])
        groups[key][1].append(row)

    output = Relation(plan.schema)
    if plan.is_scalar and not groups:
        # Scalar aggregate over empty input still yields one row.
        groups[t.group_key(())] = ((), [])
    for key_values, rows in groups.values():
        aggregates = tuple(
            evaluate_aggregate(call.function, call.arg, call.distinct, rows, ctx)
            for call in plan.aggregates)
        output.append(rowid.group_id(key_values), key_values + aggregates)
    return output


def distinct_relation(schema, child: Relation) -> Relation:
    output = Relation(schema)
    seen: set[tuple] = set()
    for row in child.rows:
        key = t.group_key(row)
        if key in seen:
            continue
        seen.add(key)
        output.append(rowid.distinct_id(row), row)
    return output


def window_relation(plan: lp.Window, child: Relation,
                    ctx: EvalContext) -> Relation:
    """Evaluate partitioned window calls, appending one column per call."""
    partitions: dict[tuple, list[int]] = {}
    for index, row in enumerate(child.rows):
        key = t.group_key(expr.eval(row, ctx) for expr in plan.partition_exprs)
        partitions.setdefault(key, []).append(index)

    extra: list[list] = [[] for __ in child.rows]
    for indices in partitions.values():
        rows = [child.rows[index] for index in indices]
        ids = [child.row_ids[index] for index in indices]
        outputs = evaluate_window_calls(plan.calls, rows, ids, ctx)
        for local, index in enumerate(indices):
            extra[index] = outputs[local]

    output = Relation(plan.schema)
    for index, (row_id, row) in enumerate(child.pairs()):
        output.append(row_id, row + tuple(extra[index]))
    return output


def flatten_relation(plan: lp.Flatten, child: Relation,
                     ctx: EvalContext) -> Relation:
    """LATERAL FLATTEN: one output row per array element; non-array or NULL
    inputs contribute no rows (Snowflake's default OUTER => FALSE)."""
    output = Relation(plan.schema)
    for row_id, row in child.pairs():
        value = plan.input_expr.eval(row, ctx)
        if not isinstance(value, list):
            continue
        for index, element in enumerate(value):
            output.append(rowid.flatten_id(row_id, index),
                          row + (element, index))
    return output
