"""Window function evaluation over a single partition.

Section 5.5.1 of the paper implements window-function differentiation by
recomputing *changed partitions*; that only yields consistent results when
evaluation within a partition is deterministic, "as long as ties in ORDER
BY are broken repeatably". We therefore always break ORDER BY ties with a
stable final key (the row's own encoded value plus its row id), making a
partition's output a pure function of its row multiset.

Frames follow the SQL defaults:

* no ORDER BY → the whole partition is the frame (for aggregate functions);
* ORDER BY present → cumulative frame, RANGE UNBOUNDED PRECEDING TO CURRENT
  ROW — peer rows (equal order keys) share frame results.
"""

from __future__ import annotations

import functools
from typing import Sequence

from repro.engine import types as t
from repro.engine.aggregates import evaluate_aggregate
from repro.engine.expressions import EvalContext
from repro.engine.types import Value
from repro.errors import EvaluationError
from repro.plan.logical import WindowCall


def sort_partition(rows: Sequence[tuple], row_ids: Sequence[str],
                   order_by, ctx: EvalContext) -> list[int]:
    """Return row indices in window evaluation order.

    Sorts by the ORDER BY keys (NULLS LAST ascending / NULLS FIRST
    descending, Snowflake's defaults), breaking ties with the stable hash
    of the full row and finally the row id — the "repeatable tie-break" the
    paper's window derivative requires.
    """
    indices = list(range(len(rows)))

    def compare_rows(left: int, right: int) -> int:
        for expr, descending in order_by:
            left_value = expr.eval(rows[left], ctx)
            right_value = expr.eval(rows[right], ctx)
            result = _compare_with_nulls(left_value, right_value, descending)
            if result != 0:
                return result
        left_tie = (t.stable_hash(rows[left]), row_ids[left])
        right_tie = (t.stable_hash(rows[right]), row_ids[right])
        if left_tie < right_tie:
            return -1
        if left_tie > right_tie:
            return 1
        return 0

    indices.sort(key=functools.cmp_to_key(compare_rows))
    return indices


def _compare_with_nulls(left: Value, right: Value, descending: bool) -> int:
    if left is None and right is None:
        return 0
    if left is None:
        # NULLS LAST when ascending, NULLS FIRST when descending.
        return 1 if not descending else -1
    if right is None:
        return -1 if not descending else 1
    result = t.compare(left, right)
    assert result is not None
    return -result if descending else result


def evaluate_window_calls(calls: Sequence[WindowCall], rows: Sequence[tuple],
                          row_ids: Sequence[str],
                          ctx: EvalContext) -> list[list[Value]]:
    """Evaluate every window call over one partition.

    Returns ``outputs[row_index][call_index]`` aligned with the *input*
    order of ``rows`` (the caller appends these as extra columns).
    """
    outputs: list[list[Value]] = [[None] * len(calls) for __ in rows]
    for call_index, call in enumerate(calls):
        ordered = sort_partition(rows, row_ids, call.order_by, ctx)
        values = _evaluate_one(call, rows, ordered, ctx)
        for position, row_index in enumerate(ordered):
            outputs[row_index][call_index] = values[position]
    return outputs


def _evaluate_one(call: WindowCall, rows: Sequence[tuple],
                  ordered: Sequence[int], ctx: EvalContext) -> list[Value]:
    """Values for one call, positionally aligned with ``ordered``."""
    size = len(ordered)

    if call.function == "row_number":
        return list(range(1, size + 1))

    if call.function in ("rank", "dense_rank"):
        return _rank_values(call, rows, ordered, ctx,
                            dense=call.function == "dense_rank")

    if call.function in ("lag", "lead"):
        assert call.arg is not None
        values: list[Value] = []
        direction = -call.offset if call.function == "lag" else call.offset
        for position in range(size):
            source = position + direction
            if 0 <= source < size:
                values.append(call.arg.eval(rows[ordered[source]], ctx))
            else:
                values.append(None)
        return values

    if call.function == "first_value":
        assert call.arg is not None
        first = call.arg.eval(rows[ordered[0]], ctx) if size else None
        return [first] * size

    if call.function == "last_value":
        assert call.arg is not None
        last = call.arg.eval(rows[ordered[-1]], ctx) if size else None
        return [last] * size

    if call.function in ("sum", "count", "avg", "min", "max", "count_if"):
        if not call.order_by:
            # Whole-partition frame.
            frame = [rows[index] for index in ordered]
            value = evaluate_aggregate(call.function, call.arg, False, frame, ctx)
            return [value] * size
        return _cumulative_values(call, rows, ordered, ctx)

    raise EvaluationError(f"unknown window function {call.function}")


def _rank_values(call: WindowCall, rows: Sequence[tuple],
                 ordered: Sequence[int], ctx: EvalContext,
                 dense: bool) -> list[Value]:
    values: list[Value] = []
    rank = 0
    dense_rank = 0
    previous_key: tuple | None = None
    for position, row_index in enumerate(ordered):
        key = tuple(expr.eval(rows[row_index], ctx)
                    for expr, __ in call.order_by)
        key = t.group_key(key)
        if key != previous_key:
            rank = position + 1
            dense_rank += 1
            previous_key = key
        values.append(dense_rank if dense else rank)
    return values


def _cumulative_values(call: WindowCall, rows: Sequence[tuple],
                       ordered: Sequence[int], ctx: EvalContext) -> list[Value]:
    """Cumulative (RANGE UNBOUNDED PRECEDING) frame: peers share results."""
    # Identify peer groups by order-key equality.
    values: list[Value] = [None] * len(ordered)
    position = 0
    while position < len(ordered):
        key = t.group_key(expr.eval(rows[ordered[position]], ctx)
                          for expr, __ in call.order_by)
        end = position + 1
        while end < len(ordered):
            next_key = t.group_key(expr.eval(rows[ordered[end]], ctx)
                                   for expr, __ in call.order_by)
            if next_key != key:
                break
            end += 1
        frame = [rows[index] for index in ordered[:end]]
        value = evaluate_aggregate(call.function, call.arg, False, frame, ctx)
        for index in range(position, end):
            values[index] = value
        position = end
    return values
