"""Window function evaluation over a single partition.

Section 5.5.1 of the paper implements window-function differentiation by
recomputing *changed partitions*; that only yields consistent results when
evaluation within a partition is deterministic, "as long as ties in ORDER
BY are broken repeatably". We therefore always break ORDER BY ties with a
stable final key (the row's own encoded value plus its row id), making a
partition's output a pure function of its row multiset.

Evaluation is batched: ORDER BY keys, tie-break digests, and call
arguments are computed once per row (via compiled closures from
:mod:`repro.engine.expressions`) rather than once per comparison, which
turns the sort from O(n log n) expression evaluations into O(n).

Frames follow the SQL defaults:

* no ORDER BY → the whole partition is the frame (for aggregate functions);
* ORDER BY present → cumulative frame, RANGE UNBOUNDED PRECEDING TO CURRENT
  ROW — peer rows (equal order keys) share frame results.
"""

from __future__ import annotations

import functools
from typing import Callable, Optional, Sequence

from repro.engine import types as t
from repro.engine.aggregates import evaluate_aggregate
from repro.engine.expressions import EvalContext, compile_expression
from repro.engine.types import Value
from repro.errors import EvaluationError
from repro.plan.logical import WindowCall


def sort_partition(rows: Sequence[tuple], row_ids: Sequence[str],
                   order_by, ctx: EvalContext,
                   key_fns: Optional[list] = None,
                   keys: Optional[list[tuple]] = None,
                   tie_cache: Optional[list] = None) -> list[int]:
    """Return row indices in window evaluation order.

    Sorts by the ORDER BY keys (NULLS LAST ascending / NULLS FIRST
    descending, Snowflake's defaults), breaking ties with the stable hash
    of the full row and finally the row id — the "repeatable tie-break" the
    paper's window derivative requires.

    Key values are computed once per row (``keys`` lets callers supply
    them precomputed; ``key_fns`` reuses already-compiled evaluators). The
    tie-break digest is computed lazily — only for rows that actually tie
    — and memoized in ``tie_cache``, which callers sorting the same rows
    repeatedly (one Window node, several calls) can share across calls.
    """
    if key_fns is None:
        key_fns = [(compile_expression(expr, ctx), descending)
                   for expr, descending in order_by]
    if keys is None:
        keys = [tuple(fn(row) for fn, __ in key_fns) for row in rows]
    if tie_cache is None:
        tie_cache = [None] * len(rows)
    descending_flags = [descending for __, descending in key_fns]

    def tie_key(index: int) -> tuple:
        value = tie_cache[index]
        if value is None:
            value = tie_cache[index] = (t.stable_hash(rows[index]),
                                        row_ids[index])
        return value

    def compare_rows(left: int, right: int) -> int:
        left_keys = keys[left]
        right_keys = keys[right]
        for position, descending in enumerate(descending_flags):
            result = _compare_with_nulls(left_keys[position],
                                         right_keys[position], descending)
            if result != 0:
                return result
        left_tie = tie_key(left)
        right_tie = tie_key(right)
        if left_tie < right_tie:
            return -1
        if left_tie > right_tie:
            return 1
        return 0

    indices = list(range(len(rows)))
    indices.sort(key=functools.cmp_to_key(compare_rows))
    return indices


def _compare_with_nulls(left: Value, right: Value, descending: bool) -> int:
    if left is None and right is None:
        return 0
    if left is None:
        # NULLS LAST when ascending, NULLS FIRST when descending.
        return 1 if not descending else -1
    if right is None:
        return -1 if not descending else 1
    result = t.compare(left, right)
    assert result is not None
    return -result if descending else result


class CompiledWindowCall:
    """A window call with its argument and ORDER BY keys compiled once."""

    __slots__ = ("call", "arg_fn", "key_fns")

    def __init__(self, call: WindowCall, ctx: EvalContext):
        self.call = call
        self.arg_fn: Optional[Callable[[tuple], Value]] = (
            compile_expression(call.arg, ctx) if call.arg is not None else None)
        self.key_fns = [(compile_expression(expr, ctx), descending)
                        for expr, descending in call.order_by]


def compile_window_calls(calls: Sequence[WindowCall],
                         ctx: EvalContext) -> list[CompiledWindowCall]:
    return [CompiledWindowCall(call, ctx) for call in calls]


def evaluate_window_calls(calls: Sequence[WindowCall], rows: Sequence[tuple],
                          row_ids: Sequence[str], ctx: EvalContext,
                          compiled: Optional[Sequence[CompiledWindowCall]] = None,
                          ) -> list[list[Value]]:
    """Evaluate every window call over one partition.

    Returns ``outputs[row_index][call_index]`` aligned with the *input*
    order of ``rows`` (the caller appends these as extra columns).
    ``compiled`` lets the executor share compiled calls across partitions.
    """
    if compiled is None:
        compiled = compile_window_calls(calls, ctx)
    outputs: list[list[Value]] = [[None] * len(calls) for __ in rows]
    tie_cache: list = [None] * len(rows)  # shared: ties are key-independent
    for call_index, cc in enumerate(compiled):
        keys = [tuple(fn(row) for fn, __ in cc.key_fns) for row in rows]
        ordered = sort_partition(rows, row_ids, cc.call.order_by, ctx,
                                 key_fns=cc.key_fns, keys=keys,
                                 tie_cache=tie_cache)
        values = _evaluate_one(cc, rows, ordered, ctx, keys)
        for position, row_index in enumerate(ordered):
            outputs[row_index][call_index] = values[position]
    return outputs


def _order_keys(keys: Sequence[tuple], ordered: Sequence[int]) -> list[tuple]:
    """Group keys of the (already computed) ORDER BY values, aligned with
    ``ordered``."""
    group_key = t.group_key
    return [group_key(keys[index]) for index in ordered]


def _evaluate_one(cc: CompiledWindowCall, rows: Sequence[tuple],
                  ordered: Sequence[int], ctx: EvalContext,
                  keys: Sequence[tuple]) -> list[Value]:
    """Values for one call, positionally aligned with ``ordered``."""
    call = cc.call
    arg_fn = cc.arg_fn
    size = len(ordered)

    if call.function == "row_number":
        return list(range(1, size + 1))

    if call.function in ("rank", "dense_rank"):
        return _rank_values(keys, ordered,
                            dense=call.function == "dense_rank")

    if call.function in ("lag", "lead"):
        assert arg_fn is not None
        values: list[Value] = []
        direction = -call.offset if call.function == "lag" else call.offset
        for position in range(size):
            source = position + direction
            if 0 <= source < size:
                values.append(arg_fn(rows[ordered[source]]))
            else:
                values.append(None)
        return values

    if call.function == "first_value":
        assert arg_fn is not None
        first = arg_fn(rows[ordered[0]]) if size else None
        return [first] * size

    if call.function == "last_value":
        assert arg_fn is not None
        last = arg_fn(rows[ordered[-1]]) if size else None
        return [last] * size

    if call.function in ("sum", "count", "avg", "min", "max", "count_if"):
        if not call.order_by:
            # Whole-partition frame.
            frame = [rows[index] for index in ordered]
            value = evaluate_aggregate(call.function, call.arg, False, frame,
                                       ctx, arg_fn=arg_fn)
            return [value] * size
        return _cumulative_values(cc, rows, ordered, ctx, keys)

    raise EvaluationError(f"unknown window function {call.function}")


def _rank_values(keys: Sequence[tuple], ordered: Sequence[int],
                 dense: bool) -> list[Value]:
    order_keys = _order_keys(keys, ordered)
    values: list[Value] = []
    rank = 0
    dense_rank = 0
    previous_key: tuple | None = None
    for position, key in enumerate(order_keys):
        if key != previous_key:
            rank = position + 1
            dense_rank += 1
            previous_key = key
        values.append(dense_rank if dense else rank)
    return values


def _cumulative_values(cc: CompiledWindowCall, rows: Sequence[tuple],
                       ordered: Sequence[int], ctx: EvalContext,
                       keys: Sequence[tuple]) -> list[Value]:
    """Cumulative (RANGE UNBOUNDED PRECEDING) frame: peers share results."""
    # Identify peer groups by order-key equality.
    order_keys = _order_keys(keys, ordered)
    values: list[Value] = [None] * len(ordered)
    position = 0
    while position < len(ordered):
        key = order_keys[position]
        end = position + 1
        while end < len(ordered) and order_keys[end] == key:
            end += 1
        frame = [rows[index] for index in ordered[:end]]
        value = evaluate_aggregate(cc.call.function, cc.call.arg, False, frame,
                                   ctx, arg_fn=cc.arg_fn)
        for index in range(position, end):
            values[index] = value
        position = end
    return values
