"""Aggregate function evaluation: full recomputation and accumulators.

:func:`evaluate_aggregate` computes one aggregate by full recomputation
over a group's rows — the reference semantics, used by the executor and
by the *affected-group* incremental strategy (recompute exactly the
groups whose inputs changed), which matches the paper's production stance
(section 5.5.3: "none of our derivatives so far reuse the state from
preceding data timestamps already stored in the DT").

The **accumulator protocol** is the state-carrying alternative that
section 5.5.3 stops short of: a per-group object with
``insert``/``retract``/``merge``/``finalize`` (plus the vectorized
``insert_arrays``/``retract_arrays`` over columnar delta slices) that the
stateful aggregate rule (:mod:`repro.ivm.aggstate`) folds delta rows into,
one O(1) operation per row. COUNT/SUM/AVG are fully retractable;
MIN/MAX keep a per-group value multiset and recompute the extremum only
when the current extremum's last copy is retracted; DISTINCT-qualified
aggregates keep a count per distinct value. :func:`retractable_call`
classifies which :class:`~repro.plan.logical.AggregateCall` shapes have an
accumulator — the rest fall back to affected-group recomputation.

``count_if`` is the Snowflake conditional count used in the paper's
Listing 1.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from repro.engine import types as t
from repro.engine.expressions import EvalContext, Expression, compile_expression
from repro.engine.types import SqlType, Value
from repro.errors import EvaluationError, InternalError


def evaluate_aggregate(function: str, arg: Optional[Expression],
                       distinct: bool, rows: Sequence[tuple],
                       ctx: EvalContext,
                       arg_fn: Optional[Callable[[tuple], Value]] = None,
                       ) -> Value:
    """Evaluate one aggregate over the rows of a single group.

    ``arg_fn`` is an optional pre-compiled evaluator for ``arg``; callers
    evaluating many groups compile once and pass it to avoid recompiling
    per group.
    """
    if function == "count" and arg is None:
        return len(rows)

    if arg is None:
        raise EvaluationError(f"aggregate {function} requires an argument")
    if arg_fn is None:
        arg_fn = compile_expression(arg, ctx)
    values: Iterable[Value] = (arg_fn(row) for row in rows)

    if function == "count_if":
        # count_if counts rows where the predicate is TRUE.
        return sum(1 for value in values if value is True)

    # The remaining aggregates skip NULLs.
    non_null = [value for value in values if value is not None]
    if distinct:
        seen: dict[tuple, Value] = {}
        for value in non_null:
            seen.setdefault(t.group_key((value,)), value)
        non_null = list(seen.values())

    if function == "count":
        return len(non_null)
    if not non_null:
        # SQL: aggregates over an empty (post-NULL-filter) set yield NULL.
        return None
    if function == "sum":
        return sum(non_null)
    if function == "avg":
        return sum(non_null) / len(non_null)
    if function == "min":
        return _extreme(non_null, want_max=False)
    if function == "max":
        return _extreme(non_null, want_max=True)
    if function == "any_value":
        # Deterministic choice (first in input order) so incremental and
        # full refreshes agree whenever input order is stable.
        return non_null[0]
    if function == "median":
        ordered = sorted(non_null)
        middle = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[middle]
        return (ordered[middle - 1] + ordered[middle]) / 2
    if function in ("stddev", "variance"):
        if len(non_null) < 2:
            return None  # sample statistics need two observations
        mean = sum(non_null) / len(non_null)
        variance = (sum((value - mean) ** 2 for value in non_null)
                    / (len(non_null) - 1))
        return variance if function == "variance" else variance ** 0.5
    if function == "listagg":
        # Deterministic order (sorted by value) so incremental and full
        # refreshes agree regardless of arrival order.
        return ",".join(str(value) for value in sorted(non_null, key=repr))
    raise EvaluationError(f"unknown aggregate function {function}")


def _extreme(values: Sequence[Value], want_max: bool) -> Value:
    best = values[0]
    for value in values[1:]:
        result = t.compare(value, best)
        if result is None:
            continue
        if (result > 0) == want_max and result != 0:
            best = value
    return best


# ---------------------------------------------------------------------------
# Retractable accumulators (the stateful incremental-aggregation protocol)
# ---------------------------------------------------------------------------

class RetractionError(InternalError):
    """A retraction did not match previously inserted state — the delta
    stream and the accumulator have diverged (e.g. an out-of-order or
    replayed interval). The stateful rule treats this as a signal to drop
    the state store and fall back to recomputation, never to guess."""


class Accumulator:
    """One aggregate's per-group incremental state.

    The protocol: ``insert(value)`` folds one input row in, ``retract
    (value)`` removes a previously inserted row, ``merge(other)`` absorbs
    another accumulator of the same shape (partial states computed per
    partition), and ``finalize()`` yields the aggregate's current SQL
    value. ``insert_arrays``/``retract_arrays`` fold a whole columnar
    delta slice at once; the base implementations loop, concrete
    accumulators override them with bulk arithmetic where the function
    allows (``sum``/``len`` run at C speed).

    Every operation is O(1) (amortized for MIN/MAX, whose extremum rescan
    is paid only when the current extremum's last copy is retracted), so
    folding a delta is O(|delta|) regardless of group sizes.
    """

    __slots__ = ()

    def insert(self, value: Value) -> None:
        raise NotImplementedError

    def retract(self, value: Value) -> None:
        raise NotImplementedError

    def merge(self, other: "Accumulator") -> None:
        raise NotImplementedError

    def finalize(self) -> Value:
        raise NotImplementedError

    def insert_arrays(self, values: Sequence[Value]) -> None:
        for value in values:
            self.insert(value)

    def retract_arrays(self, values: Sequence[Value]) -> None:
        for value in values:
            self.retract(value)


class CountStarAccumulator(Accumulator):
    """COUNT(*): every row counts, NULLs included."""

    __slots__ = ("count",)

    def __init__(self):
        self.count = 0

    def insert(self, value: Value) -> None:
        self.count += 1

    def retract(self, value: Value) -> None:
        self.count -= 1
        if self.count < 0:
            raise RetractionError("count(*) retracted below zero")

    def merge(self, other: "CountStarAccumulator") -> None:
        self.count += other.count

    def finalize(self) -> Value:
        return self.count

    def insert_arrays(self, values: Sequence[Value]) -> None:
        self.count += len(values)

    def retract_arrays(self, values: Sequence[Value]) -> None:
        self.count -= len(values)
        if self.count < 0:
            raise RetractionError("count(*) retracted below zero")


class CountAccumulator(CountStarAccumulator):
    """COUNT(x): non-NULL rows count."""

    __slots__ = ()

    def insert(self, value: Value) -> None:
        if value is not None:
            self.count += 1

    def retract(self, value: Value) -> None:
        if value is not None:
            self.count -= 1
            if self.count < 0:
                raise RetractionError("count retracted below zero")

    def insert_arrays(self, values: Sequence[Value]) -> None:
        self.count += len(values) - values.count(None)

    def retract_arrays(self, values: Sequence[Value]) -> None:
        self.count -= len(values) - values.count(None)
        if self.count < 0:
            raise RetractionError("count retracted below zero")


class CountIfAccumulator(CountStarAccumulator):
    """COUNT_IF(pred): rows where the predicate is TRUE count."""

    __slots__ = ()

    def insert(self, value: Value) -> None:
        if value is True:
            self.count += 1

    def retract(self, value: Value) -> None:
        if value is True:
            self.count -= 1
            if self.count < 0:
                raise RetractionError("count_if retracted below zero")

    def insert_arrays(self, values: Sequence[Value]) -> None:
        self.count += values.count(True)

    def retract_arrays(self, values: Sequence[Value]) -> None:
        self.count -= values.count(True)
        if self.count < 0:
            raise RetractionError("count_if retracted below zero")


class SumAccumulator(Accumulator):
    """SUM(x) over an exact (non-FLOAT) argument: running total plus the
    non-NULL count that decides the all-NULL → NULL result."""

    __slots__ = ("total", "count")

    def __init__(self):
        self.total = 0
        self.count = 0

    def insert(self, value: Value) -> None:
        if value is not None:
            self.total += value
            self.count += 1

    def retract(self, value: Value) -> None:
        if value is not None:
            self.total -= value
            self.count -= 1
            if self.count < 0:
                raise RetractionError("sum retracted below zero rows")

    def merge(self, other: "SumAccumulator") -> None:
        self.total += other.total
        self.count += other.count

    def finalize(self) -> Value:
        return self.total if self.count else None

    def insert_arrays(self, values: Sequence[Value]) -> None:
        nulls = values.count(None)
        if nulls:
            values = [value for value in values if value is not None]
        self.total += sum(values)
        self.count += len(values)

    def retract_arrays(self, values: Sequence[Value]) -> None:
        nulls = values.count(None)
        if nulls:
            values = [value for value in values if value is not None]
        self.total -= sum(values)
        self.count -= len(values)
        if self.count < 0:
            raise RetractionError("sum retracted below zero rows")


class AvgAccumulator(SumAccumulator):
    """AVG(x): sum and count, divided at finalize — deterministic for
    exact argument types because (total, count) are maintained exactly."""

    __slots__ = ()

    def finalize(self) -> Value:
        return self.total / self.count if self.count else None


class ExtremeAccumulator(Accumulator):
    """MIN/MAX: a value multiset (value -> copy count) plus the cached
    extremum. Inserts compare against the cached extremum in O(1);
    retracting the extremum's last copy rescans the *distinct* values of
    the group — the "recompute only the evicted group" strategy, bounded
    by the group's distinct cardinality rather than its row count."""

    __slots__ = ("want_max", "counts", "best")

    def __init__(self, want_max: bool):
        self.want_max = want_max
        self.counts: dict = {}       # value -> number of copies present
        self.best: Value = None      # cached extremum (None when empty)

    def insert(self, value: Value) -> None:
        if value is None:
            return
        counts = self.counts
        present = counts.get(value, 0)
        counts[value] = present + 1
        if not present:
            if len(counts) == 1:
                self.best = value
            else:
                result = t.compare(value, self.best)
                if result is not None and result != 0 \
                        and (result > 0) == self.want_max:
                    self.best = value

    def retract(self, value: Value) -> None:
        if value is None:
            return
        counts = self.counts
        present = counts.get(value, 0)
        if not present:
            raise RetractionError(
                f"retraction of {value!r} not present in min/max state")
        if present > 1:
            counts[value] = present - 1
            return
        del counts[value]
        if value == self.best:
            self.best = (_extreme(list(counts), self.want_max)
                         if counts else None)

    def merge(self, other: "ExtremeAccumulator") -> None:
        for value, count in other.counts.items():
            self.counts[value] = self.counts.get(value, 0) + count
        if self.counts:
            self.best = _extreme(list(self.counts), self.want_max)

    def finalize(self) -> Value:
        return self.best


class DistinctAccumulator(Accumulator):
    """COUNT/SUM/AVG(DISTINCT x): a count per distinct value. The
    distinct total is maintained on 0→1 / 1→0 transitions — but only for
    sum/avg, so ``count(distinct x)`` works over non-summable values
    (TEXT, TIMESTAMP, ...)."""

    __slots__ = ("function", "counts", "total", "_summing")

    def __init__(self, function: str):
        self.function = function
        self.counts: dict = {}   # value -> number of copies present
        self.total = 0
        self._summing = function in ("sum", "avg")

    def insert(self, value: Value) -> None:
        if value is None:
            return
        present = self.counts.get(value, 0)
        self.counts[value] = present + 1
        if not present and self._summing:
            self.total += value

    def retract(self, value: Value) -> None:
        if value is None:
            return
        present = self.counts.get(value, 0)
        if not present:
            raise RetractionError(
                f"retraction of {value!r} not present in distinct state")
        if present > 1:
            self.counts[value] = present - 1
            return
        del self.counts[value]
        if self._summing:
            self.total -= value

    def merge(self, other: "DistinctAccumulator") -> None:
        for value, count in other.counts.items():
            present = self.counts.get(value, 0)
            self.counts[value] = present + count
            if not present and self._summing:
                self.total += value

    def finalize(self) -> Value:
        distinct = len(self.counts)
        if self.function == "count":
            return distinct
        if not distinct:
            return None
        if self.function == "sum":
            return self.total
        return self.total / distinct  # avg


#: Functions with a retractable accumulator. Everything else (median,
#: stddev/variance, listagg, any_value — all order- or whole-group-
#: dependent) falls back to affected-group recomputation.
_RETRACTABLE_FUNCTIONS = frozenset(
    {"count", "count_if", "sum", "avg", "min", "max"})

#: Argument types whose accumulators would not reproduce recomputation
#: byte-for-byte (or not run at all): FLOAT running sums drift from the
#: scan-order sum by rounding, FLOAT/VARIANT extremum comparisons can be
#: order-dependent (NaN, incomparable variants), TEXT is not summable,
#: and VARIANT values (dicts/lists) are unhashable as multiset keys. The
#: same conservatism the paper applies to FLOAT grouping keys
#: (section 3.4).
_INEXACT_SUM_TYPES = (SqlType.FLOAT, SqlType.VARIANT, SqlType.TEXT)
_INEXACT_EXTREME_TYPES = (SqlType.FLOAT, SqlType.VARIANT)


def retractable_call(call) -> bool:
    """Whether an :class:`~repro.plan.logical.AggregateCall` has an exact
    retractable accumulator (and so may be maintained statefully)."""
    function = call.function
    if function not in _RETRACTABLE_FUNCTIONS:
        return False
    if call.distinct and function == "count_if":
        return False
    arg_type = None if call.arg is None else call.arg.type
    if function in ("sum", "avg") and arg_type in _INEXACT_SUM_TYPES:
        return False
    if function in ("min", "max") and arg_type in _INEXACT_EXTREME_TYPES:
        return False
    if call.distinct and arg_type == SqlType.VARIANT:
        return False  # distinct state keys by raw value; dicts unhashable
    # count(x) / count_if only test NULLness or truth: any type is exact.
    return True


def make_accumulator(call) -> Accumulator:
    """A fresh accumulator for one aggregate call.

    Callers must have checked :func:`retractable_call` first.
    """
    function = call.function
    if call.distinct and function in ("count", "sum", "avg"):
        return DistinctAccumulator(function)
    if function == "count":
        return (CountStarAccumulator() if call.arg is None
                else CountAccumulator())
    if function == "count_if":
        return CountIfAccumulator()
    if function == "sum":
        return SumAccumulator()
    if function == "avg":
        return AvgAccumulator()
    if function in ("min", "max"):
        # DISTINCT is a no-op for extrema; the multiset handles duplicates.
        return ExtremeAccumulator(want_max=function == "max")
    raise EvaluationError(
        f"no retractable accumulator for aggregate {function}")
