"""Aggregate function evaluation.

Aggregates are computed by full recomputation over a group's rows. The
incremental refresh path (:mod:`repro.ivm.rules_agg`) uses the
*affected-group* strategy — recompute exactly the groups whose inputs
changed — so it reuses this module rather than maintaining per-aggregate
incremental state. That matches the paper's stance (section 5.5.3: "none of
our derivatives so far reuse the state from preceding data timestamps
already stored in the DT").

``count_if`` is the Snowflake conditional count used in the paper's
Listing 1.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from repro.engine import types as t
from repro.engine.expressions import EvalContext, Expression, compile_expression
from repro.engine.types import Value
from repro.errors import EvaluationError


def evaluate_aggregate(function: str, arg: Optional[Expression],
                       distinct: bool, rows: Sequence[tuple],
                       ctx: EvalContext,
                       arg_fn: Optional[Callable[[tuple], Value]] = None,
                       ) -> Value:
    """Evaluate one aggregate over the rows of a single group.

    ``arg_fn`` is an optional pre-compiled evaluator for ``arg``; callers
    evaluating many groups compile once and pass it to avoid recompiling
    per group.
    """
    if function == "count" and arg is None:
        return len(rows)

    if arg is None:
        raise EvaluationError(f"aggregate {function} requires an argument")
    if arg_fn is None:
        arg_fn = compile_expression(arg, ctx)
    values: Iterable[Value] = (arg_fn(row) for row in rows)

    if function == "count_if":
        # count_if counts rows where the predicate is TRUE.
        return sum(1 for value in values if value is True)

    # The remaining aggregates skip NULLs.
    non_null = [value for value in values if value is not None]
    if distinct:
        seen: dict[tuple, Value] = {}
        for value in non_null:
            seen.setdefault(t.group_key((value,)), value)
        non_null = list(seen.values())

    if function == "count":
        return len(non_null)
    if not non_null:
        # SQL: aggregates over an empty (post-NULL-filter) set yield NULL.
        return None
    if function == "sum":
        return sum(non_null)
    if function == "avg":
        return sum(non_null) / len(non_null)
    if function == "min":
        return _extreme(non_null, want_max=False)
    if function == "max":
        return _extreme(non_null, want_max=True)
    if function == "any_value":
        # Deterministic choice (first in input order) so incremental and
        # full refreshes agree whenever input order is stable.
        return non_null[0]
    if function == "median":
        ordered = sorted(non_null)
        middle = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[middle]
        return (ordered[middle - 1] + ordered[middle]) / 2
    if function in ("stddev", "variance"):
        if len(non_null) < 2:
            return None  # sample statistics need two observations
        mean = sum(non_null) / len(non_null)
        variance = (sum((value - mean) ** 2 for value in non_null)
                    / (len(non_null) - 1))
        return variance if function == "variance" else variance ** 0.5
    if function == "listagg":
        # Deterministic order (sorted by value) so incremental and full
        # refreshes agree regardless of arrival order.
        return ",".join(str(value) for value in sorted(non_null, key=repr))
    raise EvaluationError(f"unknown aggregate function {function}")


def _extreme(values: Sequence[Value], want_max: bool) -> Value:
    best = values[0]
    for value in values[1:]:
        result = t.compare(value, best)
        if result is None:
            continue
        if (result > 0) == want_max and result != 0:
            best = value
    return best
