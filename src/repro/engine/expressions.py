"""Bound scalar expressions.

The SQL frontend produces *AST* expressions (:mod:`repro.sql.nodes`); the
plan builder binds names against schemas and produces the *bound*
expressions defined here. Bound expressions reference columns by position
(:class:`ColumnRef` holds an index), so evaluation over a row is a direct
tuple lookup with no name resolution on the hot path.

Every expression knows:

* ``type`` — its static :class:`~repro.engine.types.SqlType`;
* ``eval(row, ctx)`` — its value for a row under an
  :class:`EvalContext` (which carries the query's data timestamp and role,
  for context functions per section 3.4 of the paper);
* ``is_deterministic`` — whether repeated evaluation yields identical
  results given the same row *and context*. Context functions are
  deterministic given the context; volatile UDFs are not, and make a query
  non-incrementalizable (section 3.4: truly nondeterministic operations
  "are usually expected to be run only when a row is inserted"; DTs "do not
  yet support incremental refreshes in this case");
* ``column_indices()`` — the set of input positions it reads (used by the
  optimizer for pushdown/pruning);
* ``remap(mapping)`` — a copy with column indices translated (used when
  expressions move across operators).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.engine import types as t
from repro.engine.types import SqlType, Value
from repro.errors import EvaluationError, TypeError_
from repro.util.timeutil import DAY, HOUR, MINUTE, SECOND, Timestamp


@dataclass(frozen=True)
class EvalContext:
    """Ambient state for expression evaluation.

    ``timestamp`` is the query's data timestamp: for a dynamic-table
    refresh, the refresh's data timestamp, so that ``CURRENT_TIMESTAMP`` is
    stable across retries of the same refresh (the paper handles context
    functions "on a case-by-case basis"; pinning them to the data timestamp
    is the choice that keeps delayed view semantics exact).
    """

    timestamp: Timestamp = 0
    role: str = "sysadmin"


DEFAULT_CONTEXT = EvalContext()


class Expression:
    """Base class of bound expressions. Subclasses are frozen dataclasses."""

    type: SqlType

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        raise NotImplementedError

    @property
    def is_deterministic(self) -> bool:
        return all(child.is_deterministic for child in self.children())

    @property
    def uses_context(self) -> bool:
        """Whether the expression reads the evaluation context (context
        functions)."""
        return any(child.uses_context for child in self.children())

    def children(self) -> Sequence["Expression"]:
        return ()

    def column_indices(self) -> set[int]:
        indices: set[int] = set()
        for child in self.children():
            indices |= child.column_indices()
        return indices

    def remap(self, mapping: dict[int, int]) -> "Expression":
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Value
    type: SqlType = field(default=SqlType.NULL)

    def __post_init__(self):
        if self.type == SqlType.NULL and self.value is not None:
            object.__setattr__(self, "type", t.type_of_value(self.value))

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        return self.value

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return self


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A positional reference into the input row."""

    index: int
    type: SqlType
    name: str = ""

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        return row[self.index]

    def column_indices(self) -> set[int]:
        return {self.index}

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return ColumnRef(mapping[self.index], self.type, self.name)


_ARITH_RESULT = {SqlType.INT: SqlType.INT, SqlType.FLOAT: SqlType.FLOAT}


@dataclass(frozen=True)
class Arithmetic(Expression):
    """``+ - * / %`` over numerics (and ``+``/``-`` over timestamps)."""

    op: str
    left: Expression
    right: Expression
    type: SqlType = field(default=SqlType.NULL)

    def __post_init__(self):
        left_type, right_type = self.left.type, self.right.type
        for operand in (left_type, right_type):
            if operand not in (SqlType.INT, SqlType.FLOAT, SqlType.TIMESTAMP,
                               SqlType.NULL, SqlType.VARIANT):
                raise TypeError_(f"operator {self.op} not defined for {operand}")
        if self.op == "/":
            result = SqlType.FLOAT
        elif SqlType.TIMESTAMP in (left_type, right_type):
            # timestamp - timestamp -> INT duration; timestamp +- int -> timestamp
            result = SqlType.INT if self.op == "-" and left_type == right_type else SqlType.TIMESTAMP
        elif SqlType.FLOAT in (left_type, right_type):
            result = SqlType.FLOAT
        else:
            result = SqlType.INT
        object.__setattr__(self, "type", result)

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        left = self.left.eval(row, ctx)
        right = self.right.eval(row, ctx)
        if left is None or right is None:
            return None
        try:
            if self.op == "+":
                return left + right
            if self.op == "-":
                return left - right
            if self.op == "*":
                return left * right
            if self.op == "/":
                if right == 0:
                    raise EvaluationError("division by zero")
                return left / right
            if self.op == "%":
                if right == 0:
                    raise EvaluationError("division by zero")
                return left % right
        except TypeError as exc:
            raise EvaluationError(f"bad operands for {self.op}: {left!r}, {right!r}") from exc
        raise EvaluationError(f"unknown arithmetic operator {self.op}")

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return Arithmetic(self.op, self.left.remap(mapping), self.right.remap(mapping))


@dataclass(frozen=True)
class Comparison(Expression):
    """``= != < <= > >=`` with SQL NULL semantics."""

    op: str
    left: Expression
    right: Expression
    type: SqlType = SqlType.BOOL

    def __post_init__(self):
        if not t.is_comparable(self.left.type, self.right.type):
            raise TypeError_(
                f"cannot compare {self.left.type} with {self.right.type}")

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        result = t.compare(self.left.eval(row, ctx), self.right.eval(row, ctx))
        if result is None:
            return None
        if self.op == "=":
            return result == 0
        if self.op in ("!=", "<>"):
            return result != 0
        if self.op == "<":
            return result < 0
        if self.op == "<=":
            return result <= 0
        if self.op == ">":
            return result > 0
        if self.op == ">=":
            return result >= 0
        raise EvaluationError(f"unknown comparison operator {self.op}")

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return Comparison(self.op, self.left.remap(mapping), self.right.remap(mapping))


@dataclass(frozen=True)
class BooleanOp(Expression):
    """N-ary AND / OR with three-valued logic."""

    op: str  # "and" | "or"
    operands: tuple[Expression, ...]
    type: SqlType = SqlType.BOOL

    def children(self) -> Sequence[Expression]:
        return self.operands

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        combine = t.sql_and if self.op == "and" else t.sql_or
        result: Value = (self.op == "and")
        for operand in self.operands:
            result = combine(result, operand.eval(row, ctx))
            # Short-circuit on the dominating value.
            if self.op == "and" and result is False:
                return False
            if self.op == "or" and result is True:
                return True
        return result

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return BooleanOp(self.op, tuple(op.remap(mapping) for op in self.operands))


@dataclass(frozen=True)
class Not(Expression):
    operand: Expression
    type: SqlType = SqlType.BOOL

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        return t.sql_not(self.operand.eval(row, ctx))

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return Not(self.operand.remap(mapping))


@dataclass(frozen=True)
class IsNull(Expression):
    operand: Expression
    negated: bool = False
    type: SqlType = SqlType.BOOL

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        is_null = self.operand.eval(row, ctx) is None
        return not is_null if self.negated else is_null

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return IsNull(self.operand.remap(mapping), self.negated)


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (literal, ...)`` with SQL NULL semantics."""

    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False
    type: SqlType = SqlType.BOOL

    def children(self) -> Sequence[Expression]:
        return (self.operand, *self.items)

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        needle = self.operand.eval(row, ctx)
        if needle is None:
            return None
        saw_null = False
        for item in self.items:
            value = item.eval(row, ctx)
            if value is None:
                saw_null = True
                continue
            if t.compare(needle, value) == 0:
                return not self.negated
        if saw_null:
            return None
        return self.negated

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return InList(self.operand.remap(mapping),
                      tuple(item.remap(mapping) for item in self.items),
                      self.negated)


@dataclass(frozen=True)
class Like(Expression):
    """``expr [NOT] LIKE pattern`` with ``%`` and ``_`` wildcards."""

    operand: Expression
    pattern: Expression
    negated: bool = False
    type: SqlType = SqlType.BOOL

    def children(self) -> Sequence[Expression]:
        return (self.operand, self.pattern)

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        text = self.operand.eval(row, ctx)
        pattern = self.pattern.eval(row, ctx)
        if text is None or pattern is None:
            return None
        if not isinstance(text, str) or not isinstance(pattern, str):
            raise EvaluationError("LIKE requires text operands")
        regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
        matched = re.fullmatch(regex, text, flags=re.DOTALL) is not None
        return not matched if self.negated else matched

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return Like(self.operand.remap(mapping), self.pattern.remap(mapping), self.negated)


@dataclass(frozen=True)
class Case(Expression):
    """Searched CASE: ``CASE WHEN cond THEN value ... [ELSE value] END``."""

    whens: tuple[tuple[Expression, Expression], ...]
    otherwise: Expression
    type: SqlType = field(default=SqlType.NULL)

    def __post_init__(self):
        result = self.otherwise.type
        for __, value in self.whens:
            result = t.unify_types(result, value.type)
        object.__setattr__(self, "type", result)

    def children(self) -> Sequence[Expression]:
        flattened: list[Expression] = []
        for condition, value in self.whens:
            flattened.extend((condition, value))
        flattened.append(self.otherwise)
        return flattened

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        for condition, value in self.whens:
            if t.is_true(condition.eval(row, ctx)):
                return value.eval(row, ctx)
        return self.otherwise.eval(row, ctx)

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return Case(
            tuple((cond.remap(mapping), val.remap(mapping)) for cond, val in self.whens),
            self.otherwise.remap(mapping),
        )


@dataclass(frozen=True)
class Cast(Expression):
    operand: Expression
    target: SqlType
    type: SqlType = field(default=SqlType.NULL)

    def __post_init__(self):
        object.__setattr__(self, "type", self.target)

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        return t.cast_value(self.operand.eval(row, ctx), self.target)

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return Cast(self.operand.remap(mapping), self.target)


@dataclass(frozen=True)
class VariantPath(Expression):
    """Path access into a VARIANT value: ``payload:train_id`` or
    ``payload:a.b`` (section 3's Listing 1 uses this throughout)."""

    operand: Expression
    path: tuple[str, ...]
    type: SqlType = SqlType.VARIANT

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        value = self.operand.eval(row, ctx)
        for key in self.path:
            if value is None:
                return None
            if isinstance(value, dict):
                value = value.get(key)
            elif isinstance(value, list):
                try:
                    value = value[int(key)]
                except (ValueError, IndexError):
                    return None
            else:
                return None
        return value

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return VariantPath(self.operand.remap(mapping), self.path)


# ---------------------------------------------------------------------------
# Scalar functions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScalarFunction:
    """A registered scalar function.

    ``immutable`` mirrors the Snowpark IMMUTABLE annotation (section 3.4):
    only immutable functions are allowed in incrementally refreshed dynamic
    tables.
    """

    name: str
    impl: Callable[..., Value]
    return_type: Callable[[Sequence[SqlType]], SqlType]
    immutable: bool = True
    null_on_null: bool = True  # return NULL if any argument is NULL


def _fixed(sql_type: SqlType) -> Callable[[Sequence[SqlType]], SqlType]:
    return lambda args: sql_type


def _same_as_arg(index: int) -> Callable[[Sequence[SqlType]], SqlType]:
    return lambda args: args[index] if index < len(args) else SqlType.NULL


def _unify_args(args: Sequence[SqlType]) -> SqlType:
    result = SqlType.NULL
    for arg in args:
        result = t.unify_types(result, arg)
    return result


def _date_trunc(unit: str, timestamp: Timestamp) -> Timestamp:
    unit_ns = {
        "second": SECOND, "minute": MINUTE, "hour": HOUR, "day": DAY,
    }.get(unit.lower())
    if unit_ns is None:
        raise EvaluationError(f"unsupported date_trunc unit: {unit!r}")
    return (timestamp // unit_ns) * unit_ns


def _substr(text: str, start: int, length: int | None = None) -> str:
    begin = max(start - 1, 0)  # SQL is 1-based
    if length is None:
        return text[begin:]
    return text[begin:begin + max(length, 0)]


_BUILTIN_FUNCTIONS: dict[str, ScalarFunction] = {}


def _register(name: str, impl: Callable[..., Value],
              return_type: Callable[[Sequence[SqlType]], SqlType],
              immutable: bool = True, null_on_null: bool = True) -> None:
    _BUILTIN_FUNCTIONS[name] = ScalarFunction(name, impl, return_type,
                                              immutable, null_on_null)


_register("abs", abs, _same_as_arg(0))
_register("length", len, _fixed(SqlType.INT))
_register("upper", str.upper, _fixed(SqlType.TEXT))
_register("lower", str.lower, _fixed(SqlType.TEXT))
_register("trim", str.strip, _fixed(SqlType.TEXT))
_register("concat", lambda *parts: "".join(str(p) for p in parts), _fixed(SqlType.TEXT))
_register("substr", _substr, _fixed(SqlType.TEXT))
_register("round", lambda x, digits=0: round(x, digits), _same_as_arg(0))
_register("floor", lambda x: int(x // 1), _fixed(SqlType.INT))
_register("ceil", lambda x: int(-(-x // 1)), _fixed(SqlType.INT))
_register("mod", lambda a, b: a % b, _same_as_arg(0))
_register("sign", lambda x: (x > 0) - (x < 0), _fixed(SqlType.INT))
_register("greatest", max, _unify_args)
_register("least", min, _unify_args)
_register("date_trunc", _date_trunc, _fixed(SqlType.TIMESTAMP))
_register("to_number", lambda x: int(x), _fixed(SqlType.INT))
_register("to_char", lambda x: t.cast_value(x, SqlType.TEXT), _fixed(SqlType.TEXT))
# NULL-handling functions evaluate their own NULL semantics.
_register("coalesce", lambda *args: next((a for a in args if a is not None), None),
          _unify_args, null_on_null=False)
_register("nvl", lambda a, b: b if a is None else a, _unify_args, null_on_null=False)
_register("iff", lambda cond, then, other: then if cond is True else other,
          lambda args: t.unify_types(args[1], args[2]) if len(args) == 3 else SqlType.NULL,
          null_on_null=False)
_register("nullif", lambda a, b: None if (a is not None and b is not None
                                          and t.compare(a, b) == 0) else a,
          _same_as_arg(0), null_on_null=False)
_register("equal_null", lambda a, b: (a is None and b is None) or
          (a is not None and b is not None and t.compare(a, b) == 0),
          _fixed(SqlType.BOOL), null_on_null=False)


class FunctionRegistry:
    """Scalar-function lookup: builtins plus user-defined functions.

    UDFs model Snowpark UDFs (section 3.4). A UDF registered with
    ``immutable=False`` is *volatile*; plans containing it are rejected for
    incremental refresh by :mod:`repro.plan.properties`.
    """

    def __init__(self):
        self._functions: dict[str, ScalarFunction] = dict(_BUILTIN_FUNCTIONS)

    def register_udf(self, name: str, impl: Callable[..., Value],
                     return_type: SqlType = SqlType.VARIANT,
                     immutable: bool = True) -> None:
        lowered = name.lower()
        if lowered in _BUILTIN_FUNCTIONS:
            raise TypeError_(f"cannot shadow builtin function {name!r}")
        self._functions[lowered] = ScalarFunction(
            lowered, impl, _fixed(return_type), immutable, null_on_null=False)

    def lookup(self, name: str) -> ScalarFunction:
        function = self._functions.get(name.lower())
        if function is None:
            raise TypeError_(f"unknown function: {name}")
        return function


#: Registry used when none is supplied (builtins only).
DEFAULT_REGISTRY = FunctionRegistry()


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A bound scalar function application."""

    function: ScalarFunction
    args: tuple[Expression, ...]
    type: SqlType = field(default=SqlType.NULL)

    def __post_init__(self):
        object.__setattr__(
            self, "type", self.function.return_type([a.type for a in self.args]))

    @property
    def is_deterministic(self) -> bool:
        return self.function.immutable and all(a.is_deterministic for a in self.args)

    def children(self) -> Sequence[Expression]:
        return self.args

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        values = [arg.eval(row, ctx) for arg in self.args]
        if self.function.null_on_null and any(v is None for v in values):
            return None
        try:
            return self.function.impl(*values)
        except EvaluationError:
            raise
        except Exception as exc:
            raise EvaluationError(
                f"error in function {self.function.name}: {exc}") from exc

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return FunctionCall(self.function, tuple(a.remap(mapping) for a in self.args))


@dataclass(frozen=True)
class ContextFunction(Expression):
    """``CURRENT_TIMESTAMP`` / ``CURRENT_ROLE``.

    Deterministic *given the evaluation context*: a refresh pins the
    context to its data timestamp, so re-running the same refresh yields
    identical results (how the paper suggests handling "predictable"
    nondeterminism).
    """

    name: str  # "current_timestamp" | "current_role"
    type: SqlType = field(default=SqlType.NULL)

    def __post_init__(self):
        result = SqlType.TIMESTAMP if self.name == "current_timestamp" else SqlType.TEXT
        object.__setattr__(self, "type", result)

    @property
    def uses_context(self) -> bool:
        return True

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        if self.name == "current_timestamp":
            return ctx.timestamp
        if self.name == "current_role":
            return ctx.role
        raise EvaluationError(f"unknown context function {self.name}")

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return self


def conjuncts(predicate: Expression) -> list[Expression]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if isinstance(predicate, BooleanOp) and predicate.op == "and":
        parts: list[Expression] = []
        for operand in predicate.operands:
            parts.extend(conjuncts(operand))
        return parts
    return [predicate]


def conjoin(parts: Sequence[Expression]) -> Expression:
    """Combine conjuncts back into a single predicate."""
    if not parts:
        return Literal(True, SqlType.BOOL)
    if len(parts) == 1:
        return parts[0]
    return BooleanOp("and", tuple(parts))
