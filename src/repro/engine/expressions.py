"""Bound scalar expressions.

The SQL frontend produces *AST* expressions (:mod:`repro.sql.nodes`); the
plan builder binds names against schemas and produces the *bound*
expressions defined here. Bound expressions reference columns by position
(:class:`ColumnRef` holds an index), so evaluation over a row is a direct
tuple lookup with no name resolution on the hot path.

Every expression knows:

* ``type`` — its static :class:`~repro.engine.types.SqlType`;
* ``eval(row, ctx)`` — its value for a row under an
  :class:`EvalContext` (which carries the query's data timestamp and role,
  for context functions per section 3.4 of the paper);
* ``is_deterministic`` — whether repeated evaluation yields identical
  results given the same row *and context*. Context functions are
  deterministic given the context; volatile UDFs are not, and make a query
  non-incrementalizable (section 3.4: truly nondeterministic operations
  "are usually expected to be run only when a row is inserted"; DTs "do not
  yet support incremental refreshes in this case");
* ``column_indices()`` — the set of input positions it reads (used by the
  optimizer for pushdown/pruning);
* ``remap(mapping)`` — a copy with column indices translated (used when
  expressions move across operators).
"""

from __future__ import annotations

import operator as _operator
import re
from contextlib import contextmanager
from dataclasses import dataclass, field
from operator import itemgetter
from typing import Callable, Sequence

from repro.engine import types as t
from repro.engine.types import SqlType, Value
from repro.errors import EvaluationError, TypeError_
from repro.util.timeutil import DAY, HOUR, MINUTE, SECOND, Timestamp


@dataclass(frozen=True)
class EvalContext:
    """Ambient state for expression evaluation.

    ``timestamp`` is the query's data timestamp: for a dynamic-table
    refresh, the refresh's data timestamp, so that ``CURRENT_TIMESTAMP`` is
    stable across retries of the same refresh (the paper handles context
    functions "on a case-by-case basis"; pinning them to the data timestamp
    is the choice that keeps delayed view semantics exact).

    ``params`` carries the bind-parameter values of the executing prepared
    statement, indexed by :class:`BoundParameter` slot. Like the timestamp,
    they are pinned for the duration of one execution, so a cached plan can
    be re-executed under a fresh context with new binds.
    """

    timestamp: Timestamp = 0
    role: str = "sysadmin"
    params: tuple = ()


DEFAULT_CONTEXT = EvalContext()


class Expression:
    """Base class of bound expressions. Subclasses are frozen dataclasses."""

    type: SqlType

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        raise NotImplementedError

    def compile(self, ctx: EvalContext = DEFAULT_CONTEXT) -> "RowEvaluator":
        """A closure evaluating this expression over a row.

        The compiled form is semantically identical to :meth:`eval` under
        the same (pinned) context — same values, same NULL handling, same
        runtime errors — but avoids the per-row recursive method dispatch.
        See :func:`compile_expression`.
        """
        return compile_expression(self, ctx)

    @property
    def is_deterministic(self) -> bool:
        return all(child.is_deterministic for child in self.children())

    @property
    def uses_context(self) -> bool:
        """Whether the expression reads the evaluation context (context
        functions)."""
        return any(child.uses_context for child in self.children())

    def children(self) -> Sequence["Expression"]:
        return ()

    def column_indices(self) -> set[int]:
        # Cached per node: expression trees are immutable and live inside
        # cached plans, but the compilers re-analyze them on every
        # execution — without the cache, tree walks dominate the cost of
        # compiling evaluators for small queries. (Frozen dataclasses
        # still carry a __dict__; object.__setattr__ bypasses the
        # frozen guard.)
        cached = self.__dict__.get("_column_indices")
        if cached is None:
            indices: set[int] = set()
            for child in self.children():
                indices |= child.column_indices()
            cached = frozenset(indices)
            object.__setattr__(self, "_column_indices", cached)
        return cached

    def remap(self, mapping: dict[int, int]) -> "Expression":
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Value
    type: SqlType = field(default=SqlType.NULL)

    def __post_init__(self):
        if self.type == SqlType.NULL and self.value is not None:
            object.__setattr__(self, "type", t.type_of_value(self.value))

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        return self.value

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return self


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A positional reference into the input row."""

    index: int
    type: SqlType
    name: str = ""

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        return row[self.index]

    def column_indices(self) -> set[int]:
        return {self.index}

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return ColumnRef(mapping[self.index], self.type, self.name)


_ARITH_RESULT = {SqlType.INT: SqlType.INT, SqlType.FLOAT: SqlType.FLOAT}


@dataclass(frozen=True)
class Arithmetic(Expression):
    """``+ - * / %`` over numerics (and ``+``/``-`` over timestamps)."""

    op: str
    left: Expression
    right: Expression
    type: SqlType = field(default=SqlType.NULL)

    def __post_init__(self):
        left_type, right_type = self.left.type, self.right.type
        for operand in (left_type, right_type):
            if operand not in (SqlType.INT, SqlType.FLOAT, SqlType.TIMESTAMP,
                               SqlType.NULL, SqlType.VARIANT):
                raise TypeError_(f"operator {self.op} not defined for {operand}")
        if self.op == "/":
            result = SqlType.FLOAT
        elif SqlType.TIMESTAMP in (left_type, right_type):
            # timestamp - timestamp -> INT duration; timestamp +- int -> timestamp
            result = SqlType.INT if self.op == "-" and left_type == right_type else SqlType.TIMESTAMP
        elif SqlType.FLOAT in (left_type, right_type):
            result = SqlType.FLOAT
        else:
            result = SqlType.INT
        object.__setattr__(self, "type", result)

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        left = self.left.eval(row, ctx)
        right = self.right.eval(row, ctx)
        if left is None or right is None:
            return None
        try:
            if self.op == "+":
                return left + right
            if self.op == "-":
                return left - right
            if self.op == "*":
                return left * right
            if self.op == "/":
                if right == 0:
                    raise EvaluationError("division by zero")
                return left / right
            if self.op == "%":
                if right == 0:
                    raise EvaluationError("division by zero")
                return left % right
        except TypeError as exc:
            raise EvaluationError(f"bad operands for {self.op}: {left!r}, {right!r}") from exc
        raise EvaluationError(f"unknown arithmetic operator {self.op}")

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return Arithmetic(self.op, self.left.remap(mapping), self.right.remap(mapping))


@dataclass(frozen=True)
class Comparison(Expression):
    """``= != < <= > >=`` with SQL NULL semantics."""

    op: str
    left: Expression
    right: Expression
    type: SqlType = SqlType.BOOL

    def __post_init__(self):
        if not t.is_comparable(self.left.type, self.right.type):
            raise TypeError_(
                f"cannot compare {self.left.type} with {self.right.type}")

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        result = t.compare(self.left.eval(row, ctx), self.right.eval(row, ctx))
        if result is None:
            return None
        if self.op == "=":
            return result == 0
        if self.op in ("!=", "<>"):
            return result != 0
        if self.op == "<":
            return result < 0
        if self.op == "<=":
            return result <= 0
        if self.op == ">":
            return result > 0
        if self.op == ">=":
            return result >= 0
        raise EvaluationError(f"unknown comparison operator {self.op}")

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return Comparison(self.op, self.left.remap(mapping), self.right.remap(mapping))


@dataclass(frozen=True)
class BooleanOp(Expression):
    """N-ary AND / OR with three-valued logic."""

    op: str  # "and" | "or"
    operands: tuple[Expression, ...]
    type: SqlType = SqlType.BOOL

    def children(self) -> Sequence[Expression]:
        return self.operands

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        combine = t.sql_and if self.op == "and" else t.sql_or
        result: Value = (self.op == "and")
        for operand in self.operands:
            result = combine(result, operand.eval(row, ctx))
            # Short-circuit on the dominating value.
            if self.op == "and" and result is False:
                return False
            if self.op == "or" and result is True:
                return True
        return result

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return BooleanOp(self.op, tuple(op.remap(mapping) for op in self.operands))


@dataclass(frozen=True)
class Not(Expression):
    operand: Expression
    type: SqlType = SqlType.BOOL

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        return t.sql_not(self.operand.eval(row, ctx))

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return Not(self.operand.remap(mapping))


@dataclass(frozen=True)
class IsNull(Expression):
    operand: Expression
    negated: bool = False
    type: SqlType = SqlType.BOOL

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        is_null = self.operand.eval(row, ctx) is None
        return not is_null if self.negated else is_null

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return IsNull(self.operand.remap(mapping), self.negated)


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (literal, ...)`` with SQL NULL semantics."""

    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False
    type: SqlType = SqlType.BOOL

    def children(self) -> Sequence[Expression]:
        return (self.operand, *self.items)

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        needle = self.operand.eval(row, ctx)
        if needle is None:
            return None
        saw_null = False
        for item in self.items:
            value = item.eval(row, ctx)
            if value is None:
                saw_null = True
                continue
            if t.compare(needle, value) == 0:
                return not self.negated
        if saw_null:
            return None
        return self.negated

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return InList(self.operand.remap(mapping),
                      tuple(item.remap(mapping) for item in self.items),
                      self.negated)


def _like_regex(pattern: str) -> str:
    """Translate a SQL LIKE pattern to a regex (``%`` → ``.*``, ``_`` →
    ``.``). Single source of truth for interpreted and compiled LIKE."""
    return re.escape(pattern).replace("%", ".*").replace("_", ".")


@dataclass(frozen=True)
class Like(Expression):
    """``expr [NOT] LIKE pattern`` with ``%`` and ``_`` wildcards."""

    operand: Expression
    pattern: Expression
    negated: bool = False
    type: SqlType = SqlType.BOOL

    def children(self) -> Sequence[Expression]:
        return (self.operand, self.pattern)

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        text = self.operand.eval(row, ctx)
        pattern = self.pattern.eval(row, ctx)
        if text is None or pattern is None:
            return None
        if not isinstance(text, str) or not isinstance(pattern, str):
            raise EvaluationError("LIKE requires text operands")
        matched = re.fullmatch(_like_regex(pattern), text,
                               flags=re.DOTALL) is not None
        return not matched if self.negated else matched

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return Like(self.operand.remap(mapping), self.pattern.remap(mapping), self.negated)


@dataclass(frozen=True)
class Case(Expression):
    """Searched CASE: ``CASE WHEN cond THEN value ... [ELSE value] END``."""

    whens: tuple[tuple[Expression, Expression], ...]
    otherwise: Expression
    type: SqlType = field(default=SqlType.NULL)

    def __post_init__(self):
        result = self.otherwise.type
        for __, value in self.whens:
            result = t.unify_types(result, value.type)
        object.__setattr__(self, "type", result)

    def children(self) -> Sequence[Expression]:
        flattened: list[Expression] = []
        for condition, value in self.whens:
            flattened.extend((condition, value))
        flattened.append(self.otherwise)
        return flattened

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        for condition, value in self.whens:
            if t.is_true(condition.eval(row, ctx)):
                return value.eval(row, ctx)
        return self.otherwise.eval(row, ctx)

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return Case(
            tuple((cond.remap(mapping), val.remap(mapping)) for cond, val in self.whens),
            self.otherwise.remap(mapping),
        )


@dataclass(frozen=True)
class Cast(Expression):
    operand: Expression
    target: SqlType
    type: SqlType = field(default=SqlType.NULL)

    def __post_init__(self):
        object.__setattr__(self, "type", self.target)

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        return t.cast_value(self.operand.eval(row, ctx), self.target)

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return Cast(self.operand.remap(mapping), self.target)


@dataclass(frozen=True)
class VariantPath(Expression):
    """Path access into a VARIANT value: ``payload:train_id`` or
    ``payload:a.b`` (section 3's Listing 1 uses this throughout)."""

    operand: Expression
    path: tuple[str, ...]
    type: SqlType = SqlType.VARIANT

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        value = self.operand.eval(row, ctx)
        for key in self.path:
            if value is None:
                return None
            if isinstance(value, dict):
                value = value.get(key)
            elif isinstance(value, list):
                try:
                    value = value[int(key)]
                except (ValueError, IndexError):
                    return None
            else:
                return None
        return value

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return VariantPath(self.operand.remap(mapping), self.path)


# ---------------------------------------------------------------------------
# Scalar functions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScalarFunction:
    """A registered scalar function.

    ``immutable`` mirrors the Snowpark IMMUTABLE annotation (section 3.4):
    only immutable functions are allowed in incrementally refreshed dynamic
    tables.
    """

    name: str
    impl: Callable[..., Value]
    return_type: Callable[[Sequence[SqlType]], SqlType]
    immutable: bool = True
    null_on_null: bool = True  # return NULL if any argument is NULL


def _fixed(sql_type: SqlType) -> Callable[[Sequence[SqlType]], SqlType]:
    return lambda args: sql_type


def _same_as_arg(index: int) -> Callable[[Sequence[SqlType]], SqlType]:
    return lambda args: args[index] if index < len(args) else SqlType.NULL


def _unify_args(args: Sequence[SqlType]) -> SqlType:
    result = SqlType.NULL
    for arg in args:
        result = t.unify_types(result, arg)
    return result


def _date_trunc(unit: str, timestamp: Timestamp) -> Timestamp:
    unit_ns = {
        "second": SECOND, "minute": MINUTE, "hour": HOUR, "day": DAY,
    }.get(unit.lower())
    if unit_ns is None:
        raise EvaluationError(f"unsupported date_trunc unit: {unit!r}")
    return (timestamp // unit_ns) * unit_ns


def _substr(text: str, start: int, length: int | None = None) -> str:
    begin = max(start - 1, 0)  # SQL is 1-based
    if length is None:
        return text[begin:]
    return text[begin:begin + max(length, 0)]


_BUILTIN_FUNCTIONS: dict[str, ScalarFunction] = {}


def _register(name: str, impl: Callable[..., Value],
              return_type: Callable[[Sequence[SqlType]], SqlType],
              immutable: bool = True, null_on_null: bool = True) -> None:
    _BUILTIN_FUNCTIONS[name] = ScalarFunction(name, impl, return_type,
                                              immutable, null_on_null)


_register("abs", abs, _same_as_arg(0))
_register("length", len, _fixed(SqlType.INT))
_register("upper", str.upper, _fixed(SqlType.TEXT))
_register("lower", str.lower, _fixed(SqlType.TEXT))
_register("trim", str.strip, _fixed(SqlType.TEXT))
_register("concat", lambda *parts: "".join(str(p) for p in parts), _fixed(SqlType.TEXT))
_register("substr", _substr, _fixed(SqlType.TEXT))
_register("round", lambda x, digits=0: round(x, digits), _same_as_arg(0))
_register("floor", lambda x: int(x // 1), _fixed(SqlType.INT))
_register("ceil", lambda x: int(-(-x // 1)), _fixed(SqlType.INT))
_register("mod", lambda a, b: a % b, _same_as_arg(0))
_register("sign", lambda x: (x > 0) - (x < 0), _fixed(SqlType.INT))
_register("greatest", max, _unify_args)
_register("least", min, _unify_args)
_register("date_trunc", _date_trunc, _fixed(SqlType.TIMESTAMP))
_register("to_number", lambda x: int(x), _fixed(SqlType.INT))
_register("to_char", lambda x: t.cast_value(x, SqlType.TEXT), _fixed(SqlType.TEXT))
# NULL-handling functions evaluate their own NULL semantics.
_register("coalesce", lambda *args: next((a for a in args if a is not None), None),
          _unify_args, null_on_null=False)
_register("nvl", lambda a, b: b if a is None else a, _unify_args, null_on_null=False)
_register("iff", lambda cond, then, other: then if cond is True else other,
          lambda args: t.unify_types(args[1], args[2]) if len(args) == 3 else SqlType.NULL,
          null_on_null=False)
_register("nullif", lambda a, b: None if (a is not None and b is not None
                                          and t.compare(a, b) == 0) else a,
          _same_as_arg(0), null_on_null=False)
_register("equal_null", lambda a, b: (a is None and b is None) or
          (a is not None and b is not None and t.compare(a, b) == 0),
          _fixed(SqlType.BOOL), null_on_null=False)


class FunctionRegistry:
    """Scalar-function lookup: builtins plus user-defined functions.

    UDFs model Snowpark UDFs (section 3.4). A UDF registered with
    ``immutable=False`` is *volatile*; plans containing it are rejected for
    incremental refresh by :mod:`repro.plan.properties`.
    """

    def __init__(self):
        self._functions: dict[str, ScalarFunction] = dict(_BUILTIN_FUNCTIONS)
        self._version = 0

    @property
    def version(self) -> int:
        """Bumped on every UDF (re-)registration. Plans bind ScalarFunction
        objects at build time, so plan caches must key on this."""
        return self._version

    def register_udf(self, name: str, impl: Callable[..., Value],
                     return_type: SqlType = SqlType.VARIANT,
                     immutable: bool = True) -> None:
        lowered = name.lower()
        if lowered in _BUILTIN_FUNCTIONS:
            raise TypeError_(f"cannot shadow builtin function {name!r}")
        self._functions[lowered] = ScalarFunction(
            lowered, impl, _fixed(return_type), immutable, null_on_null=False)
        self._version += 1

    def lookup(self, name: str) -> ScalarFunction:
        function = self._functions.get(name.lower())
        if function is None:
            raise TypeError_(f"unknown function: {name}")
        return function


#: Registry used when none is supplied (builtins only).
DEFAULT_REGISTRY = FunctionRegistry()


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A bound scalar function application."""

    function: ScalarFunction
    args: tuple[Expression, ...]
    type: SqlType = field(default=SqlType.NULL)

    def __post_init__(self):
        object.__setattr__(
            self, "type", self.function.return_type([a.type for a in self.args]))

    @property
    def is_deterministic(self) -> bool:
        return self.function.immutable and all(a.is_deterministic for a in self.args)

    def children(self) -> Sequence[Expression]:
        return self.args

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        values = [arg.eval(row, ctx) for arg in self.args]
        if self.function.null_on_null and any(v is None for v in values):
            return None
        try:
            return self.function.impl(*values)
        except EvaluationError:
            raise
        except Exception as exc:
            raise EvaluationError(
                f"error in function {self.function.name}: {exc}") from exc

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return FunctionCall(self.function, tuple(a.remap(mapping) for a in self.args))


@dataclass(frozen=True)
class ContextFunction(Expression):
    """``CURRENT_TIMESTAMP`` / ``CURRENT_ROLE``.

    Deterministic *given the evaluation context*: a refresh pins the
    context to its data timestamp, so re-running the same refresh yields
    identical results (how the paper suggests handling "predictable"
    nondeterminism).
    """

    name: str  # "current_timestamp" | "current_role"
    type: SqlType = field(default=SqlType.NULL)

    def __post_init__(self):
        result = SqlType.TIMESTAMP if self.name == "current_timestamp" else SqlType.TEXT
        object.__setattr__(self, "type", result)

    @property
    def uses_context(self) -> bool:
        return True

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        if self.name == "current_timestamp":
            return ctx.timestamp
        if self.name == "current_role":
            return ctx.role
        raise EvaluationError(f"unknown context function {self.name}")

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return self


@dataclass(frozen=True)
class BoundParameter(Expression):
    """A bind-parameter slot, filled at execution time from
    :attr:`EvalContext.params`.

    The parser types a parameter as NULL ("unknown"), which unifies with
    any operand type; the binder then *re-types* it from its comparison or
    arithmetic context where one exists (``a = ?`` with ``a INT`` yields an
    INT-typed slot), letting the prepared-statement layer reject
    wrongly-typed bind values up front instead of failing mid-execution.
    Slots with no informative context stay NULL-typed and behave exactly
    like a literal of the bound value. Like a context function, the
    expression is deterministic *given the context* but reads it, so the
    optimizer never folds it into the (cached, bind-independent) plan.
    """

    slot: int
    label: str = "?"
    type: SqlType = SqlType.NULL

    @property
    def uses_context(self) -> bool:
        return True

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        params = ctx.params
        if self.slot >= len(params):
            raise EvaluationError(
                f"no value bound for parameter {self.label}")
        return params[self.slot]

    def remap(self, mapping: dict[int, int]) -> "Expression":
        return self


def conjuncts(predicate: Expression) -> list[Expression]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if isinstance(predicate, BooleanOp) and predicate.op == "and":
        parts: list[Expression] = []
        for operand in predicate.operands:
            parts.extend(conjuncts(operand))
        return parts
    return [predicate]


def conjoin(parts: Sequence[Expression]) -> Expression:
    """Combine conjuncts back into a single predicate."""
    if not parts:
        return Literal(True, SqlType.BOOL)
    if len(parts) == 1:
        return parts[0]
    return BooleanOp("and", tuple(parts))


# ---------------------------------------------------------------------------
# The closure compiler
# ---------------------------------------------------------------------------
#
# ``eval`` is a recursive interpreter: every node pays a bound-method call,
# an attribute load per child, and a string compare for operator dispatch —
# *per row*. The compiler pays those costs once, at compile time, and
# returns a closure ``row -> value`` built from the closures of the node's
# children. Operator dispatch happens while compiling (one closure per op),
# column loads become C-level ``itemgetter`` calls, and any sub-expression
# that reads no columns and is deterministic is folded to a constant (the
# context is pinned, so context functions fold too).
#
# Invariant (load-bearing for the repro): for every row, the compiled
# closure returns exactly what ``eval`` returns — same values, same NULL
# semantics, same error types. ``force_interpreted`` swaps every compiled
# closure for an ``eval`` shim so a property test can assert this.

RowEvaluator = Callable[[tuple], Value]

_FORCE_INTERPRET = False


@contextmanager
def force_interpreted():
    """Make :func:`compile_expression` return interpreter shims, so callers
    can diff the batched path against the reference interpreter."""
    global _FORCE_INTERPRET
    saved = _FORCE_INTERPRET
    _FORCE_INTERPRET = True
    try:
        yield
    finally:
        _FORCE_INTERPRET = saved


_COMPILERS: dict[type, Callable[..., RowEvaluator]] = {}


def _compiles(cls: type):
    def register(fn):
        _COMPILERS[cls] = fn
        return fn
    return register


def compile_expression(expr: Expression,
                       ctx: EvalContext = DEFAULT_CONTEXT) -> RowEvaluator:
    """Compile ``expr`` into a ``row -> value`` closure under ``ctx``."""
    if _FORCE_INTERPRET:
        return lambda row: expr.eval(row, ctx)
    if not expr.column_indices() and expr.is_deterministic:
        # Constant folding. If folding raises, the expression is an
        # always-erroring constant (e.g. ``1/0``): compile it normally so
        # the error still surfaces at run time, per-row, like eval does.
        try:
            value = expr.eval((), ctx)
        except EvaluationError:
            pass
        else:
            return lambda row: value
    compiler = _COMPILERS.get(type(expr))
    if compiler is None:
        return lambda row: expr.eval(row, ctx)
    return compiler(expr, ctx)


def compile_row(exprs: Sequence[Expression],
                ctx: EvalContext = DEFAULT_CONTEXT) -> Callable[[tuple], tuple]:
    """Compile a projection list into a ``row -> tuple`` closure."""
    fns = [compile_expression(expr, ctx) for expr in exprs]
    if len(fns) == 1:
        f0, = fns
        return lambda row: (f0(row),)
    if len(fns) == 2:
        f0, f1 = fns
        return lambda row: (f0(row), f1(row))
    if len(fns) == 3:
        f0, f1, f2 = fns
        return lambda row: (f0(row), f1(row), f2(row))
    if len(fns) == 4:
        f0, f1, f2, f3 = fns
        return lambda row: (f0(row), f1(row), f2(row), f3(row))
    return lambda row: tuple(fn(row) for fn in fns)


def compile_group_key(exprs: Sequence[Expression],
                      ctx: EvalContext = DEFAULT_CONTEXT,
                      ) -> Callable[[tuple], tuple]:
    """Compile grouping expressions into a ``row -> group_key`` closure
    (NULL-safe hashable key, per :func:`repro.engine.types.group_key`)."""
    values = compile_row(exprs, ctx)
    key = t.group_key
    return lambda row: key(values(row))


@_compiles(Literal)
def _compile_literal(expr: Literal, ctx: EvalContext) -> RowEvaluator:
    value = expr.value
    return lambda row: value


@_compiles(ColumnRef)
def _compile_column(expr: ColumnRef, ctx: EvalContext) -> RowEvaluator:
    return itemgetter(expr.index)


def _constant_of(expr: Expression, ctx: EvalContext):
    """``(True, value)`` when ``expr`` folds to a constant, else
    ``(False, None)``. Used to specialize binary operators whose one side
    is constant — the overwhelmingly common shape of filter predicates."""
    if not expr.column_indices() and expr.is_deterministic:
        try:
            return True, expr.eval((), ctx)
        except EvaluationError:
            pass
    return False, None


_ARITH_APPLY = {"+": _operator.add, "-": _operator.sub, "*": _operator.mul}


@_compiles(Arithmetic)
def _compile_arithmetic(expr: Arithmetic, ctx: EvalContext) -> RowEvaluator:
    left = compile_expression(expr.left, ctx)
    op = expr.op

    apply = _ARITH_APPLY.get(op)
    if apply is not None:
        is_const, const = _constant_of(expr.right, ctx)
        if is_const and const is not None:
            def run(row):
                a = left(row)
                if a is None:
                    return None
                try:
                    return apply(a, const)
                except TypeError as exc:
                    raise EvaluationError(
                        f"bad operands for {op}: {a!r}, {const!r}") from exc
            return run

        right = compile_expression(expr.right, ctx)

        def run(row):
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            try:
                return apply(a, b)
            except TypeError as exc:
                raise EvaluationError(
                    f"bad operands for {op}: {a!r}, {b!r}") from exc
        return run

    if op in ("/", "%"):
        right = compile_expression(expr.right, ctx)

        def run(row):
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            if b == 0:
                raise EvaluationError("division by zero")
            try:
                return a / b if op == "/" else a % b
            except TypeError as exc:
                raise EvaluationError(
                    f"bad operands for {op}: {a!r}, {b!r}") from exc
        return run

    def run(row):  # unknown operator: defer to eval's error
        return expr.eval(row, ctx)
    return run


_COMPARISON_TESTS = {
    "=": lambda c: c == 0,
    "!=": lambda c: c != 0,
    "<>": lambda c: c != 0,
    "<": lambda c: c < 0,
    "<=": lambda c: c <= 0,
    ">": lambda c: c > 0,
    ">=": lambda c: c >= 0,
}


_DIRECT_COMPARE = {"=": _operator.eq, "!=": _operator.ne, "<>": _operator.ne,
                   "<": _operator.lt, "<=": _operator.le,
                   ">": _operator.gt, ">=": _operator.ge}


@_compiles(Comparison)
def _compile_comparison(expr: Comparison, ctx: EvalContext) -> RowEvaluator:
    left = compile_expression(expr.left, ctx)
    test = _COMPARISON_TESTS.get(expr.op)
    if test is None:
        return lambda row: expr.eval(row, ctx)
    compare = t.compare

    # Constant right operand of a uniform scalar kind: compare directly,
    # falling back to t.compare (which may raise, matching eval) whenever
    # the row value is not of the same kind.
    is_const, const = _constant_of(expr.right, ctx)
    if is_const and const is not None:
        direct = _DIRECT_COMPARE[expr.op]
        if (isinstance(const, (int, float)) and not isinstance(const, bool)
                and const == const):  # NaN keeps t.compare's odd semantics
            def run(row):
                a = left(row)
                if a is None:
                    return None
                if type(a) is int or (type(a) is float and a == a):
                    return direct(a, const)
                result = compare(a, const)
                return None if result is None else test(result)
            return run
        if isinstance(const, str):
            def run(row):
                a = left(row)
                if a is None:
                    return None
                if type(a) is str:
                    return direct(a, const)
                result = compare(a, const)
                return None if result is None else test(result)
            return run

    right = compile_expression(expr.right, ctx)

    def run(row):
        result = compare(left(row), right(row))
        if result is None:
            return None
        return test(result)
    return run


@_compiles(BooleanOp)
def _compile_boolean(expr: BooleanOp, ctx: EvalContext) -> RowEvaluator:
    fns = [compile_expression(operand, ctx) for operand in expr.operands]
    if expr.op == "and":
        def run(row):
            result: Value = True
            for fn in fns:
                value = fn(row)
                if value is False:
                    return False
                if value is None:
                    result = None
            return result
        return run

    def run(row):
        result: Value = False
        for fn in fns:
            value = fn(row)
            if value is True:
                return True
            if value is None:
                result = None
        return result
    return run


@_compiles(Not)
def _compile_not(expr: Not, ctx: EvalContext) -> RowEvaluator:
    operand = compile_expression(expr.operand, ctx)

    def run(row):
        value = operand(row)
        if value is None:
            return None
        return not value
    return run


@_compiles(IsNull)
def _compile_is_null(expr: IsNull, ctx: EvalContext) -> RowEvaluator:
    operand = compile_expression(expr.operand, ctx)
    if expr.negated:
        return lambda row: operand(row) is not None
    return lambda row: operand(row) is None


@_compiles(InList)
def _compile_in_list(expr: InList, ctx: EvalContext) -> RowEvaluator:
    operand = compile_expression(expr.operand, ctx)
    items = [compile_expression(item, ctx) for item in expr.items]
    negated = expr.negated
    compare = t.compare

    def run(row):
        needle = operand(row)
        if needle is None:
            return None
        saw_null = False
        for item in items:
            value = item(row)
            if value is None:
                saw_null = True
                continue
            if compare(needle, value) == 0:
                return not negated
        if saw_null:
            return None
        return negated
    return run


@_compiles(Like)
def _compile_like(expr: Like, ctx: EvalContext) -> RowEvaluator:
    operand = compile_expression(expr.operand, ctx)
    negated = expr.negated

    is_const, const = _constant_of(expr.pattern, ctx)
    if is_const and isinstance(const, str):
        # Constant pattern (the common case): translate and compile the
        # regex once instead of per row.
        matcher = re.compile(_like_regex(const), re.DOTALL).fullmatch

        def run(row):
            text = operand(row)
            if text is None:
                return None
            if not isinstance(text, str):
                raise EvaluationError("LIKE requires text operands")
            matched = matcher(text) is not None
            return not matched if negated else matched
        return run

    pattern_fn = compile_expression(expr.pattern, ctx)

    def run(row):
        text = operand(row)
        pattern = pattern_fn(row)
        if text is None or pattern is None:
            return None
        if not isinstance(text, str) or not isinstance(pattern, str):
            raise EvaluationError("LIKE requires text operands")
        matched = re.fullmatch(_like_regex(pattern), text,
                               flags=re.DOTALL) is not None
        return not matched if negated else matched
    return run


@_compiles(Case)
def _compile_case(expr: Case, ctx: EvalContext) -> RowEvaluator:
    whens = [(compile_expression(cond, ctx), compile_expression(value, ctx))
             for cond, value in expr.whens]
    otherwise = compile_expression(expr.otherwise, ctx)

    def run(row):
        for cond, value in whens:
            if cond(row) is True:
                return value(row)
        return otherwise(row)
    return run


@_compiles(Cast)
def _compile_cast(expr: Cast, ctx: EvalContext) -> RowEvaluator:
    operand = compile_expression(expr.operand, ctx)
    target = expr.target
    cast = t.cast_value
    return lambda row: cast(operand(row), target)


@_compiles(VariantPath)
def _compile_variant_path(expr: VariantPath, ctx: EvalContext) -> RowEvaluator:
    operand = compile_expression(expr.operand, ctx)
    path = expr.path

    def run(row):
        value = operand(row)
        for key in path:
            if value is None:
                return None
            if isinstance(value, dict):
                value = value.get(key)
            elif isinstance(value, list):
                try:
                    value = value[int(key)]
                except (ValueError, IndexError):
                    return None
            else:
                return None
        return value
    return run


@_compiles(ContextFunction)
def _compile_context_function(expr: ContextFunction,
                              ctx: EvalContext) -> RowEvaluator:
    value = expr.eval((), ctx)  # pinned context: a constant per compilation
    return lambda row: value


@_compiles(BoundParameter)
def _compile_bound_parameter(expr: BoundParameter,
                             ctx: EvalContext) -> RowEvaluator:
    # The context (and with it the binds) is pinned per execution, so the
    # parameter compiles to a constant load — the cached plan itself stays
    # bind-independent.
    value = expr.eval((), ctx)
    return lambda row: value


@_compiles(FunctionCall)
def _compile_function_call(expr: FunctionCall,
                           ctx: EvalContext) -> RowEvaluator:
    args = [compile_expression(arg, ctx) for arg in expr.args]
    impl = expr.function.impl
    name = expr.function.name
    null_on_null = expr.function.null_on_null

    def run(row):
        values = [arg(row) for arg in args]
        if null_on_null and None in values:
            return None
        try:
            return impl(*values)
        except EvaluationError:
            raise
        except Exception as exc:
            raise EvaluationError(f"error in function {name}: {exc}") from exc
    return run


# ---------------------------------------------------------------------------
# The vectorized (columnar) compiler
# ---------------------------------------------------------------------------
#
# The closure compiler above removes interpretation overhead but still pays
# one Python call per expression node *per row*. The columnar compiler pays
# it once per expression node *per column batch*: a compiled
# ``ColumnEvaluator`` takes the input's per-column value arrays (plus the
# row count) and returns one output array, evaluating each node with a
# single tight loop over its children's arrays. Column loads vanish
# entirely — a ``ColumnRef`` just returns the input array.
#
# Invariant (same as the row compiler's): for every input, the vectorized
# evaluator returns exactly what ``eval`` would return row by row — same
# values, same NULL semantics, same error types. Two node classes are
# *lazy* per row and therefore unsafe to evaluate over whole arrays:
# ``CASE`` only evaluates the branch its condition selects, and
# ``AND``/``OR`` stop at the first dominating value — the classic guard
# idiom ``b != 0 AND 1/b > 0`` relies on the skipped rows never being
# evaluated. CASE (and IN-lists, which short-circuit their item list)
# always falls back to the row closure applied per row; AND/OR vectorize
# only when every operand is statically *total* (provably cannot raise on
# any row — see ``_never_raises``), and fall back otherwise.
#
# ``force_interpreted`` applies here too: under it, every columnar
# evaluator degrades to the reference interpreter applied per row, which
# is what lets the three-way equivalence property pin interpreted,
# compiled, and vectorized execution to byte-identical output.

#: A compiled columnar evaluator: ``(columns, row_count) -> value array``.
#: ``columns`` are the input's per-column arrays (list or tuple each);
#: the result is a fresh array of ``row_count`` values (a ``ColumnRef``
#: may return the input array itself — callers must not mutate results).
ColumnEvaluator = Callable[[Sequence[Sequence], int], Sequence]


def _iter_rows(columns: Sequence[Sequence], count: int):
    """Row-tuple iterator over a column block (fallback/interpret paths)."""
    if columns:
        return zip(*columns)
    return iter([()] * count)


_COLUMNAR_COMPILERS: dict[type, Callable[..., ColumnEvaluator]] = {}


def _compiles_columnar(cls: type):
    def register(fn):
        _COLUMNAR_COMPILERS[cls] = fn
        return fn
    return register


def compile_expression_columnar(expr: Expression,
                                ctx: EvalContext = DEFAULT_CONTEXT,
                                ) -> ColumnEvaluator:
    """Compile ``expr`` into a ``(columns, n) -> array`` evaluator."""
    if _FORCE_INTERPRET:
        return lambda columns, count: [expr.eval(row, ctx)
                                       for row in _iter_rows(columns, count)]
    if not expr.column_indices() and expr.is_deterministic:
        # Constant folding, exactly as in the row compiler: an erroring
        # constant compiles normally so the error surfaces at run time.
        try:
            value = expr.eval((), ctx)
        except EvaluationError:
            pass
        else:
            return lambda columns, count: [value] * count
    compiler = _COLUMNAR_COMPILERS.get(type(expr))
    if compiler is None:
        # No vectorized form (CASE, IN, non-total AND/OR, unknown nodes):
        # apply the row closure per row of the block.
        fn = compile_expression(expr, ctx)
        return lambda columns, count: [fn(row)
                                       for row in _iter_rows(columns, count)]
    return compiler(expr, ctx)


def compile_row_columnar(exprs: Sequence[Expression],
                         ctx: EvalContext = DEFAULT_CONTEXT,
                         ) -> Callable[[Sequence[Sequence], int], list]:
    """Compile a projection list into a ``(columns, n) -> output columns``
    closure (the columnar analogue of :func:`compile_row`)."""
    fns = [compile_expression_columnar(expr, ctx) for expr in exprs]
    return lambda columns, count: [fn(columns, count) for fn in fns]


def compile_group_key_columnar(exprs: Sequence[Expression],
                               ctx: EvalContext = DEFAULT_CONTEXT,
                               ) -> Callable[[Sequence[Sequence], int], list]:
    """Compile grouping expressions into a ``(columns, n) -> [group_key]``
    closure (the columnar analogue of :func:`compile_group_key`)."""
    fns = [compile_expression_columnar(expr, ctx) for expr in exprs]
    key = t.group_key

    def run(columns, count):
        if not fns:
            empty = key(())
            return [empty] * count
        arrays = [fn(columns, count) for fn in fns]
        if len(arrays) == 1:
            only, = arrays
            return [key((value,)) for value in only]
        return [key(values) for values in zip(*arrays)]
    return run


#: Types whose runtime values are guaranteed same-kind comparable (ints /
#: floats for the numeric group; exact-type match otherwise), so
#: ``t.compare`` cannot raise on them.
_NUMERIC_KINDS = (SqlType.INT, SqlType.FLOAT, SqlType.TIMESTAMP)


def _comparison_total(expr: Comparison) -> bool:
    left_type, right_type = expr.left.type, expr.right.type
    if isinstance(expr.left, Literal) and expr.left.value is None:
        return True
    if isinstance(expr.right, Literal) and expr.right.value is None:
        return True
    if left_type in _NUMERIC_KINDS and right_type in _NUMERIC_KINDS:
        return True
    return left_type == right_type and left_type in (SqlType.TEXT,
                                                     SqlType.BOOL)


def emits_tristate(expr: Expression) -> bool:
    """Whether every evaluation path of ``expr`` (interpreted, compiled,
    vectorized) yields exactly ``True`` / ``False`` / ``None`` — never a
    merely truthy value. Lets the filter kernel feed the predicate mask
    straight into C-level compression without normalizing it first."""
    return isinstance(expr, (Comparison, BooleanOp, Not, IsNull, Like,
                             InList))


def _never_raises(expr: Expression) -> bool:
    """Statically total: evaluation provably cannot raise on any row.

    Used to decide whether AND/OR may evaluate an operand over the whole
    array — which evaluates it on rows the row-at-a-time path would have
    short-circuited past. Deliberately conservative: anything not
    recognized is treated as possibly raising.
    """
    if isinstance(expr, (Literal, ColumnRef, BoundParameter,
                         ContextFunction)):
        return True
    if isinstance(expr, (IsNull, Not)):
        return _never_raises(expr.operand)
    if isinstance(expr, BooleanOp):
        return all(_never_raises(op) for op in expr.operands)
    if isinstance(expr, Comparison):
        return (_never_raises(expr.left) and _never_raises(expr.right)
                and _comparison_total(expr))
    return False


@_compiles_columnar(ColumnRef)
def _columnar_column(expr: ColumnRef, ctx: EvalContext) -> ColumnEvaluator:
    index = expr.index
    return lambda columns, count: columns[index]


@_compiles_columnar(Arithmetic)
def _columnar_arithmetic(expr: Arithmetic,
                         ctx: EvalContext) -> ColumnEvaluator:
    left = compile_expression_columnar(expr.left, ctx)
    op = expr.op

    apply = _ARITH_APPLY.get(op)
    if apply is not None:
        is_const, const = _constant_of(expr.right, ctx)
        if is_const and const is not None:
            def run(columns, count):
                values = left(columns, count)
                try:
                    return [None if a is None else apply(a, const)
                            for a in values]
                except TypeError:
                    # Re-raise as the row path would, at the first
                    # offending row.
                    for a in values:
                        if a is None:
                            continue
                        try:
                            apply(a, const)
                        except TypeError as exc:
                            raise EvaluationError(
                                f"bad operands for {op}: {a!r}, "
                                f"{const!r}") from exc
                    raise  # pragma: no cover - unreachable
            return run

        right = compile_expression_columnar(expr.right, ctx)

        def run(columns, count):
            left_values = left(columns, count)
            right_values = right(columns, count)
            try:
                return [None if a is None or b is None else apply(a, b)
                        for a, b in zip(left_values, right_values)]
            except TypeError:
                for a, b in zip(left_values, right_values):
                    if a is None or b is None:
                        continue
                    try:
                        apply(a, b)
                    except TypeError as exc:
                        raise EvaluationError(
                            f"bad operands for {op}: {a!r}, {b!r}") from exc
                raise  # pragma: no cover - unreachable
        return run

    if op in ("/", "%"):
        right = compile_expression_columnar(expr.right, ctx)
        divide = op == "/"

        def run(columns, count):
            left_values = left(columns, count)
            right_values = right(columns, count)
            output = []
            append = output.append
            for a, b in zip(left_values, right_values):
                if a is None or b is None:
                    append(None)
                    continue
                if b == 0:
                    raise EvaluationError("division by zero")
                try:
                    append(a / b if divide else a % b)
                except TypeError as exc:
                    raise EvaluationError(
                        f"bad operands for {op}: {a!r}, {b!r}") from exc
            return output
        return run

    def run(columns, count):  # unknown operator: defer to eval's error
        return [expr.eval(row, ctx) for row in _iter_rows(columns, count)]
    return run


#: Python source of the vectorized column-vs-constant comparison, built
#: once per (operator, operand kind) at import time. Splicing the operator
#: symbol into the comprehension (instead of calling ``operator.ge`` & co.
#: per element) keeps the comparison a single COMPARE_OP instruction — the
#: first, deliberately tiny, step toward the ROADMAP's codegen direction.
def _specialize_const_compare(symbol: str, kind_check: str):
    source = (
        "lambda left, const, slow: lambda columns, count: "
        "[None if a is None else "
        f"(a {symbol} const if {kind_check} else slow(a)) "
        "for a in left(columns, count)]")
    return eval(source)  # noqa: S307 - fixed template, no runtime input


_NUM_KIND_CHECK = "type(a) is int or (type(a) is float and a == a)"
_STR_KIND_CHECK = "type(a) is str"
_CONST_COMPARE_NUM = {
    op: _specialize_const_compare(symbol, _NUM_KIND_CHECK)
    for op, symbol in (("=", "=="), ("!=", "!="), ("<>", "!="), ("<", "<"),
                       ("<=", "<="), (">", ">"), (">=", ">="))}
_CONST_COMPARE_STR = {
    op: _specialize_const_compare(symbol, _STR_KIND_CHECK)
    for op, symbol in (("=", "=="), ("!=", "!="), ("<>", "!="), ("<", "<"),
                       ("<=", "<="), (">", ">"), (">=", ">="))}


@_compiles_columnar(Comparison)
def _columnar_comparison(expr: Comparison,
                         ctx: EvalContext) -> ColumnEvaluator:
    left = compile_expression_columnar(expr.left, ctx)
    test = _COMPARISON_TESTS.get(expr.op)
    if test is None:
        fn = compile_expression(expr, ctx)
        return lambda columns, count: [fn(row)
                                       for row in _iter_rows(columns, count)]
    compare = t.compare

    is_const, const = _constant_of(expr.right, ctx)
    if is_const and const is not None:

        def slow(a):  # off-kind value: full SQL comparison (may raise)
            result = compare(a, const)
            return None if result is None else test(result)

        if (isinstance(const, (int, float)) and not isinstance(const, bool)
                and const == const):
            return _CONST_COMPARE_NUM[expr.op](left, const, slow)
        if isinstance(const, str):
            return _CONST_COMPARE_STR[expr.op](left, const, slow)

    right = compile_expression_columnar(expr.right, ctx)

    def pair(a, b):
        result = compare(a, b)
        return None if result is None else test(result)

    def run(columns, count):
        return [None if a is None or b is None else pair(a, b)
                for a, b in zip(left(columns, count), right(columns, count))]
    return run


@_compiles_columnar(BooleanOp)
def _columnar_boolean(expr: BooleanOp, ctx: EvalContext) -> ColumnEvaluator:
    if not all(_never_raises(operand) for operand in expr.operands):
        # An operand might raise on rows the row path would short-circuit
        # past (the ``b != 0 AND 1/b > 0`` guard idiom): evaluate lazily,
        # row by row, through the (short-circuiting) row closure.
        fn = compile_expression(expr, ctx)
        return lambda columns, count: [fn(row)
                                       for row in _iter_rows(columns, count)]
    fns = [compile_expression_columnar(operand, ctx)
           for operand in expr.operands]
    conjunction = expr.op == "and"

    if len(fns) == 2:
        # The overwhelmingly common shape (two conjuncts): a single
        # comprehension over the zipped operand arrays.
        first, second = fns
        if conjunction:
            def run(columns, count):
                return [False if (a is False or b is False) else
                        (None if (a is None or b is None) else True)
                        for a, b in zip(first(columns, count),
                                        second(columns, count))]
        else:
            def run(columns, count):
                return [True if (a is True or b is True) else
                        (None if (a is None or b is None) else False)
                        for a, b in zip(first(columns, count),
                                        second(columns, count))]
        return run

    def run(columns, count):
        arrays = [fn(columns, count) for fn in fns]
        if len(arrays) == 1:
            only, = arrays
            if conjunction:
                return [False if value is False else
                        (None if value is None else True) for value in only]
            return [True if value is True else
                    (None if value is None else False) for value in only]
        output = []
        append = output.append
        if conjunction:
            for values in zip(*arrays):
                result = True
                for value in values:
                    if value is False:
                        result = False
                        break
                    if value is None:
                        result = None
                append(result)
        else:
            for values in zip(*arrays):
                result = False
                for value in values:
                    if value is True:
                        result = True
                        break
                    if value is None:
                        result = None
                append(result)
        return output
    return run


@_compiles_columnar(Not)
def _columnar_not(expr: Not, ctx: EvalContext) -> ColumnEvaluator:
    operand = compile_expression_columnar(expr.operand, ctx)

    def run(columns, count):
        return [None if value is None else not value
                for value in operand(columns, count)]
    return run


@_compiles_columnar(IsNull)
def _columnar_is_null(expr: IsNull, ctx: EvalContext) -> ColumnEvaluator:
    operand = compile_expression_columnar(expr.operand, ctx)
    if expr.negated:
        return lambda columns, count: [value is not None
                                       for value in operand(columns, count)]
    return lambda columns, count: [value is None
                                   for value in operand(columns, count)]


@_compiles_columnar(Cast)
def _columnar_cast(expr: Cast, ctx: EvalContext) -> ColumnEvaluator:
    operand = compile_expression_columnar(expr.operand, ctx)
    target = expr.target
    cast = t.cast_value
    return lambda columns, count: [cast(value, target)
                                   for value in operand(columns, count)]


@_compiles_columnar(Like)
def _columnar_like(expr: Like, ctx: EvalContext) -> ColumnEvaluator:
    is_const, const = _constant_of(expr.pattern, ctx)
    if not (is_const and isinstance(const, str)):
        fn = compile_expression(expr, ctx)
        return lambda columns, count: [fn(row)
                                       for row in _iter_rows(columns, count)]
    operand = compile_expression_columnar(expr.operand, ctx)
    matcher = re.compile(_like_regex(const), re.DOTALL).fullmatch
    negated = expr.negated

    def run(columns, count):
        output = []
        append = output.append
        for text in operand(columns, count):
            if text is None:
                append(None)
                continue
            if not isinstance(text, str):
                raise EvaluationError("LIKE requires text operands")
            matched = matcher(text) is not None
            append(not matched if negated else matched)
        return output
    return run


@_compiles_columnar(VariantPath)
def _columnar_variant_path(expr: VariantPath,
                           ctx: EvalContext) -> ColumnEvaluator:
    operand = compile_expression_columnar(expr.operand, ctx)
    path = expr.path

    def run(columns, count):
        output = []
        append = output.append
        for value in operand(columns, count):
            for key in path:
                if value is None:
                    break
                if isinstance(value, dict):
                    value = value.get(key)
                elif isinstance(value, list):
                    try:
                        value = value[int(key)]
                    except (ValueError, IndexError):
                        value = None
                        break
                else:
                    value = None
                    break
            append(value)
        return output
    return run


@_compiles_columnar(FunctionCall)
def _columnar_function_call(expr: FunctionCall,
                            ctx: EvalContext) -> ColumnEvaluator:
    arg_fns = [compile_expression_columnar(arg, ctx) for arg in expr.args]
    impl = expr.function.impl
    name = expr.function.name
    null_on_null = expr.function.null_on_null

    def run(columns, count):
        if not arg_fns:
            # Zero-arg (necessarily volatile, else it folded): one call
            # per row, like the row path.
            output = []
            for __ in range(count):
                try:
                    output.append(impl())
                except EvaluationError:
                    raise
                except Exception as exc:
                    raise EvaluationError(
                        f"error in function {name}: {exc}") from exc
            return output
        arrays = [fn(columns, count) for fn in arg_fns]
        output = []
        append = output.append
        for values in zip(*arrays):
            if null_on_null and None in values:
                append(None)
                continue
            try:
                append(impl(*values))
            except EvaluationError:
                raise
            except Exception as exc:
                raise EvaluationError(
                    f"error in function {name}: {exc}") from exc
        return output
    return run
