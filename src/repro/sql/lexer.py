"""SQL lexer.

Tokenizes the SQL dialect used by the repository: a Snowflake-flavoured
subset covering the paper's Listing 1 and the operator classes enumerated in
section 3.3.2. Identifiers are case-insensitive and normalized to lower
case; double-quoted identifiers preserve case. Strings use single quotes
with ``''`` escaping. Comments: ``-- line`` and ``/* block */``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ParseError


class TokenType(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    EOF = "eof"


#: Reserved words recognized as keywords (lower case).
KEYWORDS = frozenset({
    "select", "from", "where", "group", "by", "having", "order", "limit",
    "as", "on", "join", "inner", "left", "right", "full", "outer", "cross",
    "union", "all", "distinct", "and", "or", "not", "in", "like", "between",
    "is", "null", "true", "false", "case", "when", "then", "else", "end",
    "cast", "create", "table", "view", "dynamic", "or", "replace", "insert",
    "into", "values", "delete", "update", "set", "drop", "undrop", "alter",
    "rename", "to", "suspend", "resume", "refresh", "target_lag",
    "warehouse", "refresh_mode", "initialize", "downstream", "lateral",
    "flatten", "over", "partition", "asc", "desc", "exists", "if", "with",
    "recluster", "at", "show", "tables", "qualify", "clone",
    "begin", "commit", "rollback", "savepoint",
    # NOTE: the optional noise words TRANSACTION / WORK after
    # BEGIN/COMMIT/ROLLBACK are deliberately *not* reserved — they are
    # matched contextually by the parser, so columns and tables may keep
    # using them as names.
})

#: Multi-character operators, longest first so maximal munch works.
#: ``?`` is the positional bind-parameter marker of the prepared-statement
#: API (named parameters reuse ``:`` in prefix position).
OPERATORS = ("::", "<=", ">=", "<>", "!=", "=>", "||",
             "(", ")", ",", ".", ";", "+", "-", "*", "/", "%",
             "=", "<", ">", ":", "$", "?")


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    line: int
    column: int

    def matches(self, token_type: TokenType, text: str | None = None) -> bool:
        if self.type != token_type:
            return False
        return text is None or self.text == text

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.type.value}, {self.text!r})"


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql`` into a list of tokens ending with an EOF token.

    Raises :class:`~repro.errors.ParseError` on unterminated strings or
    unrecognized characters, with line/column information.
    """
    tokens: list[Token] = []
    position = 0
    line = 1
    line_start = 0
    length = len(sql)

    def column() -> int:
        return position - line_start + 1

    while position < length:
        char = sql[position]

        if char == "\n":
            line += 1
            position += 1
            line_start = position
            continue
        if char in " \t\r":
            position += 1
            continue

        # Comments.
        if sql.startswith("--", position):
            newline = sql.find("\n", position)
            position = length if newline == -1 else newline
            continue
        if sql.startswith("/*", position):
            close = sql.find("*/", position + 2)
            if close == -1:
                raise ParseError("unterminated block comment", line, column())
            line += sql.count("\n", position, close)
            position = close + 2
            continue

        # String literal.
        if char == "'":
            start_line, start_column = line, column()
            position += 1
            parts: list[str] = []
            while True:
                if position >= length:
                    raise ParseError("unterminated string literal",
                                     start_line, start_column)
                if sql[position] == "'":
                    if position + 1 < length and sql[position + 1] == "'":
                        parts.append("'")
                        position += 2
                        continue
                    position += 1
                    break
                if sql[position] == "\n":
                    line += 1
                    line_start = position + 1
                parts.append(sql[position])
                position += 1
            tokens.append(Token(TokenType.STRING, "".join(parts),
                                start_line, start_column))
            continue

        # Quoted identifier (case preserved).
        if char == '"':
            start_column = column()
            close = sql.find('"', position + 1)
            if close == -1:
                raise ParseError("unterminated quoted identifier", line, start_column)
            tokens.append(Token(TokenType.IDENT, sql[position + 1:close],
                                line, start_column))
            position = close + 1
            continue

        # Number: integer or decimal.
        if char.isdigit():
            start = position
            start_column = column()
            while position < length and sql[position].isdigit():
                position += 1
            if (position < length and sql[position] == "."
                    and position + 1 < length and sql[position + 1].isdigit()):
                position += 1
                while position < length and sql[position].isdigit():
                    position += 1
            tokens.append(Token(TokenType.NUMBER, sql[start:position],
                                line, start_column))
            continue

        # Identifier or keyword.
        if char.isalpha() or char == "_":
            start = position
            start_column = column()
            while position < length and (sql[position].isalnum() or sql[position] == "_"):
                position += 1
            word = sql[start:position].lower()
            token_type = TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENT
            tokens.append(Token(token_type, word, line, start_column))
            continue

        # Operator.
        for operator in OPERATORS:
            if sql.startswith(operator, position):
                tokens.append(Token(TokenType.OPERATOR, operator, line, column()))
                position += len(operator)
                break
        else:
            raise ParseError(f"unexpected character {char!r}", line, column())

    tokens.append(Token(TokenType.EOF, "", line, column()))
    return tokens
