"""The SQL frontend: lexer, parser, and AST nodes."""

from repro.sql.parser import parse_query, parse_statement, parse_statements

__all__ = ["parse_query", "parse_statement", "parse_statements"]
