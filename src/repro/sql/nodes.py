"""SQL abstract syntax tree.

These are *unbound* nodes produced by :mod:`repro.sql.parser`; the plan
builder (:mod:`repro.plan.builder`) binds names and types against the
catalog, producing logical plans over bound expressions.

The node set covers everything needed for the paper:

* Listing 1's queries (joins, variant paths, casts, ``date_trunc``,
  ``count_if``, ``GROUP BY ALL``),
* the incrementally supported operator classes of section 3.3.2
  (projections, filters, union-all, inner/outer joins, LATERAL FLATTEN,
  distinct and grouped aggregation, partitioned window functions),
* the full-refresh-only constructs (ORDER BY / LIMIT at the top level),
* the DDL/DML surface (CREATE [DYNAMIC] TABLE / VIEW, INSERT, DELETE,
  UPDATE, DROP/UNDROP, ALTER DYNAMIC TABLE ... SUSPEND/RESUME/REFRESH).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

# ---------------------------------------------------------------------------
# Source spans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Span:
    """The 1-based source position of an AST node's first token.

    Spans ride *outside* dataclass equality: the parser attaches them to
    frozen nodes via :func:`set_span` (``object.__setattr__``), so two
    structurally identical expressions from different source positions
    still compare equal — the builder's substitution machinery depends on
    that.
    """

    line: int
    column: int

    def describe(self) -> str:
        return f"line {self.line}, column {self.column}"


def set_span(node: object, span: "Optional[Span]") -> None:
    """Attach a source span to a (possibly frozen) AST node."""
    if span is not None:
        object.__setattr__(node, "span", span)


def span_of(node: object) -> "Optional[Span]":
    """The source span attached to an AST node, or None."""
    return getattr(node, "span", None)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for AST expressions.

    ``span`` is the position of the node's first token when the node came
    from the parser (None for synthesized nodes); see :class:`Span`.
    """

    span: Optional[Span] = None


@dataclass(frozen=True)
class Lit(Expr):
    """A literal: int, float, str, bool, or None."""

    value: object


@dataclass(frozen=True)
class Name(Expr):
    """A possibly-qualified column reference (``a`` or ``t.a``)."""

    name: str
    table: Optional[str] = None

    def display(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``t.*`` in a select list (or ``COUNT(*)``)."""

    table: Optional[str] = None


@dataclass(frozen=True)
class Parameter(Expr):
    """A bind parameter: positional ``?`` (``index`` is the 0-based order
    of appearance) or named ``:name``. Values are supplied at execution
    time through the prepared-statement API; plans bind these to
    :class:`repro.engine.expressions.BoundParameter` slots."""

    index: Optional[int] = None
    name: Optional[str] = None

    def display(self) -> str:
        if self.name is not None:
            return f":{self.name}"
        return f"?{(self.index or 0) + 1}"


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary operator: arithmetic, comparison, AND/OR, ``||``."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnOp(Expr):
    """Unary operator: ``-`` or NOT."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class IsNullExpr(Expr):
    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class InListExpr(Expr):
    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class BetweenExpr(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class LikeExpr(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False


@dataclass(frozen=True)
class CaseExpr(Expr):
    """Searched or simple CASE (simple form carries ``operand``)."""

    whens: tuple[tuple[Expr, Expr], ...]
    otherwise: Optional[Expr] = None
    operand: Optional[Expr] = None


@dataclass(frozen=True)
class CastExpr(Expr):
    """``CAST(x AS type)`` or the postfix ``x::type``."""

    operand: Expr
    type_name: str


@dataclass(frozen=True)
class PathExpr(Expr):
    """VARIANT path access ``expr:key1.key2`` (Listing 1 uses
    ``e.payload:time``)."""

    operand: Expr
    path: tuple[str, ...]


@dataclass(frozen=True)
class WindowSpec:
    """``OVER (PARTITION BY ... [ORDER BY ...])``."""

    partition_by: tuple[Expr, ...] = ()
    order_by: tuple[tuple[Expr, bool], ...] = ()  # (expr, descending)


@dataclass(frozen=True)
class FnCall(Expr):
    """A function call; covers scalar functions, aggregates, and window
    functions (``window`` is set when an OVER clause is present)."""

    name: str
    args: tuple[Expr, ...] = ()
    distinct: bool = False
    window: Optional[WindowSpec] = None


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


class TableRef:
    """Base class for FROM-clause items."""

    span: Optional[Span] = None


@dataclass(frozen=True)
class NamedTable(TableRef):
    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SubqueryRef(TableRef):
    query: "Select"
    alias: str


@dataclass(frozen=True)
class JoinRef(TableRef):
    """A join between two table references.

    ``kind`` is one of ``inner``, ``left``, ``right``, ``full``, ``cross``.
    ``condition`` is None only for cross joins.
    """

    kind: str
    left: TableRef
    right: TableRef
    condition: Optional[Expr] = None


@dataclass(frozen=True)
class FlattenRef(TableRef):
    """``<ref>, LATERAL FLATTEN(input => expr) [AS alias]``.

    Produces one output row per element of the flattened array, exposing
    ``value`` (and ``index``) columns under ``alias``.
    """

    source: TableRef
    input: Expr
    alias: str = "f"


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class GroupByAll:
    """Marker for ``GROUP BY ALL`` (group by every non-aggregate select
    item), as used in the paper's Listing 1."""


@dataclass(frozen=True)
class Select:
    """One SELECT block, or a UNION ALL chain (``union_all`` non-empty)."""

    items: tuple[SelectItem, ...] = ()
    from_: Optional[TableRef] = None
    where: Optional[Expr] = None
    group_by: Union[tuple[Expr, ...], GroupByAll, None] = None
    having: Optional[Expr] = None
    qualify: Optional[Expr] = None
    distinct: bool = False
    union_all: tuple["Select", ...] = ()
    order_by: tuple[tuple[Expr, bool], ...] = ()
    limit: Optional[int] = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement:
    """Base class for top-level statements."""

    span: Optional[Span] = None


@dataclass(frozen=True)
class Query(Statement):
    select: Select


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str


@dataclass(frozen=True)
class CreateTable(Statement):
    name: str
    columns: tuple[ColumnDef, ...]
    or_replace: bool = False
    if_not_exists: bool = False


@dataclass(frozen=True)
class CreateView(Statement):
    name: str
    query: Select
    or_replace: bool = False


@dataclass(frozen=True)
class CreateDynamicTable(Statement):
    """``CREATE [OR REPLACE] DYNAMIC TABLE name TARGET_LAG = ...
    WAREHOUSE = ... [REFRESH_MODE = ...] [INITIALIZE = ...] AS query``.

    ``target_lag`` is either a duration string (e.g. ``'1 minute'``) or the
    literal ``"downstream"``. ``warehouse`` may be None, in which case the
    executing session must supply a default warehouse. ``refresh_mode`` is
    ``auto`` (default), ``full``, or ``incremental``. ``initialize`` is
    ``on_create`` (default, synchronous) or ``on_schedule`` (section 3.1).
    """

    name: str
    query: Select
    target_lag: str
    warehouse: Optional[str]
    refresh_mode: str = "auto"
    initialize: str = "on_create"
    or_replace: bool = False


@dataclass(frozen=True)
class Insert(Statement):
    table: str
    columns: tuple[str, ...] = ()
    rows: tuple[tuple[Expr, ...], ...] = ()
    query: Optional[Select] = None


@dataclass(frozen=True)
class Delete(Statement):
    table: str
    where: Optional[Expr] = None


@dataclass(frozen=True)
class Update(Statement):
    table: str
    assignments: tuple[tuple[str, Expr], ...] = ()
    where: Optional[Expr] = None


@dataclass(frozen=True)
class Drop(Statement):
    kind: str  # "table" | "view" | "dynamic table"
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class Undrop(Statement):
    kind: str
    name: str


@dataclass(frozen=True)
class AlterDynamicTable(Statement):
    """``ALTER DYNAMIC TABLE name SUSPEND | RESUME | REFRESH`` or
    ``... SET key = value [, ...]`` (failure-policy options: RETRIES,
    BACKOFF, BACKOFF_FACTOR, ERROR_THRESHOLD)."""

    name: str
    action: str  # "suspend" | "resume" | "refresh" | "set"
    #: ``(key, value)`` pairs for the "set" action; empty otherwise.
    options: tuple = ()


@dataclass(frozen=True)
class AlterTableRename(Statement):
    name: str
    new_name: str


@dataclass(frozen=True)
class CloneEntity(Statement):
    """``CREATE [DYNAMIC] TABLE name CLONE source`` — zero-copy cloning
    (section 3.4): the new entity is created "by copying only its
    metadata"; cloned DTs "can avoid reinitialization in many cases"."""

    kind: str  # "table" | "dynamic table"
    name: str
    source: str


@dataclass(frozen=True)
class BeginTransaction(Statement):
    """``BEGIN [TRANSACTION | WORK]`` — open an explicit multi-statement
    transaction on the executing session. Reads inside it see the
    snapshot taken at BEGIN plus the transaction's own staged writes;
    nothing is visible to other sessions until COMMIT."""


@dataclass(frozen=True)
class CommitTransaction(Statement):
    """``COMMIT [TRANSACTION | WORK]`` — atomically apply the open
    transaction's staged writes under one HLC commit timestamp."""


@dataclass(frozen=True)
class RollbackTransaction(Statement):
    """``ROLLBACK [TRANSACTION | WORK]`` or ``ROLLBACK TO [SAVEPOINT]
    <name>``. Without a savepoint the open transaction is discarded
    wholesale; with one, staged writes are restored to the savepoint and
    the transaction stays open."""

    savepoint: Optional[str] = None


@dataclass(frozen=True)
class Savepoint(Statement):
    """``SAVEPOINT <name>`` — capture the open transaction's staged-write
    state so a later ``ROLLBACK TO <name>`` can restore it."""

    name: str


@dataclass(frozen=True)
class Recluster(Statement):
    """``ALTER TABLE name RECLUSTER`` — a data-equivalent maintenance
    operation (section 5.5.2): rewrites partitions without changing logical
    contents."""

    name: str
