"""Recursive-descent SQL parser.

Grammar (informal):

.. code-block:: text

   statement   := query | create | insert | delete | update | drop
                | undrop | alter | begin | commit | rollback | savepoint
   query       := select (UNION ALL select)* [ORDER BY order_items]
                  [LIMIT number]
   select      := SELECT [DISTINCT] items FROM table_ref [WHERE expr]
                  [GROUP BY (ALL | exprs)] [HAVING expr] [QUALIFY expr]
   table_ref   := primary (join_clause | ',' LATERAL FLATTEN '(' ... ')')*
   join_clause := [INNER|LEFT [OUTER]|RIGHT [OUTER]|FULL [OUTER]|CROSS]
                  JOIN primary [ON expr]
   primary     := name [AS? alias] | '(' query ')' AS? alias

Expression precedence (loosest to tightest): OR, AND, NOT, comparison /
IS / IN / LIKE / BETWEEN, additive (``+ - ||``), multiplicative
(``* / %``), unary minus, postfix (``:path`` and ``::type``), primary.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.sql import nodes as n
from repro.sql.lexer import Token, TokenType, tokenize


def parse_statement(sql: str) -> n.Statement:
    """Parse a single SQL statement (a trailing ``;`` is allowed)."""
    return parse_prepared(sql)[0]


def parse_prepared(sql: str) -> tuple[n.Statement, tuple[n.Parameter, ...]]:
    """Parse a single statement, also returning its bind parameters in
    order of appearance (the prepared-statement entry point)."""
    parser = _Parser(tokenize(sql))
    statement = parser.statement()
    parser.accept_operator(";")
    parser.expect_eof()
    return statement, tuple(parser.parameters)


def parse_statements(sql: str) -> list[n.Statement]:
    """Parse a ``;``-separated script.

    Scripts cannot carry bind parameters — there is no way to supply
    values for them — so any ``?`` / ``:name`` is rejected up front.
    """
    parser = _Parser(tokenize(sql))
    statements: list[n.Statement] = []
    while not parser.at_eof():
        statements.append(parser.statement())
        if not parser.accept_operator(";"):
            break
    parser.expect_eof()
    if parser.parameters:
        raise ParseError(
            f"bind parameter {parser.parameters[0].display()} is not "
            "allowed in a multi-statement script")
    return statements


def parse_query(sql: str) -> n.Select:
    """Parse a bare query (used for DT defining queries stored as text)."""
    statement = parse_statement(sql)
    if not isinstance(statement, n.Query):
        raise ParseError("expected a query")
    return statement.select


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._position = 0
        #: Bind parameters in order of appearance; positional ``?``
        #: markers are numbered as they are encountered.
        self.parameters: list[n.Parameter] = []
        self._positional_params = 0

    # -- token plumbing ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.type != TokenType.EOF:
            self._position += 1
        return token

    def at_eof(self) -> bool:
        return self._peek().type == TokenType.EOF

    def expect_eof(self) -> None:
        token = self._peek()
        if token.type != TokenType.EOF:
            raise ParseError(f"unexpected trailing input: {token.text!r}",
                             token.line, token.column)

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        found = token.text or "end of input"
        return ParseError(f"{message}, found {found!r}", token.line, token.column)

    def _span(self) -> n.Span:
        """The source span of the next token (the start of whatever
        production is about to run)."""
        token = self._peek()
        return n.Span(token.line, token.column)

    def accept_keyword(self, *words: str) -> bool:
        token = self._peek()
        if token.type == TokenType.KEYWORD and token.text == words[0]:
            # Multi-word keyword sequences must match entirely.
            for offset, word in enumerate(words):
                lookahead = self._peek(offset)
                if not (lookahead.type == TokenType.KEYWORD and lookahead.text == word):
                    return False
            for __ in words:
                self._advance()
            return True
        return False

    def expect_keyword(self, *words: str) -> None:
        if not self.accept_keyword(*words):
            raise self._error(f"expected {' '.join(words).upper()}")

    def peek_keyword(self, word: str, offset: int = 0) -> bool:
        token = self._peek(offset)
        return token.type == TokenType.KEYWORD and token.text == word

    def accept_operator(self, text: str) -> bool:
        if self._peek().matches(TokenType.OPERATOR, text):
            self._advance()
            return True
        return False

    def expect_operator(self, text: str) -> None:
        if not self.accept_operator(text):
            raise self._error(f"expected {text!r}")

    def expect_identifier(self, what: str = "identifier") -> str:
        token = self._peek()
        # Allow non-reserved keywords where identifiers are expected
        # (e.g. a table aliased "s", a column named "values" is NOT allowed).
        if token.type == TokenType.IDENT:
            self._advance()
            return token.text
        raise self._error(f"expected {what}")

    def expect_string(self, what: str = "string literal") -> str:
        token = self._peek()
        if token.type == TokenType.STRING:
            self._advance()
            return token.text
        raise self._error(f"expected {what}")

    # -- statements --------------------------------------------------------

    def statement(self) -> n.Statement:
        statement = self._statement_inner()
        if statement.span is None:
            n.set_span(statement, self._statement_span)
        return statement

    def _statement_inner(self) -> n.Statement:
        self._statement_span = self._span()
        if self.peek_keyword("select") or self.peek_keyword("with"):
            return n.Query(self.query())
        if self.peek_keyword("create"):
            return self._create()
        if self.peek_keyword("insert"):
            return self._insert()
        if self.peek_keyword("delete"):
            return self._delete()
        if self.peek_keyword("update"):
            return self._update()
        if self.peek_keyword("drop"):
            return self._drop()
        if self.peek_keyword("undrop"):
            return self._undrop()
        if self.peek_keyword("alter"):
            return self._alter()
        if self.peek_keyword("begin"):
            return self._begin()
        if self.peek_keyword("commit"):
            self.expect_keyword("commit")
            self._transaction_suffix()
            return n.CommitTransaction()
        if self.peek_keyword("rollback"):
            return self._rollback()
        if self.peek_keyword("savepoint"):
            self.expect_keyword("savepoint")
            return n.Savepoint(self.expect_identifier("savepoint name"))
        raise self._error("expected a statement")

    # -- transaction control -----------------------------------------------

    def _transaction_suffix(self) -> None:
        """The optional noise word after BEGIN/COMMIT/ROLLBACK.

        TRANSACTION and WORK are not reserved words (identifiers named
        ``transaction`` stay valid), so they arrive as plain identifiers
        and are matched contextually here.
        """
        token = self._peek()
        if token.type == TokenType.IDENT and token.text in ("transaction",
                                                           "work"):
            self._advance()

    def _begin(self) -> n.BeginTransaction:
        self.expect_keyword("begin")
        self._transaction_suffix()
        return n.BeginTransaction()

    def _rollback(self) -> n.Statement:
        self.expect_keyword("rollback")
        self._transaction_suffix()
        if self.accept_keyword("to"):
            self.accept_keyword("savepoint")
            return n.RollbackTransaction(
                savepoint=self.expect_identifier("savepoint name"))
        return n.RollbackTransaction()

    def _create(self) -> n.Statement:
        self.expect_keyword("create")
        or_replace = self.accept_keyword("or", "replace")
        if self.accept_keyword("dynamic"):
            self.expect_keyword("table")
            name = self.expect_identifier("dynamic table name")
            if self.accept_keyword("clone"):
                return n.CloneEntity("dynamic table", name,
                                     self.expect_identifier("source name"))
            return self._create_dynamic_table(or_replace, name)
        if self.accept_keyword("view"):
            name = self.expect_identifier("view name")
            self.expect_keyword("as")
            return n.CreateView(name, self.query(), or_replace)
        if self.accept_keyword("table"):
            if_not_exists = False
            if self.accept_keyword("if"):
                self.expect_keyword("not")
                self.expect_keyword("exists")
                if_not_exists = True
            name = self.expect_identifier("table name")
            if self.accept_keyword("clone"):
                return n.CloneEntity("table", name,
                                     self.expect_identifier("source name"))
            self.expect_operator("(")
            columns: list[n.ColumnDef] = []
            while True:
                column_name = self.expect_identifier("column name")
                type_name = self._type_name()
                columns.append(n.ColumnDef(column_name, type_name))
                if not self.accept_operator(","):
                    break
            self.expect_operator(")")
            return n.CreateTable(name, tuple(columns), or_replace, if_not_exists)
        raise self._error("expected TABLE, VIEW, or DYNAMIC TABLE")

    def _type_name(self) -> str:
        token = self._peek()
        if token.type in (TokenType.IDENT, TokenType.KEYWORD):
            self._advance()
            return token.text
        raise self._error("expected type name")

    def _create_dynamic_table(self, or_replace: bool,
                              name: str) -> n.CreateDynamicTable:
        target_lag: str | None = None
        warehouse: str | None = None
        refresh_mode = "auto"
        initialize = "on_create"
        while not self.peek_keyword("as"):
            if self.accept_keyword("target_lag"):
                self.expect_operator("=")
                if self.accept_keyword("downstream"):
                    target_lag = "downstream"
                else:
                    target_lag = self.expect_string("target lag duration")
            elif self.accept_keyword("warehouse"):
                self.expect_operator("=")
                warehouse = self.expect_identifier("warehouse name")
            elif self.accept_keyword("refresh_mode"):
                self.expect_operator("=")
                refresh_mode = self._keyword_or_ident("refresh mode").lower()
            elif self.accept_keyword("initialize"):
                self.expect_operator("=")
                initialize = self._keyword_or_ident("initialize option").lower()
            else:
                raise self._error("expected TARGET_LAG, WAREHOUSE, "
                                  "REFRESH_MODE, INITIALIZE, or AS")
        self.expect_keyword("as")
        query = self.query()
        if target_lag is None:
            raise self._error("dynamic table requires TARGET_LAG")
        # WAREHOUSE may be omitted when the executing session carries a
        # default warehouse; the session layer enforces that one exists.
        return n.CreateDynamicTable(name, query, target_lag, warehouse,
                                    refresh_mode, initialize, or_replace)

    def _keyword_or_ident(self, what: str) -> str:
        token = self._peek()
        if token.type in (TokenType.IDENT, TokenType.KEYWORD):
            self._advance()
            return token.text
        raise self._error(f"expected {what}")

    def _insert(self) -> n.Insert:
        self.expect_keyword("insert")
        self.expect_keyword("into")
        table = self.expect_identifier("table name")
        columns: tuple[str, ...] = ()
        if self.accept_operator("("):
            names = [self.expect_identifier("column name")]
            while self.accept_operator(","):
                names.append(self.expect_identifier("column name"))
            self.expect_operator(")")
            columns = tuple(names)
        if self.accept_keyword("values"):
            rows: list[tuple[n.Expr, ...]] = []
            while True:
                self.expect_operator("(")
                row = [self.expression()]
                while self.accept_operator(","):
                    row.append(self.expression())
                self.expect_operator(")")
                rows.append(tuple(row))
                if not self.accept_operator(","):
                    break
            return n.Insert(table, columns, tuple(rows))
        return n.Insert(table, columns, query=self.query())

    def _delete(self) -> n.Delete:
        self.expect_keyword("delete")
        self.expect_keyword("from")
        table = self.expect_identifier("table name")
        where = self.expression() if self.accept_keyword("where") else None
        return n.Delete(table, where)

    def _update(self) -> n.Update:
        self.expect_keyword("update")
        table = self.expect_identifier("table name")
        self.expect_keyword("set")
        assignments = []
        while True:
            column = self.expect_identifier("column name")
            self.expect_operator("=")
            assignments.append((column, self.expression()))
            if not self.accept_operator(","):
                break
        where = self.expression() if self.accept_keyword("where") else None
        return n.Update(table, tuple(assignments), where)

    def _entity_kind(self) -> str:
        if self.accept_keyword("dynamic"):
            self.expect_keyword("table")
            return "dynamic table"
        if self.accept_keyword("view"):
            return "view"
        self.expect_keyword("table")
        return "table"

    def _drop(self) -> n.Drop:
        self.expect_keyword("drop")
        kind = self._entity_kind()
        if_exists = False
        if self.accept_keyword("if"):
            self.expect_keyword("exists")
            if_exists = True
        return n.Drop(kind, self.expect_identifier("entity name"), if_exists)

    def _undrop(self) -> n.Undrop:
        self.expect_keyword("undrop")
        kind = self._entity_kind()
        return n.Undrop(kind, self.expect_identifier("entity name"))

    def _alter(self) -> n.Statement:
        self.expect_keyword("alter")
        if self.accept_keyword("dynamic"):
            self.expect_keyword("table")
            name = self.expect_identifier("dynamic table name")
            if self.accept_keyword("suspend"):
                return n.AlterDynamicTable(name, "suspend")
            if self.accept_keyword("resume"):
                return n.AlterDynamicTable(name, "resume")
            if self.accept_keyword("refresh"):
                return n.AlterDynamicTable(name, "refresh")
            if self.accept_keyword("set"):
                return n.AlterDynamicTable(name, "set",
                                           self._policy_options())
            raise self._error("expected SUSPEND, RESUME, REFRESH, or SET")
        self.expect_keyword("table")
        name = self.expect_identifier("table name")
        if self.accept_keyword("rename"):
            self.expect_keyword("to")
            return n.AlterTableRename(name, self.expect_identifier("new name"))
        if self.accept_keyword("recluster"):
            return n.Recluster(name)
        raise self._error("expected RENAME TO or RECLUSTER")

    def _policy_options(self) -> tuple:
        """``key = value [, key = value ...]`` after ALTER ... SET.
        Values are integers (counts/factors) or string literals
        (durations like '10 seconds'); keys are validated by the
        session layer, not here."""
        options: list[tuple[str, object]] = []
        while True:
            key = self.expect_identifier("option name")
            self.expect_operator("=")
            token = self._peek()
            if token.type == TokenType.NUMBER and "." not in token.text:
                self._advance()
                value: object = int(token.text)
            elif token.type == TokenType.STRING:
                self._advance()
                value = token.text
            else:
                raise self._error("expected option value")
            options.append((key, value))
            if not self.accept_operator(","):
                break
        return tuple(options)

    # -- queries -----------------------------------------------------------

    def query(self) -> n.Select:
        first = self._select_core()
        unions: list[n.Select] = []
        while self.peek_keyword("union"):
            self.expect_keyword("union")
            self.expect_keyword("all")
            unions.append(self._select_core())
        order_by: tuple[tuple[n.Expr, bool], ...] = ()
        limit: int | None = None
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by = self._order_items()
        if self.accept_keyword("limit"):
            token = self._peek()
            if token.type != TokenType.NUMBER:
                raise self._error("expected LIMIT count")
            self._advance()
            limit = int(token.text)
        if unions or order_by or limit is not None:
            return n.Select(
                items=first.items, from_=first.from_, where=first.where,
                group_by=first.group_by, having=first.having,
                qualify=first.qualify, distinct=first.distinct,
                union_all=tuple(unions), order_by=order_by, limit=limit)
        return first

    def _select_core(self) -> n.Select:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        items = [self._select_item()]
        while self.accept_operator(","):
            # A comma inside FROM is handled there; here commas separate items.
            items.append(self._select_item())
        from_ = None
        if self.accept_keyword("from"):
            from_ = self._table_ref()
        where = self.expression() if self.accept_keyword("where") else None
        group_by: tuple[n.Expr, ...] | n.GroupByAll | None = None
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            if self.accept_keyword("all"):
                group_by = n.GroupByAll()
            else:
                exprs = [self.expression()]
                while self.accept_operator(","):
                    exprs.append(self.expression())
                group_by = tuple(exprs)
        having = self.expression() if self.accept_keyword("having") else None
        qualify = (self.expression()
                   if self.accept_keyword("qualify") else None)
        return n.Select(items=tuple(items), from_=from_, where=where,
                        group_by=group_by, having=having, qualify=qualify,
                        distinct=distinct)

    def _select_item(self) -> n.SelectItem:
        expr = self.expression()
        alias: str | None = None
        if self.accept_keyword("as"):
            alias = self.expect_identifier("alias")
        elif self._peek().type == TokenType.IDENT:
            alias = self._advance().text
        return n.SelectItem(expr, alias)

    def _order_items(self) -> tuple[tuple[n.Expr, bool], ...]:
        items: list[tuple[n.Expr, bool]] = []
        while True:
            expr = self.expression()
            descending = False
            if self.accept_keyword("desc"):
                descending = True
            else:
                self.accept_keyword("asc")
            items.append((expr, descending))
            if not self.accept_operator(","):
                break
        return tuple(items)

    # -- FROM clause -------------------------------------------------------

    def _table_ref(self) -> n.TableRef:
        ref = self._table_primary()
        while True:
            if self.accept_operator(","):
                if self.accept_keyword("lateral"):
                    ref = self._flatten(ref)
                    continue
                right = self._table_primary()
                ref = n.JoinRef("cross", ref, right)
                continue
            kind = self._join_kind()
            if kind is None:
                return ref
            right = self._table_primary()
            condition = None
            if kind != "cross":
                self.expect_keyword("on")
                condition = self.expression()
            ref = n.JoinRef(kind, ref, right, condition)

    def _join_kind(self) -> str | None:
        if self.accept_keyword("join"):
            return "inner"
        if self.accept_keyword("inner"):
            self.expect_keyword("join")
            return "inner"
        for kind in ("left", "right", "full"):
            if self.peek_keyword(kind):
                self._advance()
                self.accept_keyword("outer")
                self.expect_keyword("join")
                return kind
        if self.accept_keyword("cross"):
            self.expect_keyword("join")
            return "cross"
        return None

    def _flatten(self, source: n.TableRef) -> n.FlattenRef:
        self.expect_keyword("flatten")
        self.expect_operator("(")
        # Snowflake syntax: FLATTEN(input => expr); bare expr also accepted.
        token = self._peek()
        if token.type == TokenType.IDENT and token.text == "input":
            self._advance()
            self.expect_operator("=>")
        input_expr = self.expression()
        self.expect_operator(")")
        alias = "f"
        if self.accept_keyword("as"):
            alias = self.expect_identifier("flatten alias")
        elif self._peek().type == TokenType.IDENT:
            alias = self._advance().text
        return n.FlattenRef(source, input_expr, alias)

    def _table_primary(self) -> n.TableRef:
        start = self._span()
        if self.accept_keyword("lateral"):
            raise self._error("LATERAL FLATTEN must follow a comma")
        if self.accept_operator("("):
            query = self.query()
            self.expect_operator(")")
            self.accept_keyword("as")
            alias = self.expect_identifier("subquery alias")
            ref: n.TableRef = n.SubqueryRef(query, alias)
            n.set_span(ref, start)
            return ref
        name = self.expect_identifier("table name")
        alias: str | None = None
        if self.accept_keyword("as"):
            alias = self.expect_identifier("alias")
        elif self._peek().type == TokenType.IDENT:
            alias = self._advance().text
        ref = n.NamedTable(name, alias)
        n.set_span(ref, start)
        return ref

    # -- expressions ---------------------------------------------------------

    def expression(self) -> n.Expr:
        return self._or_expr()

    def _or_expr(self) -> n.Expr:
        start = self._span()
        left = self._and_expr()
        while self.accept_keyword("or"):
            left = n.BinOp("or", left, self._and_expr())
            n.set_span(left, start)
        return left

    def _and_expr(self) -> n.Expr:
        start = self._span()
        left = self._not_expr()
        while self.accept_keyword("and"):
            left = n.BinOp("and", left, self._not_expr())
            n.set_span(left, start)
        return left

    def _not_expr(self) -> n.Expr:
        start = self._span()
        if self.accept_keyword("not"):
            expr = n.UnOp("not", self._not_expr())
            n.set_span(expr, start)
            return expr
        return self._comparison()

    def _comparison(self) -> n.Expr:
        start = self._span()
        expr = self._comparison_inner()
        if expr.span is None:
            n.set_span(expr, start)
        return expr

    def _comparison_inner(self) -> n.Expr:
        left = self._additive()
        token = self._peek()
        if token.type == TokenType.OPERATOR and token.text in (
                "=", "!=", "<>", "<", "<=", ">", ">="):
            self._advance()
            return n.BinOp(token.text, left, self._additive())
        if self.accept_keyword("is"):
            negated = self.accept_keyword("not")
            self.expect_keyword("null")
            return n.IsNullExpr(left, negated)
        negated = self.accept_keyword("not")
        if self.accept_keyword("in"):
            self.expect_operator("(")
            items = [self.expression()]
            while self.accept_operator(","):
                items.append(self.expression())
            self.expect_operator(")")
            return n.InListExpr(left, tuple(items), negated)
        if self.accept_keyword("like"):
            return n.LikeExpr(left, self._additive(), negated)
        if self.accept_keyword("between"):
            low = self._additive()
            self.expect_keyword("and")
            high = self._additive()
            return n.BetweenExpr(left, low, high, negated)
        if negated:
            raise self._error("expected IN, LIKE, or BETWEEN after NOT")
        return left

    def _additive(self) -> n.Expr:
        start = self._span()
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.type == TokenType.OPERATOR and token.text in ("+", "-", "||"):
                self._advance()
                left = n.BinOp(token.text, left, self._multiplicative())
                n.set_span(left, start)
            else:
                return left

    def _multiplicative(self) -> n.Expr:
        start = self._span()
        left = self._unary()
        while True:
            token = self._peek()
            if token.type == TokenType.OPERATOR and token.text in ("*", "/", "%"):
                self._advance()
                left = n.BinOp(token.text, left, self._unary())
                n.set_span(left, start)
            else:
                return left

    def _unary(self) -> n.Expr:
        start = self._span()
        if self.accept_operator("-"):
            expr = n.UnOp("-", self._unary())
            n.set_span(expr, start)
            return expr
        if self.accept_operator("+"):
            return self._unary()
        return self._postfix()

    def _postfix(self) -> n.Expr:
        start = self._span()
        expr = self._primary()
        while True:
            token = self._peek()
            if token.matches(TokenType.OPERATOR, "::"):
                self._advance()
                expr = n.CastExpr(expr, self._type_name())
                n.set_span(expr, start)
            elif token.matches(TokenType.OPERATOR, ":"):
                self._advance()
                path = [self._keyword_or_ident("variant path key")]
                while self.accept_operator("."):
                    path.append(self._keyword_or_ident("variant path key"))
                expr = n.PathExpr(expr, tuple(path))
                n.set_span(expr, start)
            else:
                return expr

    def _primary(self) -> n.Expr:
        start = self._span()
        expr = self._primary_inner()
        if expr.span is None:
            n.set_span(expr, start)
        return expr

    def _primary_inner(self) -> n.Expr:
        token = self._peek()

        if token.type == TokenType.NUMBER:
            self._advance()
            value: object = float(token.text) if "." in token.text else int(token.text)
            return n.Lit(value)
        if token.type == TokenType.STRING:
            self._advance()
            return n.Lit(token.text)
        if self.accept_keyword("null"):
            return n.Lit(None)
        if self.accept_keyword("true"):
            return n.Lit(True)
        if self.accept_keyword("false"):
            return n.Lit(False)
        if self.accept_keyword("case"):
            return self._case()
        if self.accept_keyword("cast"):
            self.expect_operator("(")
            operand = self.expression()
            self.expect_keyword("as")
            type_name = self._type_name()
            self.expect_operator(")")
            return n.CastExpr(operand, type_name)
        if self.accept_operator("("):
            expr = self.expression()
            self.expect_operator(")")
            return expr
        if self.accept_operator("*"):
            return n.Star()
        if self.accept_operator("$"):
            # Metadata columns $action / $row_id, exposed for debugging.
            name = self.expect_identifier("metadata column")
            return n.Name(f"${name}")
        if self.accept_operator("?"):
            # Positional bind parameter, numbered in order of appearance.
            parameter = n.Parameter(index=self._positional_params)
            self._positional_params += 1
            self.parameters.append(parameter)
            return parameter
        if token.matches(TokenType.OPERATOR, ":"):
            # ``:name`` in prefix position is a named bind parameter
            # (postfix ``expr:key`` remains the VARIANT path operator).
            self._advance()
            parameter = n.Parameter(name=self._keyword_or_ident(
                "bind parameter name"))
            self.parameters.append(parameter)
            return parameter

        if token.type == TokenType.IDENT:
            self._advance()
            # Function call?
            if self._peek().matches(TokenType.OPERATOR, "("):
                return self._function_call(token.text)
            # Qualified name or qualified star.
            if self._peek().matches(TokenType.OPERATOR, "."):
                self._advance()
                if self.accept_operator("*"):
                    return n.Star(table=token.text)
                member = self.expect_identifier("column name")
                return n.Name(member, table=token.text)
            return n.Name(token.text)

        raise self._error("expected an expression")

    def _case(self) -> n.CaseExpr:
        operand: n.Expr | None = None
        if not self.peek_keyword("when"):
            operand = self.expression()
        whens: list[tuple[n.Expr, n.Expr]] = []
        while self.accept_keyword("when"):
            condition = self.expression()
            self.expect_keyword("then")
            whens.append((condition, self.expression()))
        otherwise = self.expression() if self.accept_keyword("else") else None
        self.expect_keyword("end")
        if not whens:
            raise self._error("CASE requires at least one WHEN")
        return n.CaseExpr(tuple(whens), otherwise, operand)

    def _function_call(self, name: str) -> n.Expr:
        self.expect_operator("(")
        distinct = self.accept_keyword("distinct")
        args: list[n.Expr] = []
        if not self._peek().matches(TokenType.OPERATOR, ")"):
            args.append(self.expression())
            while self.accept_operator(","):
                args.append(self.expression())
        self.expect_operator(")")
        window: n.WindowSpec | None = None
        if self.accept_keyword("over"):
            self.expect_operator("(")
            partition_by: tuple[n.Expr, ...] = ()
            order_by: tuple[tuple[n.Expr, bool], ...] = ()
            if self.accept_keyword("partition"):
                self.expect_keyword("by")
                exprs = [self.expression()]
                while self.accept_operator(","):
                    exprs.append(self.expression())
                partition_by = tuple(exprs)
            if self.accept_keyword("order"):
                self.expect_keyword("by")
                order_by = self._order_items()
            self.expect_operator(")")
            window = n.WindowSpec(partition_by, order_by)
        return n.FnCall(name.lower(), tuple(args), distinct, window)
