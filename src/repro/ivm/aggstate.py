"""The per-DT aggregate state store: O(|delta|) aggregate maintenance.

Section 5.5.3 of the paper: "none of our derivatives so far reuse the
state from preceding data timestamps already stored in the DT. They all
work by computing changes purely in terms of the sources." For grouped
aggregation that stance makes every refresh cost O(|affected groups|):
the affected-group rule recomputes each touched group at both interval
endpoints, so one inserted row into a million-row group re-aggregates a
million rows. This module is the state-carrying alternative: a
:class:`AggStateStore` holds one retractable accumulator set per output
group (:mod:`repro.engine.aggregates`), and the stateful rules in
:mod:`repro.ivm.rules_agg` fold the child delta straight into it — one
insert/retract per delta row — emitting the output diff from the touched
accumulators alone, with no endpoint recompute.

Carrying state across refreshes makes *interval continuity* load-bearing:
the accumulators describe the child exactly at the data timestamp the
store was last advanced to, so a fold is only sound when the incoming
interval's ``old`` endpoint equals that timestamp. :meth:`AggStateStore.
begin_refresh` enforces this — an out-of-order or overlapping interval, a
changed plan fingerprint (DDL epoch, query text, UDF registry), or a
previous refresh that began but never committed (the dirty flag) all
cause the store to drop its state and reinitialize lazily rather than
silently corrupt, and anomalies detected *during* a fold (a retraction
with no matching insert — the :class:`~repro.engine.aggregates.
RetractionError` / :class:`~repro.errors.RowIdIntegrityError` class of
corruption) invalidate the store and fall back to recomputation for that
refresh.

Because the implicit group of a scalar aggregate is just one more
accumulator set (that never vanishes), statefulness also lifts the
section 3.3.2 restriction: ``SELECT COUNT(*) FROM t`` is incrementally
maintainable here.

:func:`force_stateless` pins the old endpoint-recompute path (the paper's
production semantics) for reference testing and the ablation benchmark.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Sequence

from repro.engine import types as t
from repro.engine.aggregates import (Accumulator, RetractionError,
                                     make_accumulator, retractable_call)
from repro.engine.expressions import (EvalContext, compile_expression_columnar,
                                      compile_row_columnar)
from repro.engine.relation import Relation
from repro.engine.types import SqlType
from repro.errors import InternalError
from repro.ivm import rowid
from repro.ivm.changes import ChangeSet
from repro.plan import logical as lp
from repro.util.parallel import (MIN_PARALLEL_ROWS, chunk_spans, fanout_map,
                                 fanout_pool)


class AggStateInconsistency(InternalError):
    """The delta stream contradicts the stored accumulators (retraction of
    a row the state never saw, a group count below zero). Like
    :class:`~repro.errors.RowIdIntegrityError`, this marks state that must
    not be trusted; the stateful rule invalidates the store and recomputes."""


# ---------------------------------------------------------------------------
# The endpoint-recompute ablation switch
# ---------------------------------------------------------------------------

_FORCE_STATELESS = False


def stateless_forced() -> bool:
    """Whether :func:`force_stateless` is active."""
    return _FORCE_STATELESS


@contextmanager
def force_stateless():
    """Pin the aggregate rules to the endpoint-recompute path (the paper's
    stateless production semantics), ignoring any state store. Reference
    semantics for the equivalence property test and the baseline of the
    stateful-aggregation ablation benchmark. Refreshes run under this
    switch do not advance any store, so a store re-enabled afterwards
    self-heals via the interval-continuity check."""
    global _FORCE_STATELESS
    saved = _FORCE_STATELESS
    _FORCE_STATELESS = True
    try:
        yield
    finally:
        _FORCE_STATELESS = saved


# ---------------------------------------------------------------------------
# Which plan nodes can be maintained statefully
# ---------------------------------------------------------------------------

#: Key/row types whose grouping representative can differ between equal
#: keys (1 vs 1.0, NaN, variants), which would make the stored rows and
#: row ids diverge from scan-order recomputation.
_INEXACT_KEY_TYPES = (SqlType.FLOAT, SqlType.VARIANT)


def stateful_aggregate_supported(plan: lp.Aggregate) -> tuple[bool, str]:
    """Whether an Aggregate node can take the stateful fold path; returns
    ``(supported, reason-why-not)``."""
    for expr in plan.group_exprs:
        if expr.type in _INEXACT_KEY_TYPES:
            return False, (f"{expr.type} grouping keys have order-dependent "
                           "representatives")
    for call in plan.aggregates:
        if not retractable_call(call):
            return False, f"{call!r} has no exact retractable accumulator"
    return True, ""


def stateful_distinct_supported(plan: lp.Distinct) -> tuple[bool, str]:
    """Whether a Distinct node can take the count-per-value path."""
    for name, sql_type in zip(plan.schema.names, plan.schema.types):
        if sql_type in _INEXACT_KEY_TYPES:
            return False, (f"column {name} is {sql_type}: distinct "
                           "representatives are order-dependent")
    return True, ""


def refresh_strategy(plan: lp.PlanNode) -> list[tuple[lp.PlanNode, str, str]]:
    """Per aggregate-class node: ``(node, "stateful" | "recompute",
    reason)``. Static plan property, surfaced by ``EXPLAIN``."""
    strategies = []
    for node in plan.walk():
        if isinstance(node, lp.Aggregate):
            supported, reason = stateful_aggregate_supported(node)
        elif isinstance(node, lp.Distinct):
            supported, reason = stateful_distinct_supported(node)
        else:
            continue
        strategies.append(
            (node, "stateful" if supported else "recompute", reason))
    return strategies


# ---------------------------------------------------------------------------
# Per-node state
# ---------------------------------------------------------------------------

def transpose_rows(rows: Sequence[tuple]) -> list[tuple]:
    """Rows → columns (one pass; [] for an empty or zero-width slice)."""
    if not rows:
        return []
    return list(zip(*rows))


def _relation_columns(relation: Relation) -> tuple[list, int]:
    count = len(relation)
    if not count:
        return [], 0
    if relation.is_columnar:
        return list(relation.columns), count
    return transpose_rows(relation.rows), count


def _parallel_spans(count: int) -> Optional[list[tuple[int, int]]]:
    """Contiguous chunk spans for fanning a ``count``-row columnar slice
    out to the refresh's partition pool — or None when no pool is
    installed / the slice is too small to be worth splitting."""
    pool = fanout_pool()
    if pool is None or count < 2 * MIN_PARALLEL_ROWS:
        return None
    spans = chunk_spans(count, pool.workers)
    return spans if len(spans) > 1 else None


def _chunked_eval(site: str, fn, columns: Sequence[Sequence], count: int,
                  spans: list[tuple[int, int]]) -> list:
    """Evaluate a compiled columnar function chunk-by-chunk on the
    partition pool, concatenating the per-span results in span order —
    the compiled functions are pure per-row maps, so the concatenation is
    element-for-element identical to one whole-slice call."""
    def run(span: tuple[int, int]) -> list:
        start, stop = span
        return fn([column[start:stop] for column in columns], stop - start)

    parts = fanout_map(site, run, spans)
    out: list = []
    for part in parts:
        out.extend(part)
    return out


def _chunked_eval_rows(site: str, fn, columns: Sequence[Sequence],
                       count: int, spans: list[tuple[int, int]]) -> list:
    """Like :func:`_chunked_eval` for compiled functions returning one
    array *per expression* (``compile_row_columnar``): the per-span
    results concatenate array-wise."""
    def run(span: tuple[int, int]) -> list:
        start, stop = span
        return fn([column[start:stop] for column in columns], stop - start)

    parts = fanout_map(site, run, spans)
    # The compiled functions may hand back tuples; copy into lists so
    # the span results concatenate regardless.
    out = [list(array) for array in parts[0]]
    for part in parts[1:]:
        for array, extra in zip(out, part):
            array.extend(extra)
    return out


class _Group:
    """One output group: its key representative, raw row count, and one
    accumulator per aggregate call."""

    __slots__ = ("key_values", "count", "accumulators")

    def __init__(self, key_values: tuple, accumulators: list[Accumulator]):
        self.key_values = key_values
        self.count = 0
        self.accumulators = accumulators


class AggregateNodeState:
    """Accumulator state for one Aggregate node.

    ``groups`` maps the NULL-safe group key to a :class:`_Group`;
    :meth:`fold` applies a consolidated child delta (deletes retract,
    inserts insert) and returns the output diff of the touched groups.
    A scalar aggregate keeps its single implicit group alive at zero rows
    (SQL: the empty aggregate still yields one row).
    """

    def __init__(self, plan: lp.Aggregate):
        self.plan = plan
        self.groups: dict[tuple, _Group] = {}
        self.initialized = False
        #: Structural signature of the node, set by the store (keying
        #: defense in depth).
        self.signature = ""

    # -- construction --------------------------------------------------------

    def _fresh_accumulators(self) -> list[Accumulator]:
        return [make_accumulator(call) for call in self.plan.aggregates]

    def initialize(self, child: Relation, ctx: EvalContext) -> None:
        """Build the state from a full scan of the child at the interval
        start (paid once; every later refresh folds deltas only). Under a
        partition pool the one-big-child-scan splits into contiguous
        chunks folded into per-chunk partial states, combined via each
        accumulator's exact ``merge()``."""
        self.groups.clear()
        columns, count = _relation_columns(child)
        spans = _parallel_spans(count)
        if spans is None:
            self._apply(columns, count, ctx, insert=True, touched=None)
        else:
            self._initialize_parallel(columns, ctx, spans)
        if self.plan.is_scalar and not self.groups:
            self.groups[t.group_key(())] = _Group(
                (), self._fresh_accumulators())
        self.initialized = True

    def _initialize_parallel(self, columns: Sequence[Sequence],
                             ctx: EvalContext,
                             spans: list[tuple[int, int]]) -> None:
        """Chunked initialization: each chunk builds a fresh partial
        state (insert-only, so no retraction can miss a group), then the
        partials merge *in chunk order* — counts add, accumulators
        ``merge()``. The stateful gate admits exact accumulators only, so
        the merge is associative and the combined state — including the
        group-dict insertion order, which is first-occurrence order
        across ordered chunks, exactly as one serial scan would produce —
        is identical to the serial initialization."""
        def scan_chunk(span: tuple[int, int]) -> "AggregateNodeState":
            start, stop = span
            partial = AggregateNodeState(self.plan)
            partial._apply([column[start:stop] for column in columns],
                           stop - start, ctx, insert=True, touched=None)
            return partial

        groups = self.groups
        for partial in fanout_map("agg-init", scan_chunk, spans):
            for key, group in partial.groups.items():
                mine = groups.get(key)
                if mine is None:
                    groups[key] = group  # partials are discarded: adopt
                else:
                    mine.count += group.count
                    for accumulator, other in zip(mine.accumulators,
                                                  group.accumulators):
                        accumulator.merge(other)

    # -- the fold ------------------------------------------------------------

    def fold(self, delta: ChangeSet, ctx: EvalContext) -> ChangeSet:
        """Fold a consolidated child delta into the state — one
        insert/retract per delta row — and emit the output diff computed
        from the touched groups' accumulators alone."""
        touched: dict[tuple, tuple[tuple, Optional[tuple]]] = {}
        __, delete_rows = delta.delete_arrays()
        __, insert_rows = delta.insert_arrays()
        self._apply(transpose_rows(delete_rows), len(delete_rows), ctx,
                    insert=False, touched=touched)
        self._apply(transpose_rows(insert_rows), len(insert_rows), ctx,
                    insert=True, touched=touched)

        out = ChangeSet()
        scalar = self.plan.is_scalar
        for key, (key_values, old_row) in touched.items():
            group = self.groups.get(key)
            new_row = None
            if group is not None:
                if group.count or scalar:
                    new_row = (tuple(group.key_values)
                               + tuple(accumulator.finalize()
                                       for accumulator in group.accumulators))
                else:
                    del self.groups[key]  # group vanished: reclaim state
            row_id = rowid.group_id(key_values)
            if old_row is None:
                if new_row is not None:
                    out.insert(row_id, new_row)
            elif new_row is None:
                out.delete(row_id, old_row)
            elif new_row != old_row:
                out.delete(row_id, old_row)
                out.insert(row_id, new_row)
        return out

    def _apply(self, columns: Sequence[Sequence], count: int,
               ctx: EvalContext, insert: bool,
               touched: Optional[dict]) -> None:
        """Fold one side of a delta (or the initialization scan): bucket
        the rows by group key columnar-style, then feed each group's
        argument slices to its accumulators via the vectorized
        ``insert_arrays``/``retract_arrays``."""
        if not count:
            return
        plan = self.plan
        groups = self.groups
        #: Large folds chunk their pure columnar passes across the
        #: partition pool (deterministic expressions only: per-row maps,
        #: concatenated in span order, are identical to one full pass).
        spans = _parallel_spans(count)

        # Bucket row indices per group key, one columnar key pass.
        buckets: dict[tuple, tuple[tuple, list[int]]] = {}
        if plan.group_exprs:
            key_fn = compile_row_columnar(plan.group_exprs, ctx)
            if spans is not None and all(expr.is_deterministic
                                         for expr in plan.group_exprs):
                key_arrays = _chunked_eval_rows("fold-keys", key_fn,
                                                columns, count, spans)
            else:
                key_arrays = key_fn(columns, count)
            group_key = t.group_key
            for index, key_values in enumerate(zip(*key_arrays)):
                key = group_key(key_values)
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = bucket = (key_values, [])
                bucket[1].append(index)
        else:
            buckets[t.group_key(())] = ((), list(range(count)))

        # One columnar pass per aggregate argument over the whole slice.
        arg_arrays: list[Optional[Sequence]] = []
        for call in plan.aggregates:
            if call.arg is None:
                arg_arrays.append(None)
                continue
            arg_fn = compile_expression_columnar(call.arg, ctx)
            if spans is not None and call.arg.is_deterministic:
                arg_arrays.append(_chunked_eval("fold-args", arg_fn,
                                                columns, count, spans))
            else:
                arg_arrays.append(arg_fn(columns, count))

        for key, (key_values, indices) in buckets.items():
            group = groups.get(key)
            if group is None:
                if not insert:
                    raise AggStateInconsistency(
                        f"retraction into unknown group {key_values!r}")
                group = _Group(key_values, self._fresh_accumulators())
                groups[key] = group
            if touched is not None and key not in touched:
                touched[key] = (group.key_values, self._finalized(group))
            if insert:
                group.count += len(indices)
            else:
                group.count -= len(indices)
                if group.count < 0:
                    raise AggStateInconsistency(
                        f"group {key_values!r} retracted below zero rows")
            for accumulator, arg_array in zip(group.accumulators, arg_arrays):
                if arg_array is None:
                    values: Sequence = indices  # count(*): length only
                elif len(indices) == count:
                    values = arg_array
                else:
                    values = [arg_array[index] for index in indices]
                if insert:
                    accumulator.insert_arrays(values)
                else:
                    accumulator.retract_arrays(values)

    def _finalized(self, group: _Group) -> Optional[tuple]:
        """The group's current output row, or None when it emits none."""
        if not group.count and not self.plan.is_scalar:
            return None
        return (tuple(group.key_values)
                + tuple(accumulator.finalize()
                        for accumulator in group.accumulators))


class DistinctNodeState:
    """Count-per-value state for one Distinct node: each distinct output
    row is a "group" whose accumulator is just its multiplicity."""

    def __init__(self, plan: lp.Distinct):
        self.plan = plan
        self.rows: dict[tuple, list] = {}  # key -> [count, representative]
        self.initialized = False
        self.signature = ""  # set by the store (keying defense in depth)

    def initialize(self, child: Relation, ctx: EvalContext) -> None:
        self.rows.clear()
        columns, count = _relation_columns(child)
        spans = _parallel_spans(count)
        if spans is None:
            for row, key in zip(_iter_rows(columns, count),
                                t.group_key_columns(columns, count)):
                entry = self.rows.get(key)
                if entry is None:
                    self.rows[key] = [1, row]
                else:
                    entry[0] += 1
        else:
            self._initialize_parallel(columns, spans)
        self.initialized = True

    def _initialize_parallel(self, columns: Sequence[Sequence],
                             spans: list[tuple[int, int]]) -> None:
        """Chunked distinct-count scan, merged in chunk order: counts
        add, and the earlier chunk's representative wins — which is the
        serial scan's first-occurrence representative. (The stateful gate
        excludes inexact types, so representatives of equal keys are
        value-identical anyway.)"""
        def scan_chunk(span: tuple[int, int]) -> dict[tuple, list]:
            start, stop = span
            chunk = [column[start:stop] for column in columns]
            size = stop - start
            local: dict[tuple, list] = {}
            for row, key in zip(_iter_rows(chunk, size),
                                t.group_key_columns(chunk, size)):
                entry = local.get(key)
                if entry is None:
                    local[key] = [1, row]
                else:
                    entry[0] += 1
            return local

        rows = self.rows
        for local in fanout_map("distinct-init", scan_chunk, spans):
            for key, entry in local.items():
                mine = rows.get(key)
                if mine is None:
                    rows[key] = entry
                else:
                    mine[0] += entry[0]

    def fold(self, delta: ChangeSet, ctx: EvalContext) -> ChangeSet:
        touched: dict[tuple, Optional[tuple]] = {}
        rows = self.rows
        __, delete_rows = delta.delete_arrays()
        __, insert_rows = delta.insert_arrays()

        delete_columns = transpose_rows(delete_rows)
        for row, key in zip(delete_rows,
                            t.group_key_columns(delete_columns,
                                                len(delete_rows))):
            entry = rows.get(key)
            if entry is None or entry[0] <= 0:
                raise AggStateInconsistency(
                    f"retraction of unknown distinct row {row!r}")
            if key not in touched:
                touched[key] = entry[1]
            entry[0] -= 1

        insert_columns = transpose_rows(insert_rows)
        for row, key in zip(insert_rows,
                            t.group_key_columns(insert_columns,
                                                len(insert_rows))):
            entry = rows.get(key)
            if entry is None:
                rows[key] = entry = [0, row]
            if key not in touched:
                touched[key] = entry[1] if entry[0] else None
            if not entry[0]:
                entry[1] = row  # fresh (or vanished-and-reborn) key
            entry[0] += 1

        out = ChangeSet()
        for key, old_row in touched.items():
            entry = rows.get(key)
            new_row = None
            if entry is not None:
                if entry[0]:
                    new_row = entry[1]
                else:
                    del rows[key]
            if old_row is None:
                if new_row is not None:
                    out.insert(rowid.distinct_id(new_row), new_row)
            elif new_row is None:
                out.delete(rowid.distinct_id(old_row), old_row)
            # both present: the representative is value-identical (the
            # stateful gate excludes inexact types), so nothing changed.
        return out


def _iter_rows(columns: Sequence[Sequence], count: int):
    if columns:
        return zip(*columns)
    return iter([()] * count)


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

class AggStateStore:
    """All aggregate-class node states of one DT, with the lifecycle that
    keeps carrying state sound:

    * **lazy initialization** — node states build themselves from a full
      scan of their child at the interval start, on first stateful use;
    * **interval continuity** — :meth:`begin_refresh` reinitializes when
      the incoming interval's ``old`` token differs from the token the
      store was advanced to (out-of-order / overlapping refresh), when the
      plan fingerprint changed (DDL epoch, ALTERed query, UDF registry),
      or when a previous refresh began but never committed (crash,
      rollback, failed merge — the dirty flag);
    * **explicit invalidation** — FULL / REINITIALIZE refreshes and
      fold-time anomalies drop the state outright.
    """

    def __init__(self):
        self._nodes: dict[tuple[str, int], object] = {}
        self.fingerprint: Optional[tuple] = None
        #: Token (data timestamp) of the interval end the state describes;
        #: None until the first stateful refresh commits.
        self.advanced_to = None
        self._dirty = False
        #: Reasons for every reset, oldest first (observability & tests).
        self.invalidations: list[str] = []
        #: Node states restored from a checkpoint but not yet claimed:
        #: key -> (signature, hydrate). ``hydrate(plan)`` rebuilds the
        #: node state against the live plan, or returns None when the
        #: snapshot no longer matches the plan's aggregate shape (the
        #: node then reinitializes lazily — the same self-healing path as
        #: a signature mismatch). Populated by
        #: :mod:`repro.durability.checkpoint` during recovery.
        self._restored: dict[tuple[str, int], tuple[str, object]] = {}

    # -- refresh lifecycle ---------------------------------------------------

    def begin_refresh(self, fingerprint: tuple, old_token) -> None:
        """Validate the store against the incoming interval; self-heal by
        resetting (lazy reinitialization) rather than folding into state
        that does not describe the interval's old endpoint."""
        if self._dirty:
            self._reset("previous refresh did not commit")
        elif self.fingerprint is not None and self.fingerprint != fingerprint:
            self._reset("plan changed (DDL epoch / query text / registry)")
        elif self.advanced_to is not None and self.advanced_to != old_token:
            self._reset(
                f"out-of-order refresh interval: state advanced to "
                f"{self.advanced_to!r} but interval starts at {old_token!r}")
        self.fingerprint = fingerprint
        self._dirty = True

    def commit_refresh(self, new_token) -> None:
        """The refresh transaction committed: the state now describes the
        interval end."""
        self._dirty = False
        self.advanced_to = new_token

    def abort_refresh(self) -> None:
        """The refresh failed after (possibly partial) folding: drop the
        state. Also reached implicitly — an aborted refresh that never
        calls this leaves the dirty flag set, and the next begin_refresh
        resets."""
        if self._dirty:
            self._reset("refresh aborted")
            self._dirty = False

    def note_no_data(self, new_token) -> None:
        """A NO_DATA refresh advanced the DT's frontier without touching
        any source: the accumulators still describe the (unchanged) child,
        only the token moves."""
        if not self._dirty and self.advanced_to is not None:
            self.advanced_to = new_token

    def invalidate(self, reason: str) -> None:
        """Drop all state; the next stateful refresh reinitializes."""
        self._reset(reason)

    def _reset(self, reason: str) -> None:
        self._nodes.clear()
        self._restored.clear()
        self.advanced_to = None
        self.invalidations.append(reason)

    # -- node access ---------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    def node_state(self, kind: str, sequence: int, plan: lp.PlanNode):
        """The state of the ``sequence``-th ``kind`` node encountered in
        one differentiation pass. Rules claim their handle once per node
        per differentiation, *before* any early return, so dispatch order
        — and hence the key — is a deterministic function of the plan;
        plan *changes* are caught by the store fingerprint check. As
        defense in depth, each state also records its node's structural
        signature: a mismatch (a keying bug, not a plan change) discards
        that state rather than folding into the wrong accumulators."""
        key = (kind, sequence)
        signature = plan.pretty()
        state = self._nodes.get(key)
        if state is not None and state.signature != signature:
            self.invalidations.append(
                f"node state signature mismatch at {key}: discarded")
            state = None
        if state is None:
            pending = self._restored.pop(key, None)
            if pending is not None and pending[0] == signature:
                state = pending[1](plan)
            if state is None:
                if kind == "Aggregate":
                    state = AggregateNodeState(plan)  # type: ignore[arg-type]
                else:
                    state = DistinctNodeState(plan)   # type: ignore[arg-type]
            state.signature = signature
            self._nodes[key] = state
        return state
