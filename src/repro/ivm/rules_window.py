"""Derivative rule for partitioned window functions.

This is a faithful implementation of the rule in section 5.5.1 of the
paper:

.. math::

   Δ_I(ξ_k(Q)) ⟹ π_-(ξ_k(Q|_{I_0} ⋉_k Δ_I Q)) + π_+(ξ_k(Q|_{I_1} ⋉_k Δ_I Q))

"This derivative works by applying the window function to all partitions
that have changed": semi-join each endpoint of Q against the delta on the
partition keys ``k``, evaluate the window function over those partitions,
emit the old rows as deletions (π₋) and the new rows as insertions (π₊).
Rows whose values did not actually change cancel in consolidation, since
window outputs keep their input row's id.

"It works for all window functions with PARTITION BY clauses (as long as
ties in ORDER BY are broken repeatably)" — our executor always breaks ties
with a stable row digest (:mod:`repro.engine.window`), satisfying the
precondition.

Unpartitioned window functions (empty PARTITION BY) would make every row
one giant "changed partition"; section 3.3.2 scopes incremental support to
*partitioned* window functions, so the properties checker routes
unpartitioned ones to FULL refresh. The rule itself still handles them
correctly (the affected set is the single empty key), which keeps the
ablation benchmark honest.
"""

from __future__ import annotations

from repro.engine.executor import window_relation
from repro.engine.expressions import compile_group_key
from repro.ivm.changes import ChangeSet
from repro.ivm.differentiator import (Differentiator, diff_relations, rule,
                                      semi_join_keys)
from repro.plan import logical as lp


@rule("Window")
def delta_window(differ: Differentiator, plan: lp.Window) -> ChangeSet:
    child_delta = differ.delta(plan.child)
    if not child_delta:
        return ChangeSet()

    # Changed partitions: partition keys of every delta row (Q|_I ⋉_k ΔQ),
    # computed straight off the delta's struct-of-arrays row array.
    key_fn = compile_group_key(plan.partition_exprs, differ.ctx)
    affected = set(map(key_fn, child_delta.rows))

    old_windows = window_relation(
        plan, semi_join_keys(differ.old(plan.child), key_fn, affected),
        differ.ctx)
    new_windows = window_relation(
        plan, semi_join_keys(differ.new(plan.child), key_fn, affected),
        differ.ctx)
    # π₋(old) + π₊(new), with unchanged rows cancelling via the row-id diff.
    return diff_relations(old_windows, new_windows)
