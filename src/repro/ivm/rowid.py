"""Row identifier derivation.

Section 5.5 of the paper: "Incremental DTs define a unique ID for every row
in the query result, and store those IDs alongside the data." And 5.5.2:
"the row IDs we use inside of Dynamic Tables contain plaintext prefixes to
improve the performance of joins using row IDs as a key".

We mirror that design: every operator derives the ids of its output rows
deterministically from the ids (or key values) of its inputs, with a short
**plaintext prefix** identifying the deriving operator followed by a stable
SHA-1-based digest. Determinism is what makes incremental and full
evaluation agree: running the defining query from scratch and applying a
year of deltas must produce rows under identical ids, or the merge in
:mod:`repro.core.refresh` would corrupt the table (the production
validations of section 6.1 exist to catch exactly that).

Prefixes:

====== =====================================
``b``   base-table row (assigned by storage)
``j``   join output (inner match)
``lo``  left-outer padded row
``ro``  right-outer padded row
``u``   union-all branch
``g``   aggregate group
``d``   distinct row
``f``   flattened element
====== =====================================

Projections, filters, and window functions are 1:1 on rows and pass ids
through unchanged.
"""

from __future__ import annotations

import hashlib

from repro.engine import types as t


def base_id(table_seq: int, row_seq: int) -> str:
    """Id for a base-table row; assigned once at insert and never reused."""
    return f"b{table_seq}:{row_seq}"


def _digest(*parts: str) -> str:
    hasher = hashlib.sha1()
    for part in parts:
        hasher.update(part.encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()[:16]


def join_id(left_id: str, right_id: str) -> str:
    """Id of an inner-join output row: a function of both input ids."""
    return f"j:{_digest(left_id, right_id)}"


def outer_left_id(left_id: str) -> str:
    """Id of a left-outer padded row (left row with NULL right side)."""
    return f"lo:{_digest(left_id)}"


def outer_right_id(right_id: str) -> str:
    """Id of a right-outer padded row."""
    return f"ro:{_digest(right_id)}"


def union_id(branch: int, input_id: str) -> str:
    """Id of a union-all output row; the branch tag keeps identical rows
    from different branches distinct (bag semantics)."""
    return f"u{branch}:{input_id}"


def group_id(key_values: tuple) -> str:
    """Id of an aggregate output row: derived from the group key only, so
    a group keeps its identity as its aggregates change (updates become
    delete+insert under the same id)."""
    return f"g:{t.stable_hash(key_values)}"


def distinct_id(row: tuple) -> str:
    """Id of a DISTINCT output row: derived from the full row value."""
    return f"d:{t.stable_hash(row)}"


def flatten_id(input_id: str, element_index: int) -> str:
    """Id of a LATERAL FLATTEN output row."""
    return f"f:{_digest(input_id, str(element_index))}"
