"""Change sets: the ``$ACTION`` / ``$ROW_ID`` delta representation.

Section 5.5 of the paper: a differentiated query Δ_I Q "outputs the changes
in that query over a data timestamp interval I. These changes are a set of
rows with the same columns as Q, plus 2 additional metadata columns. The
$ACTION column indicates whether a row represents an insertion or a
deletion in the DT. Updates are represented as both actions for the same
row. The $ROW_ID column provides the identifier of the row to be modified.
The differentiation framework guarantees that a set of changes never
contains more than 1 row for each unique $ROW_ID, $ACTION pair, which
ensures that the merge operation is well-defined."

Layout: a :class:`ChangeSet` is **struct-of-arrays** — three parallel
arrays ``actions`` / ``row_ids`` / ``rows`` — rather than a list of
per-row objects. Deltas on the refresh hot path routinely carry 100k+
rows; the SoA layout lets whole-partition delta building, projection
rules, and consolidation work by bulk array extension
(:meth:`ChangeSet.insert_many` / :meth:`delete_many` / :meth:`extend`)
instead of allocating one :class:`Change` per row. The per-row
:class:`Change` NamedTuple remains the unit of iteration (``__iter__``,
:attr:`changes`, :meth:`inserts`, :meth:`deletes` all yield it), so
row-oriented consumers are unaffected.

:func:`consolidate` implements the change-consolidation step referenced in
section 5.5.2 (and the insert-only specialization that allows skipping it);
:meth:`ChangeSet.validate` implements the two production invariants of
section 6.1 that "shielded customers from data corruption".
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, Mapping, NamedTuple, Sequence, Union


from repro.errors import ChangeIntegrityError


class Action(enum.Enum):
    """The ``$ACTION`` metadata column."""

    INSERT = "insert"
    DELETE = "delete"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Change(NamedTuple):
    """One delta row: ``($ACTION, $ROW_ID, values...)``.

    A NamedTuple rather than a dataclass: changes are materialized from
    the struct-of-arrays store on demand, and tuple construction skips the
    per-field ``object.__setattr__`` cost of frozen dataclasses.
    """

    action: Action
    row_id: str
    row: tuple

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sign = "+" if self.action == Action.INSERT else "-"
        return f"{sign}{self.row_id}{self.row!r}"


class ChangeSet:
    """An ordered bag of changes, stored struct-of-arrays.

    ``actions[i]`` / ``row_ids[i]`` / ``rows[i]`` describe change ``i``.
    Order matters only *before* consolidation (an insert and a delete of
    the same row id cancel in sequence order); a consolidated change set is
    a well-defined merge: at most one row per ``($ROW_ID, $ACTION)`` pair.
    """

    __slots__ = ("actions", "row_ids", "rows")

    def __init__(self, changes: Iterable[Change] = ()):
        self.actions: list[Action] = []
        self.row_ids: list[str] = []
        self.rows: list[tuple] = []
        for action, row_id, row in changes:
            self.actions.append(action)
            self.row_ids.append(row_id)
            self.rows.append(row)

    @staticmethod
    def from_arrays(actions: list, row_ids: list, rows: list) -> "ChangeSet":
        """Adopt parallel arrays by reference (no copy)."""
        changes = ChangeSet.__new__(ChangeSet)
        changes.actions = actions
        changes.row_ids = row_ids
        changes.rows = rows
        return changes

    @property
    def changes(self) -> list[Change]:
        """The changes as a list of :class:`Change` (materialized view)."""
        return [Change(action, row_id, row) for action, row_id, row
                in zip(self.actions, self.row_ids, self.rows)]

    @changes.setter
    def changes(self, value: Iterable[Change]) -> None:
        actions: list[Action] = []
        row_ids: list[str] = []
        rows: list[tuple] = []
        for action, row_id, row in value:
            actions.append(action)
            row_ids.append(row_id)
            rows.append(row)
        self.actions = actions
        self.row_ids = row_ids
        self.rows = rows

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self) -> Iterator[Change]:
        return map(Change._make, zip(self.actions, self.row_ids, self.rows))

    def __bool__(self) -> bool:
        return bool(self.actions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ChangeSet({self.changes!r})"

    # -- per-row mutation ------------------------------------------------------

    def append(self, change: Change) -> None:
        self.actions.append(change[0])
        self.row_ids.append(change[1])
        self.rows.append(change[2])

    def insert(self, row_id: str, row: tuple) -> None:
        self.actions.append(Action.INSERT)
        self.row_ids.append(row_id)
        self.rows.append(row)

    def delete(self, row_id: str, row: tuple) -> None:
        self.actions.append(Action.DELETE)
        self.row_ids.append(row_id)
        self.rows.append(row)

    def extend(self, other: Union["ChangeSet", Iterable[Change]]) -> None:
        if isinstance(other, ChangeSet):
            # Bulk array concatenation — no per-change objects.
            self.actions.extend(other.actions)
            self.row_ids.extend(other.row_ids)
            self.rows.extend(other.rows)
            return
        for change in other:
            self.append(change)

    # -- bulk mutation ---------------------------------------------------------

    def insert_many(self, row_ids: Sequence[str],
                    rows: Sequence[tuple]) -> None:
        """Append one INSERT per ``(row_id, row)`` by array extension —
        how whole-partition column slices enter a delta."""
        self.actions.extend([Action.INSERT] * len(row_ids))
        self.row_ids.extend(row_ids)
        self.rows.extend(rows)

    def delete_many(self, row_ids: Sequence[str],
                    rows: Sequence[tuple]) -> None:
        """Append one DELETE per ``(row_id, row)`` by array extension."""
        self.actions.extend([Action.DELETE] * len(row_ids))
        self.row_ids.extend(row_ids)
        self.rows.extend(rows)

    # -- reads -----------------------------------------------------------------

    def inserts(self) -> list[Change]:
        insert = Action.INSERT
        return [Change(action, row_id, row) for action, row_id, row
                in zip(self.actions, self.row_ids, self.rows)
                if action is insert]

    def deletes(self) -> list[Change]:
        delete = Action.DELETE
        return [Change(action, row_id, row) for action, row_id, row
                in zip(self.actions, self.row_ids, self.rows)
                if action is delete]

    def insert_arrays(self) -> tuple[list[str], list[tuple]]:
        """``(row_ids, rows)`` of the insertions, as parallel arrays."""
        return self._arrays_of(Action.INSERT)

    def delete_arrays(self) -> tuple[list[str], list[tuple]]:
        """``(row_ids, rows)`` of the deletions, as parallel arrays."""
        return self._arrays_of(Action.DELETE)

    def _arrays_of(self, which: Action) -> tuple[list[str], list[tuple]]:
        if which not in self.actions:
            return [], []
        row_ids: list[str] = []
        rows: list[tuple] = []
        for action, row_id, row in zip(self.actions, self.row_ids, self.rows):
            if action is which:
                row_ids.append(row_id)
                rows.append(row)
        return row_ids, rows

    @property
    def insert_only(self) -> bool:
        """True when the set contains no deletions — the extremely common
        workload shape that section 5.5.2 specializes for."""
        # ``in`` keeps the scan in C: enum equality is identity.
        return Action.DELETE not in self.actions

    def validate(self, existing_row_ids: Mapping[str, object] | None = None) -> None:
        """Check the section 6.1 incremental-refresh invariants.

        1. "there should never be more than 1 row with the same
           ``$ROW_ID, $ACTION`` pair";
        2. "we should never try to delete a row that does not exist" —
           checked against ``existing_row_ids`` when provided (the target
           table's current row ids). Inserting an id that already exists
           (and is not also deleted in this set) is the symmetric
           corruption and is rejected too.

        Raises :class:`~repro.errors.ChangeIntegrityError`.
        """
        delete = Action.DELETE
        inserted: set[str] = set()
        deleted: set[str] = set()
        for action, row_id in zip(self.actions, self.row_ids):
            seen = deleted if action is delete else inserted
            if row_id in seen:
                raise ChangeIntegrityError(
                    f"duplicate ($ROW_ID, $ACTION) pair: {(row_id, action)}")
            seen.add(row_id)
        if existing_row_ids is not None:
            for action, row_id in zip(self.actions, self.row_ids):
                exists = row_id in existing_row_ids
                if action is delete:
                    if not exists:
                        raise ChangeIntegrityError(
                            f"delete of nonexistent row: {row_id}")
                elif exists and row_id not in deleted:
                    raise ChangeIntegrityError(
                        f"insert of already-present row: {row_id}")


#: Internal consolidation states.
_ABSENT = 0       # not seen in this interval
_INSERTED = 1     # net-new in this interval
_DELETED = 2      # pre-existing row deleted in this interval


def consolidate(changes: Union[ChangeSet, Iterable[Change]]) -> ChangeSet:
    """Collapse an ordered change sequence to its net effect.

    Per row id, in sequence order:

    * insert then delete cancels (the row came and went within the
      interval);
    * delete then insert of an identical row cancels (this is the
      read-amplification elimination of section 5.5.2: copy-on-write
      partition rewrites re-emit untouched rows, which must vanish from
      the delta);
    * delete then insert of a different row becomes an update (one DELETE
      of the old row and one INSERT of the new, same row id);
    * duplicate inserts (or duplicate deletes) of the same id raise
      :class:`~repro.errors.ChangeIntegrityError` — they indicate a bug in
      a derivative rule.

    The result satisfies :meth:`ChangeSet.validate`'s pair-uniqueness
    invariant by construction. Output order: deletes first, then inserts
    (the merge applies deletions before insertions). Operates directly on
    the struct-of-arrays store — one pass over the input triples, bulk
    array construction of the result, no per-row Change allocation.
    """
    if isinstance(changes, ChangeSet):
        triples = zip(changes.actions, changes.row_ids, changes.rows)
    else:
        triples = ((change[0], change[1], change[2]) for change in changes)

    insert = Action.INSERT
    state: dict[str, int] = {}
    before_rows: dict[str, tuple] = {}
    current_rows: dict[str, tuple] = {}
    order: list[str] = []

    for action, row_id, row in triples:
        status = state.get(row_id, _ABSENT)
        if row_id not in state:
            order.append(row_id)
        if action is insert:
            if status == _INSERTED or (status == _DELETED and row_id in current_rows):
                raise ChangeIntegrityError(
                    f"duplicate insert for row id {row_id}")
            if status == _DELETED:
                current_rows[row_id] = row
            else:
                state[row_id] = _INSERTED
                current_rows[row_id] = row
        else:  # DELETE
            if status == _INSERTED:
                # Insert+delete within the interval cancels entirely.
                state[row_id] = _ABSENT
                current_rows.pop(row_id, None)
            elif status == _DELETED:
                if row_id in current_rows:
                    # delete(old) insert(new) delete(new): still a delete of old.
                    current_rows.pop(row_id)
                else:
                    raise ChangeIntegrityError(
                        f"duplicate delete for row id {row_id}")
            else:
                state[row_id] = _DELETED
                before_rows[row_id] = row

    delete_ids: list[str] = []
    delete_rows: list[tuple] = []
    insert_ids: list[str] = []
    insert_rows: list[tuple] = []
    for row_id in order:
        status = state.get(row_id, _ABSENT)
        if status == _DELETED:
            before = before_rows[row_id]
            if row_id in current_rows:
                after = current_rows[row_id]
                if after == before:
                    continue  # data-equivalent rewrite: cancels
                delete_ids.append(row_id)
                delete_rows.append(before)
                insert_ids.append(row_id)
                insert_rows.append(after)
            else:
                delete_ids.append(row_id)
                delete_rows.append(before)
        elif status == _INSERTED:
            insert_ids.append(row_id)
            insert_rows.append(current_rows[row_id])

    return ChangeSet.from_arrays(
        [Action.DELETE] * len(delete_ids) + [Action.INSERT] * len(insert_ids),
        delete_ids + insert_ids,
        delete_rows + insert_rows)


def invert(changes: ChangeSet) -> ChangeSet:
    """Swap inserts and deletes (useful in tests and undo paths)."""
    insert, delete = Action.INSERT, Action.DELETE
    return ChangeSet.from_arrays(
        [delete if action is insert else insert for action in changes.actions],
        list(changes.row_ids), list(changes.rows))
