"""Change sets: the ``$ACTION`` / ``$ROW_ID`` delta representation.

Section 5.5 of the paper: a differentiated query Δ_I Q "outputs the changes
in that query over a data timestamp interval I. These changes are a set of
rows with the same columns as Q, plus 2 additional metadata columns. The
$ACTION column indicates whether a row represents an insertion or a
deletion in the DT. Updates are represented as both actions for the same
row. The $ROW_ID column provides the identifier of the row to be modified.
The differentiation framework guarantees that a set of changes never
contains more than 1 row for each unique $ROW_ID, $ACTION pair, which
ensures that the merge operation is well-defined."

:func:`consolidate` implements the change-consolidation step referenced in
section 5.5.2 (and the insert-only specialization that allows skipping it);
:meth:`ChangeSet.validate` implements the two production invariants of
section 6.1 that "shielded customers from data corruption".
"""

from __future__ import annotations

import enum
from operator import itemgetter
from typing import Iterable, Iterator, Mapping, NamedTuple

from repro.errors import ChangeIntegrityError

_ACTION_OF = itemgetter(0)


class Action(enum.Enum):
    """The ``$ACTION`` metadata column."""

    INSERT = "insert"
    DELETE = "delete"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Change(NamedTuple):
    """One delta row: ``($ACTION, $ROW_ID, values...)``.

    A NamedTuple rather than a dataclass: changes are allocated once per
    delta row on the refresh hot path, and tuple construction skips the
    per-field ``object.__setattr__`` cost of frozen dataclasses.
    """

    action: Action
    row_id: str
    row: tuple

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sign = "+" if self.action == Action.INSERT else "-"
        return f"{sign}{self.row_id}{self.row!r}"


class ChangeSet:
    """An ordered bag of :class:`Change`.

    Order matters only *before* consolidation (an insert and a delete of
    the same row id cancel in sequence order); a consolidated change set is
    a well-defined merge: at most one row per ``($ROW_ID, $ACTION)`` pair.
    """

    __slots__ = ("changes",)

    def __init__(self, changes: Iterable[Change] = ()):
        self.changes: list[Change] = list(changes)

    def __len__(self) -> int:
        return len(self.changes)

    def __iter__(self) -> Iterator[Change]:
        return iter(self.changes)

    def __bool__(self) -> bool:
        return bool(self.changes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ChangeSet({self.changes!r})"

    def append(self, change: Change) -> None:
        self.changes.append(change)

    def insert(self, row_id: str, row: tuple) -> None:
        self.changes.append(Change(Action.INSERT, row_id, row))

    def delete(self, row_id: str, row: tuple) -> None:
        self.changes.append(Change(Action.DELETE, row_id, row))

    def extend(self, other: Iterable[Change]) -> None:
        self.changes.extend(other)

    def inserts(self) -> list[Change]:
        insert = Action.INSERT
        return [change for change in self.changes if change.action is insert]

    def deletes(self) -> list[Change]:
        delete = Action.DELETE
        return [change for change in self.changes if change.action is delete]

    @property
    def insert_only(self) -> bool:
        """True when the set contains no deletions — the extremely common
        workload shape that section 5.5.2 specializes for."""
        # `map` + `in` keeps the scan in C: enum equality is identity.
        return Action.DELETE not in map(_ACTION_OF, self.changes)

    def validate(self, existing_row_ids: Mapping[str, object] | None = None) -> None:
        """Check the section 6.1 incremental-refresh invariants.

        1. "there should never be more than 1 row with the same
           ``$ROW_ID, $ACTION`` pair";
        2. "we should never try to delete a row that does not exist" —
           checked against ``existing_row_ids`` when provided (the target
           table's current row ids). Inserting an id that already exists
           (and is not also deleted in this set) is the symmetric
           corruption and is rejected too.

        Raises :class:`~repro.errors.ChangeIntegrityError`.
        """
        delete = Action.DELETE
        inserted: set[str] = set()
        deleted: set[str] = set()
        for action, row_id, __ in self.changes:
            seen = deleted if action is delete else inserted
            if row_id in seen:
                raise ChangeIntegrityError(
                    f"duplicate ($ROW_ID, $ACTION) pair: {(row_id, action)}")
            seen.add(row_id)
        if existing_row_ids is not None:
            for change in self.changes:
                exists = change.row_id in existing_row_ids
                if change.action is delete:
                    if not exists:
                        raise ChangeIntegrityError(
                            f"delete of nonexistent row: {change.row_id}")
                elif exists and change.row_id not in deleted:
                    raise ChangeIntegrityError(
                        f"insert of already-present row: {change.row_id}")


#: Internal consolidation states.
_ABSENT = 0       # not seen in this interval
_INSERTED = 1     # net-new in this interval
_DELETED = 2      # pre-existing row deleted in this interval


def consolidate(changes: Iterable[Change]) -> ChangeSet:
    """Collapse an ordered change sequence to its net effect.

    Per row id, in sequence order:

    * insert then delete cancels (the row came and went within the
      interval);
    * delete then insert of an identical row cancels (this is the
      read-amplification elimination of section 5.5.2: copy-on-write
      partition rewrites re-emit untouched rows, which must vanish from
      the delta);
    * delete then insert of a different row becomes an update (one DELETE
      of the old row and one INSERT of the new, same row id);
    * duplicate inserts (or duplicate deletes) of the same id raise
      :class:`~repro.errors.ChangeIntegrityError` — they indicate a bug in
      a derivative rule.

    The result satisfies :meth:`ChangeSet.validate`'s pair-uniqueness
    invariant by construction. Output order: deletes first, then inserts
    (the merge applies deletions before insertions).
    """
    state: dict[str, int] = {}
    before_rows: dict[str, tuple] = {}
    current_rows: dict[str, tuple] = {}
    order: list[str] = []

    for change in changes:
        row_id = change.row_id
        status = state.get(row_id, _ABSENT)
        if row_id not in state:
            order.append(row_id)
        if change.action == Action.INSERT:
            if status == _INSERTED or (status == _DELETED and row_id in current_rows):
                raise ChangeIntegrityError(
                    f"duplicate insert for row id {row_id}")
            if status == _DELETED:
                current_rows[row_id] = change.row
            else:
                state[row_id] = _INSERTED
                current_rows[row_id] = change.row
        else:  # DELETE
            if status == _INSERTED:
                # Insert+delete within the interval cancels entirely.
                state[row_id] = _ABSENT
                current_rows.pop(row_id, None)
            elif status == _DELETED:
                if row_id in current_rows:
                    # delete(old) insert(new) delete(new): still a delete of old.
                    current_rows.pop(row_id)
                else:
                    raise ChangeIntegrityError(
                        f"duplicate delete for row id {row_id}")
            else:
                state[row_id] = _DELETED
                before_rows[row_id] = change.row

    result = ChangeSet()
    pending_inserts: list[Change] = []
    for row_id in order:
        status = state.get(row_id, _ABSENT)
        if status == _DELETED:
            before = before_rows[row_id]
            if row_id in current_rows:
                after = current_rows[row_id]
                if after == before:
                    continue  # data-equivalent rewrite: cancels
                result.delete(row_id, before)
                pending_inserts.append(Change(Action.INSERT, row_id, after))
            else:
                result.delete(row_id, before)
        elif status == _INSERTED:
            pending_inserts.append(
                Change(Action.INSERT, row_id, current_rows[row_id]))
    result.extend(pending_inserts)
    return result


def invert(changes: ChangeSet) -> ChangeSet:
    """Swap inserts and deletes (useful in tests and undo paths)."""
    inverted = ChangeSet()
    for change in changes:
        action = (Action.DELETE if change.action == Action.INSERT
                  else Action.INSERT)
        inverted.append(Change(action, change.row_id, change.row))
    return inverted
