"""Derivative rules for grouped aggregation and DISTINCT.

Two strategies, chosen per node per refresh:

**Stateful fold** (the default when a state store is attached and the
node's shape has exact retractable accumulators): the child delta is
folded directly into the per-group accumulator state
(:mod:`repro.ivm.aggstate`) — one insert/retract per delta row, O(|delta|)
total — and the output diff is emitted from the touched accumulators
alone, with no endpoint recompute. This goes beyond the paper's
production system (section 5.5.3 notes no derivative reuses per-DT state)
and also lifts the section 3.3.2 scalar-aggregate restriction: the
implicit group of ``SELECT COUNT(*) FROM t`` is just one more accumulator
set that never vanishes.

**Affected-group recompute** (the paper's semantics; the fallback and the
:func:`~repro.ivm.aggstate.force_stateless` reference): collect the group
keys touched by the input delta, recompute those groups at both interval
endpoints, and diff the results by row id — the grouped analogue of the
window-function derivative (section 5.5.1). Group keys over the delta and
the endpoint semi-joins take the columnar path
(:func:`~repro.engine.expressions.compile_group_key_columnar` /
:func:`~repro.engine.types.group_key_columns`) so a struct-of-arrays
delta never materializes row tuples just to be bucketed.

Either way, an aggregate output row's id derives from its group key only
(:func:`repro.ivm.rowid.group_id`), so a group whose value changes becomes
a DELETE+INSERT under one id — an update — and a group whose input rows
all disappear becomes a plain DELETE.
"""

from __future__ import annotations

from repro.engine import types as t
from repro.engine.executor import aggregate_relation, distinct_relation
from repro.engine.expressions import (compile_group_key,
                                      compile_group_key_columnar)
from repro.errors import RowIdIntegrityError
from repro.ivm import aggstate
from repro.ivm.aggstate import AggStateInconsistency, transpose_rows
from repro.ivm.changes import ChangeSet
from repro.ivm.differentiator import (Differentiator, diff_relations, rule,
                                      semi_join_keys)
from repro.engine.aggregates import RetractionError
from repro.plan import logical as lp

#: Anomalies that mean the store no longer describes the interval's old
#: endpoint; the rule invalidates and falls back to recomputation.
_STATE_ANOMALIES = (AggStateInconsistency, RetractionError,
                    RowIdIntegrityError)


def _stateful_delta(differ: Differentiator, plan: lp.PlanNode, state,
                    child_delta: ChangeSet) -> ChangeSet | None:
    """Try the stateful fold; None means take the recompute path."""
    if state is None:
        return None
    try:
        if not state.initialized:
            state.initialize(differ.old(plan.child), differ.ctx)
        result = state.fold(child_delta, differ.ctx)
    except _STATE_ANOMALIES as anomaly:
        differ.agg_state.invalidate(
            f"{type(anomaly).__name__} during fold: {anomaly}")
        return None
    differ.stats.agg_stateful_folds += 1
    return result


@rule("Aggregate")
def delta_aggregate(differ: Differentiator, plan: lp.Aggregate) -> ChangeSet:
    # Claim the node's state handle BEFORE the empty-delta early return:
    # handles are keyed by encounter order, and every aggregate-class
    # node must claim one per differentiation or a quiet node (empty
    # child delta this interval) would shift later nodes onto the wrong
    # accumulators.
    state = differ.agg_node_state(plan)
    child_delta = differ.delta(plan.child)
    if not child_delta:
        return ChangeSet()

    stateful = _stateful_delta(differ, plan, state, child_delta)
    if stateful is not None:
        return stateful
    differ.stats.agg_recomputes += 1

    # Affected group keys, one columnar pass over the delta arrays.
    key_array_fn = compile_group_key_columnar(plan.group_exprs, differ.ctx)
    affected = set(key_array_fn(transpose_rows(child_delta.rows),
                                len(child_delta)))

    key_fn = compile_group_key(plan.group_exprs, differ.ctx)
    child_old = semi_join_keys(differ.old(plan.child), key_fn, affected,
                               key_array_fn=key_array_fn)
    child_new = semi_join_keys(differ.new(plan.child), key_fn, affected,
                               key_array_fn=key_array_fn)

    old_result = aggregate_relation(plan, child_old, differ.ctx)
    new_result = aggregate_relation(plan, child_new, differ.ctx)
    return diff_relations(old_result, new_result)


@rule("Distinct")
def delta_distinct(differ: Differentiator, plan: lp.Distinct) -> ChangeSet:
    """DISTINCT is grouped aggregation over the whole row with no
    aggregates: affected "groups" are the changed row values, and the
    stateful form is a count per distinct value."""
    state = differ.agg_node_state(plan)  # claim before the early return
    child_delta = differ.delta(plan.child)
    if not child_delta:
        return ChangeSet()

    stateful = _stateful_delta(differ, plan, state, child_delta)
    if stateful is not None:
        return stateful
    differ.stats.agg_recomputes += 1

    key_array_fn = t.group_key_columns
    affected = set(key_array_fn(transpose_rows(child_delta.rows),
                                len(child_delta)))

    old_result = distinct_relation(
        plan.schema,
        semi_join_keys(differ.old(plan.child), t.group_key, affected,
                       key_array_fn=key_array_fn))
    new_result = distinct_relation(
        plan.schema,
        semi_join_keys(differ.new(plan.child), t.group_key, affected,
                       key_array_fn=key_array_fn))
    return diff_relations(old_result, new_result)
