"""Derivative rules for grouped aggregation and DISTINCT.

Both use the **affected-group** strategy, the grouped analogue of the
paper's window-function derivative (section 5.5.1): collect the group keys
touched by the input delta, recompute those groups at both interval
endpoints, and diff the results by row id. Because an aggregate output
row's id derives from its group key only (:func:`repro.ivm.rowid.group_id`),
a group whose value changes becomes a DELETE+INSERT under one id — an
update — and a group whose input rows all disappear becomes a plain
DELETE.

Scalar aggregates (no GROUP BY) are rejected: section 3.3.2 lists them as
not yet supported for incremental refresh; plans containing them run in
FULL mode.
"""

from __future__ import annotations

from repro.engine import types as t
from repro.engine.executor import aggregate_relation, distinct_relation
from repro.engine.expressions import compile_group_key
from repro.errors import NotIncrementalizableError
from repro.ivm.changes import ChangeSet
from repro.ivm.differentiator import (Differentiator, diff_relations, rule,
                                      semi_join_keys)
from repro.plan import logical as lp


@rule("Aggregate")
def delta_aggregate(differ: Differentiator, plan: lp.Aggregate) -> ChangeSet:
    if plan.is_scalar:
        raise NotIncrementalizableError(
            "scalar aggregates are not incrementally maintainable "
            "(section 3.3.2); use FULL refresh mode")

    child_delta = differ.delta(plan.child)
    if not child_delta:
        return ChangeSet()

    key_fn = compile_group_key(plan.group_exprs, differ.ctx)
    # Affected group keys, straight off the delta's row array.
    affected = set(map(key_fn, child_delta.rows))

    child_old = semi_join_keys(differ.old(plan.child), key_fn, affected)
    child_new = semi_join_keys(differ.new(plan.child), key_fn, affected)

    old_result = aggregate_relation(plan, child_old, differ.ctx)
    new_result = aggregate_relation(plan, child_new, differ.ctx)
    return diff_relations(old_result, new_result)


@rule("Distinct")
def delta_distinct(differ: Differentiator, plan: lp.Distinct) -> ChangeSet:
    """DISTINCT is grouped aggregation over the whole row with no
    aggregates: affected "groups" are the changed row values."""
    child_delta = differ.delta(plan.child)
    if not child_delta:
        return ChangeSet()

    affected = set(map(t.group_key, child_delta.rows))

    old_result = distinct_relation(
        plan.schema,
        semi_join_keys(differ.old(plan.child), t.group_key, affected))
    new_result = distinct_relation(
        plan.schema,
        semi_join_keys(differ.new(plan.child), t.group_key, affected))
    return diff_relations(old_result, new_result)
