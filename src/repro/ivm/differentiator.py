"""The query differentiation framework.

Section 5.5 of the paper: "To perform an incremental refresh, Snowflake
differentiates the DT's defining query Q to produce a query Δ_I Q that
outputs the changes in that query over a data timestamp interval I. ...
The framework is implemented in terms of syntactic rewrite rules, which
match the derivative operator and the plan beneath it, and produce an
equivalent expression in terms of derivatives of its internal terms."

Our :class:`Differentiator` is that framework: ``delta(plan)`` dispatches
on the operator at the root of ``plan`` to a rule registered in
:data:`RULES` and returns the plan's change set over the interval. Rules
can also evaluate any sub-plan at either endpoint of the interval
(``old(plan)`` / ``new(plan)``) — matching the paper's design point that
"none of our derivatives so far reuse the state from preceding data
timestamps already stored in the DT. They all work by computing changes
purely in terms of the sources" (section 5.5.3). Endpoint evaluations are
memoized per differentiation so a term referenced by several rules is
computed once (the term-reuse concern of section 5.5.1).

The top-level entry :func:`differentiate` consolidates the result unless
the plan is structurally append-only over insert-only source deltas, in
which case consolidation is skipped — the insert-only specialization of
section 5.5.2 ("In many cases, the structure of a query guarantees that
redundant actions will not be introduced by differentiation, which permits
us to skip the final change-consolidation step").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.engine.executor import evaluate
from repro.engine.expressions import DEFAULT_CONTEXT, EvalContext
from repro.engine.relation import Relation, columnar_enabled
from repro.errors import NotIncrementalizableError, RowIdIntegrityError
from repro.ivm.changes import ChangeSet, consolidate
from repro.plan import logical as lp


def _guard_row_ids(row_ids, origin: str) -> None:
    """Reject positional-fallback row ids at the differentiator boundary.

    ``Relation.__init__`` assigns ``pos:<index>`` ids when a relation is
    built without explicit ids — and assigns them to *every* row at once,
    so checking the first id suffices. Such ids are only unique within one
    relation; across the relations a differentiation touches they collide,
    which would corrupt the ``($ROW_ID, $ACTION)`` uniqueness invariant
    downstream. Storage always provides real ids; hitting this means a
    caller handed the differentiator a hand-built relation or delta.
    """
    if row_ids and row_ids[0].startswith("pos:"):
        raise RowIdIntegrityError(
            f"positional fallback row ids (pos:<n>) in {origin} cannot "
            f"participate in incremental maintenance; supply stable row ids")


class DeltaSource(Protocol):
    """What differentiation needs from the storage layer: the two endpoint
    snapshots of the refresh interval and the per-table change streams."""

    def scan_old(self, table: str) -> Relation:
        """Contents of ``table`` at the interval start (previous data ts)."""
        ...

    def scan_new(self, table: str) -> Relation:
        """Contents of ``table`` at the interval end (new data ts)."""
        ...

    def scan_delta(self, table: str) -> ChangeSet:
        """Consolidated changes of ``table`` over the interval."""
        ...


class DictDeltaSource:
    """A DeltaSource over plain dicts (for tests and benchmarks)."""

    def __init__(self, old: dict[str, Relation], new: dict[str, Relation],
                 deltas: dict[str, ChangeSet]):
        self._old = old
        self._new = new
        self._deltas = deltas

    def scan_old(self, table: str) -> Relation:
        return self._old[table]

    def scan_new(self, table: str) -> Relation:
        return self._new[table]

    def scan_delta(self, table: str) -> ChangeSet:
        return self._deltas.get(table, ChangeSet())


@dataclass
class DifferentiationStats:
    """Work counters, used by the cost model and the benchmarks."""

    delta_rows_in: int = 0       # source delta rows consumed
    delta_rows_out: int = 0      # delta rows produced (pre-consolidation)
    endpoint_evals: int = 0      # memoized endpoint evaluations performed
    endpoint_rows: int = 0       # rows materialized by endpoint evaluations
    join_input_rows: int = 0     # rows fed into join kernels by join rules
    agg_stateful_folds: int = 0  # aggregate nodes refreshed by state fold
    agg_recomputes: int = 0      # aggregate nodes refreshed by endpoint recompute
    consolidation_skipped: bool = False


class _EndpointResolver:
    """Adapter presenting one endpoint of a DeltaSource as a snapshot."""

    def __init__(self, source: DeltaSource, which: str):
        self._source = source
        self._which = which

    def scan(self, table: str) -> Relation:
        if self._which == "old":
            relation = self._source.scan_old(table)
        else:
            relation = self._source.scan_new(table)
        _guard_row_ids(relation.row_ids,
                       f"the {self._which} endpoint of table {table!r}")
        return relation

    def scan_pruned(self, table: str, bounds) -> Relation:
        """Zone-map pruned endpoint scan, when the delta source's storage
        supports it; falls back to a full scan otherwise."""
        pruned = getattr(self._source, f"scan_{self._which}_pruned", None)
        if pruned is None:
            return self.scan(table)
        relation = pruned(table, bounds)
        _guard_row_ids(relation.row_ids,
                       f"the {self._which} endpoint of table {table!r}")
        return relation


#: Rule registry: operator class name -> rule(differ, plan) -> ChangeSet.
RULES: dict[str, Callable[["Differentiator", lp.PlanNode], ChangeSet]] = {}


def rule(operator: str):
    """Decorator registering a derivative rule for an operator."""

    def register(function):
        RULES[operator] = function
        return function

    return register


#: Outer-join derivative strategies (section 5.5.1 discusses both; the
#: rewrite-based one duplicates terms, the direct one factors them out).
OUTER_JOIN_DIRECT = "direct"
OUTER_JOIN_REWRITE = "rewrite"


class Differentiator:
    """One differentiation pass over an interval ``I``.

    Parameters
    ----------
    source:
        The interval's endpoints and change streams.
    ctx:
        Evaluation context pinned to the refresh's data timestamp, so
        context functions are stable (section 3.4).
    outer_join_strategy:
        ``"direct"`` (default, the production choice of section 5.5.1) or
        ``"rewrite"`` (the original inner+anti decomposition, kept for the
        ablation benchmark).
    agg_state:
        Optional :class:`repro.ivm.aggstate.AggStateStore` carrying the
        DT's per-group accumulators across refreshes. When present (and
        :func:`~repro.ivm.aggstate.force_stateless` is not active), the
        aggregate rules fold deltas into it instead of recomputing
        affected groups at the interval endpoints.
    """

    def __init__(self, source: DeltaSource,
                 ctx: EvalContext = DEFAULT_CONTEXT,
                 outer_join_strategy: str = OUTER_JOIN_DIRECT,
                 agg_state=None):
        self.source = source
        self.ctx = ctx
        self.outer_join_strategy = outer_join_strategy
        self.agg_state = agg_state
        self._agg_handle_counts: dict[str, int] = {}
        self.stats = DifferentiationStats()
        self._old_resolver = _EndpointResolver(source, "old")
        self._new_resolver = _EndpointResolver(source, "new")
        self._old_cache: dict[int, Relation] = {}
        self._new_cache: dict[int, Relation] = {}
        self._delta_cache: dict[int, ChangeSet] = {}
        #: table -> whether its source delta was insert-only, recorded when
        #: the Scan rule's result passes through :meth:`delta` so the
        #: consolidation-skip analysis need not rescan the delta.
        self.source_insert_only: dict[str, bool] = {}

    # -- endpoint evaluation (memoized term reuse) ------------------------------

    def old(self, plan: lp.PlanNode) -> Relation:
        """Evaluate ``plan`` at the interval start (memoized)."""
        key = id(plan)
        if key not in self._old_cache:
            relation = evaluate(plan, self._old_resolver, self.ctx)
            self.stats.endpoint_evals += 1
            self.stats.endpoint_rows += len(relation)
            self._old_cache[key] = relation
        return self._old_cache[key]

    def new(self, plan: lp.PlanNode) -> Relation:
        """Evaluate ``plan`` at the interval end (memoized)."""
        key = id(plan)
        if key not in self._new_cache:
            relation = evaluate(plan, self._new_resolver, self.ctx)
            self.stats.endpoint_evals += 1
            self.stats.endpoint_rows += len(relation)
            self._new_cache[key] = relation
        return self._new_cache[key]

    # -- the derivative ----------------------------------------------------------

    def delta(self, plan: lp.PlanNode) -> ChangeSet:
        """Δ_I of a sub-plan (memoized).

        The result is consolidated before caching unless it is
        insert-only: every derivative rule assumes its input delta has at
        most one insert and one delete per row id, with deletes first —
        an update crossing two stacked joins would otherwise reorder into
        duplicate ``($ROW_ID, INSERT)`` pairs.
        """
        key = id(plan)
        cached = self._delta_cache.get(key)
        if cached is not None:
            return cached
        rule_fn = RULES.get(type(plan).__name__)
        if rule_fn is None:
            raise NotIncrementalizableError(
                f"operator {type(plan).__name__} has no derivative rule")
        result = rule_fn(self, plan)
        self.stats.delta_rows_out += len(result)
        insert_only = result.insert_only
        if not insert_only:
            result = consolidate(result)
        if isinstance(plan, lp.Scan):
            # Scan rules return the source delta verbatim, so this is the
            # table's change-stream insert-only flag — and the boundary at
            # which a hand-built delta carrying positional fallback ids
            # must be rejected (storage change streams always carry real
            # ids).
            _guard_row_ids(result.row_ids,
                           f"the source delta of table {plan.table!r}")
            self.source_insert_only[plan.table] = insert_only
        self._delta_cache[key] = result
        return result

    # -- aggregate state ---------------------------------------------------------

    def agg_node_state(self, plan: lp.PlanNode):
        """The state handle for one Aggregate/Distinct node, or None when
        the node must take the endpoint-recompute path (no store attached,
        :func:`~repro.ivm.aggstate.force_stateless` active, or the node's
        shape has no exact retractable accumulators).

        Handles are keyed by (node kind, encounter order): each rule fires
        exactly once per node per differentiation (``delta`` memoizes), and
        dispatch order is a deterministic function of the plan, so the
        same node reclaims its state on every refresh. Plan *changes* are
        caught by the store's fingerprint check, not here.
        """
        from repro.ivm import aggstate

        if self.agg_state is None or aggstate.stateless_forced():
            return None
        if isinstance(plan, lp.Aggregate):
            supported, __ = aggstate.stateful_aggregate_supported(plan)
        else:
            supported, __ = aggstate.stateful_distinct_supported(plan)
        if not supported:
            return None
        kind = type(plan).__name__
        sequence = self._agg_handle_counts.get(kind, 0)
        self._agg_handle_counts[kind] = sequence + 1
        return self.agg_state.node_state(kind, sequence, plan)


def differentiate(plan: lp.PlanNode, source: DeltaSource,
                  ctx: EvalContext = DEFAULT_CONTEXT,
                  outer_join_strategy: str = OUTER_JOIN_DIRECT,
                  agg_state=None,
                  ) -> tuple[ChangeSet, DifferentiationStats]:
    """Compute the consolidated changes of ``plan`` over the interval.

    Consolidation is skipped when the plan is structurally append-only and
    every source delta is insert-only (section 5.5.2).
    """
    # Import here: the rules modules register themselves into RULES and
    # plan.properties imports this module's names.
    from repro.ivm import rules_agg, rules_basic, rules_join, rules_window  # noqa: F401
    from repro.plan.properties import is_append_only_plan

    differ = Differentiator(source, ctx, outer_join_strategy,
                            agg_state=agg_state)
    raw = differ.delta(plan)

    if is_append_only_plan(plan):
        recorded = differ.source_insert_only
        insert_only = all(
            recorded[table] if table in recorded
            else source.scan_delta(table).insert_only
            for table in lp.scans_of(plan))
        if insert_only:
            differ.stats.consolidation_skipped = True
            raw.validate()
            return raw, differ.stats

    return consolidate(raw), differ.stats


def semi_join_keys(relation: Relation, key_fn, affected: set,
                   key_array_fn=None) -> Relation:
    """Rows of ``relation`` whose compiled key is in ``affected`` — the
    ``Q ⋉_k ΔQ`` restriction shared by the affected-key rules (outer
    joins, aggregates, DISTINCT, windows).

    ``key_array_fn`` is an optional columnar key evaluator
    (``(columns, n) -> [key]``); when provided and the relation is
    columnar, keys are computed in one pass per column and the restriction
    gathers column slices instead of materializing row tuples.
    """
    if (key_array_fn is not None and columnar_enabled()
            and relation.is_columnar and relation.columns):
        keys = key_array_fn(relation.columns, len(relation))
        keep = [index for index, key in enumerate(keys) if key in affected]
        row_ids = relation.row_ids
        return Relation.from_columns(
            relation.schema,
            [[column[index] for index in keep]
             for column in relation.columns],
            [row_ids[index] for index in keep])
    restricted = Relation(relation.schema)
    for row_id, row in zip(relation.row_ids, relation.rows):
        if key_fn(row) in affected:
            restricted.append(row_id, row)
    return restricted


def diff_relations(old: Relation, new: Relation) -> ChangeSet:
    """Row-id–based difference of two relations: the merge-ready changes
    that turn ``old`` into ``new``. Used by the affected-key rules (outer
    joins, aggregates, distinct) and by REINITIALIZE planning."""
    old_rows = dict(old.pairs())
    changes = ChangeSet()
    new_ids = set()
    for row_id, row in new.pairs():
        new_ids.add(row_id)
        previous = old_rows.get(row_id)
        if previous is None:
            changes.insert(row_id, row)
        elif previous != row:
            changes.delete(row_id, previous)
            changes.insert(row_id, row)
    for row_id, row in old.pairs():
        if row_id not in new_ids:
            changes.delete(row_id, row)
    return changes
