"""Derivative rules for joins.

**Inner joins** use the bilinear rule:

.. math::

   Δ_I(Q ⋈ R) = Δ_I Q ⋈ R|_{I_0} \\; + \\; Q|_{I_1} ⋈ Δ_I R

(delta-left against the *old* right, new left against delta-right), which
accounts for every changed pair exactly once. Join work is proportional to
the delta sizes because the kernel hash-joins on the equi-keys.

**Outer joins** (section 5.5.1) support two strategies:

* ``rewrite`` — the original decomposition into an inner join plus
  null-padded anti-joins: ``Δ(Q ⟕ R) = Δ(Q ⋈ R) + Δ(π_{R=NULL}(Q ▷ R))``.
  As the paper observes, this duplicates the Q and R terms, and the
  duplication compounds with nesting ("the duplication grows exponentially
  with the number of outer joins in the plan"). Our memoization bounds the
  blow-up within a single level, but the anti-join terms still force full
  endpoint evaluations of both inputs.
* ``direct`` — the production approach: factor out common terms by
  recomputing only the **affected keys**. The keys mentioned by either
  input delta are collected, both endpoint states are restricted to those
  keys, the outer join is evaluated on the restrictions, and the two
  results are diffed by row id. Work is proportional to the data under
  affected keys, never the full inputs.

Both strategies produce identical consolidated change sets (a property
test asserts this); the ablation benchmark ``bench_t7`` measures the cost
difference.
"""

from __future__ import annotations

from repro.engine.executor import join_relations
from repro.engine.expressions import compile_group_key
from repro.engine.relation import Relation
from repro.errors import NotIncrementalizableError
from repro.ivm.changes import Action, ChangeSet
from repro.ivm.differentiator import (OUTER_JOIN_REWRITE, Differentiator,
                                      diff_relations, rule, semi_join_keys)
from repro.plan import logical as lp


@rule("Join")
def delta_join(differ: Differentiator, plan: lp.Join) -> ChangeSet:
    if plan.kind == "inner":
        return _delta_inner(differ, plan)
    if plan.kind == "cross":
        return _delta_cross(differ, plan)
    if differ.outer_join_strategy == OUTER_JOIN_REWRITE:
        return _delta_outer_rewrite(differ, plan)
    return _delta_outer_direct(differ, plan)


def _relation_of_action(schema, delta: ChangeSet, action: Action) -> Relation:
    """The delta's rows under one action, as a relation (built straight
    from the struct-of-arrays store — no per-change objects)."""
    row_ids = []
    rows = []
    for change_action, row_id, row in zip(delta.actions, delta.row_ids,
                                          delta.rows):
        if change_action is action:
            row_ids.append(row_id)
            rows.append(row)
    return Relation(schema, rows, row_ids)


def _signed_join(differ: Differentiator, plan: lp.Join,
                 left: Relation, right: Relation, action: Action,
                 output: ChangeSet) -> None:
    """Inner-join two relations, emitting every output pair under
    ``action`` (one bulk array extension). Reuses the executor's
    hash-join kernel."""
    differ.stats.join_input_rows += len(left) + len(right)
    inner = lp.Join("inner", plan.left, plan.right, plan.condition)
    joined = join_relations(inner, left, right, differ.ctx)
    output.actions.extend([action] * len(joined))
    output.row_ids.extend(joined.row_ids)
    output.rows.extend(joined.rows)


def _delta_inner(differ: Differentiator, plan: lp.Join) -> ChangeSet:
    delta_left = differ.delta(plan.left)
    delta_right = differ.delta(plan.right)
    output = ChangeSet()
    if delta_left:
        right_old = differ.old(plan.right)
        for action in (Action.DELETE, Action.INSERT):
            changed = _relation_of_action(plan.left.schema, delta_left,
                                          action)
            if len(changed):
                _signed_join(differ, plan, changed, right_old, action,
                             output)
    if delta_right:
        left_new = differ.new(plan.left)
        for action in (Action.DELETE, Action.INSERT):
            changed = _relation_of_action(plan.right.schema, delta_right,
                                          action)
            if len(changed):
                _signed_join(differ, plan, left_new, changed, action,
                             output)
    return output


def _delta_cross(differ: Differentiator, plan: lp.Join) -> ChangeSet:
    """Cross joins follow the same bilinear rule with no keys."""
    return _delta_inner(differ, plan)


# ---------------------------------------------------------------------------
# Outer joins — direct derivative (affected-key recompute)
# ---------------------------------------------------------------------------

def _delta_outer_direct(differ: Differentiator, plan: lp.Join) -> ChangeSet:
    keys = lp.extract_equi_keys(plan)
    delta_left = differ.delta(plan.left)
    delta_right = differ.delta(plan.right)
    if not delta_left and not delta_right:
        return ChangeSet()
    if not keys.left_keys:
        # Non-equi outer join: no key to localize on; fall back to a full
        # endpoint diff (still correct, cost ∝ |Q| + |R|).
        return diff_relations(differ.old(plan), differ.new(plan))

    left_key_fn = compile_group_key(keys.left_keys, differ.ctx)
    right_key_fn = compile_group_key(keys.right_keys, differ.ctx)
    affected: set[tuple] = set()
    affected.update(map(left_key_fn, delta_left.rows))
    affected.update(map(right_key_fn, delta_right.rows))

    left_old = semi_join_keys(differ.old(plan.left), left_key_fn, affected)
    left_new = semi_join_keys(differ.new(plan.left), left_key_fn, affected)
    right_old = semi_join_keys(differ.old(plan.right), right_key_fn, affected)
    right_new = semi_join_keys(differ.new(plan.right), right_key_fn, affected)

    differ.stats.join_input_rows += (len(left_old) + len(right_old)
                                     + len(left_new) + len(right_new))
    old_result = join_relations(plan, left_old, right_old, differ.ctx)
    new_result = join_relations(plan, left_new, right_new, differ.ctx)
    return diff_relations(old_result, new_result)


# ---------------------------------------------------------------------------
# Outer joins — rewrite derivative (inner join + anti-join padding)
# ---------------------------------------------------------------------------

def _delta_outer_rewrite(differ: Differentiator, plan: lp.Join) -> ChangeSet:
    """The inner+anti decomposition: differentiate the inner join, then
    differentiate the null-padded anti-join term(s) by diffing their
    endpoint evaluations. This repeats the Q and R terms — the performance
    problem section 5.5.1 describes."""
    output = ChangeSet()
    output.extend(_delta_inner(differ, plan))

    left_width = len(plan.left.schema)
    right_width = len(plan.right.schema)

    if plan.kind in ("left", "full"):
        old_pads = _left_pad_rows(differ, plan, differ.old(plan.left),
                                  differ.old(plan.right), right_width)
        new_pads = _left_pad_rows(differ, plan, differ.new(plan.left),
                                  differ.new(plan.right), right_width)
        output.extend(diff_relations(old_pads, new_pads))

    if plan.kind in ("right", "full"):
        old_pads = _right_pad_rows(differ, plan, differ.old(plan.left),
                                   differ.old(plan.right), left_width)
        new_pads = _right_pad_rows(differ, plan, differ.new(plan.left),
                                   differ.new(plan.right), left_width)
        output.extend(diff_relations(old_pads, new_pads))
    return output


def _left_pad_rows(differ: Differentiator, plan: lp.Join, left: Relation,
                   right: Relation, right_width: int) -> Relation:
    """π_{R=NULL}(L ▷ R): left rows with no match, null-padded."""
    differ.stats.join_input_rows += len(left) + len(right)
    joined = join_relations(
        lp.Join("left", plan.left, plan.right, plan.condition),
        left, right, differ.ctx)
    pads = Relation(plan.schema)
    for row_id, row in joined.pairs():
        if row_id.startswith("lo:"):
            pads.append(row_id, row)
    return pads


def _right_pad_rows(differ: Differentiator, plan: lp.Join, left: Relation,
                    right: Relation, left_width: int) -> Relation:
    differ.stats.join_input_rows += len(left) + len(right)
    joined = join_relations(
        lp.Join("right", plan.left, plan.right, plan.condition),
        left, right, differ.ctx)
    pads = Relation(plan.schema)
    for row_id, row in joined.pairs():
        if row_id.startswith("ro:"):
            pads.append(row_id, row)
    return pads
