"""Derivative rules for the linear operators.

Scan, Filter, Project, UnionAll, and Flatten are *linear*: the delta of
the operator is the operator applied to the delta of its input. These are
the cheapest derivatives — cost strictly proportional to the size of the
input delta — and correspond to the paper's claim that "variable costs
scale linearly with the amount of changed data in the sources" (section
3.3.2).

The rules operate directly on the change set's struct-of-arrays store
(``actions`` / ``row_ids`` / ``rows`` parallel arrays): filtering and
projecting a 100k-row delta builds the output arrays in bulk without
allocating one ``Change`` object per row.

Sort and Limit deliberately have **no** rules: plans containing them take
the FULL refresh path (the properties checker reports them as
non-incrementalizable), mirroring the operator coverage of section 3.3.2.
"""

from __future__ import annotations

from repro.engine.expressions import compile_expression, compile_row
from repro.errors import NotIncrementalizableError
from repro.ivm import rowid
from repro.ivm.changes import ChangeSet
from repro.ivm.differentiator import Differentiator, rule
from repro.plan import logical as lp


@rule("Scan")
def delta_scan(differ: Differentiator, plan: lp.Scan) -> ChangeSet:
    """Δ(Scan(T)) = the table's change stream over the interval."""
    changes = differ.source.scan_delta(plan.table)
    differ.stats.delta_rows_in += len(changes)
    return changes


@rule("Values")
def delta_values(differ: Differentiator, plan: lp.Values) -> ChangeSet:
    """Literal rows never change."""
    return ChangeSet()


@rule("Filter")
def delta_filter(differ: Differentiator, plan: lp.Filter) -> ChangeSet:
    """Δ(σ_p(Q)) = σ_p(ΔQ): the predicate commutes with the delta.

    A deleted row is kept in the delta iff the predicate held on its old
    contents; since incremental plans contain only deterministic
    expressions (enforced by the properties checker), evaluating the
    predicate on the stored old row is exact.
    """
    child = differ.delta(plan.child)
    if not child:
        return ChangeSet()
    predicate = compile_expression(plan.predicate, differ.ctx)
    actions = []
    row_ids = []
    rows = []
    for action, row_id, row in zip(child.actions, child.row_ids, child.rows):
        if predicate(row) is True:
            actions.append(action)
            row_ids.append(row_id)
            rows.append(row)
    return ChangeSet.from_arrays(actions, row_ids, rows)


@rule("Project")
def delta_project(differ: Differentiator, plan: lp.Project) -> ChangeSet:
    """Δ(π_e(Q)) = π_e(ΔQ): projection is 1:1 on rows; actions and ids
    pass through by array reuse — only the row array is rebuilt."""
    child = differ.delta(plan.child)
    if not child:
        return ChangeSet()
    row_fn = compile_row(plan.exprs, differ.ctx)
    return ChangeSet.from_arrays(list(child.actions), list(child.row_ids),
                                 [row_fn(row) for row in child.rows])


@rule("UnionAll")
def delta_unionall(differ: Differentiator, plan: lp.UnionAll) -> ChangeSet:
    """Δ(Q₀ ∪ ... ∪ Qₙ) = ΔQ₀ ∪ ... ∪ ΔQₙ with branch-tagged row ids."""
    union_id = rowid.union_id
    output = ChangeSet()
    for branch, child in enumerate(plan.inputs):
        delta = differ.delta(child)
        output.actions.extend(delta.actions)
        output.row_ids.extend(union_id(branch, row_id)
                              for row_id in delta.row_ids)
        output.rows.extend(delta.rows)
    return output


@rule("Flatten")
def delta_flatten(differ: Differentiator, plan: lp.Flatten) -> ChangeSet:
    """Δ(FLATTEN(Q)) = FLATTEN(ΔQ): each changed input row expands into
    its elements with the same action (section 3.3.2 lists LATERAL
    FLATTEN as incrementally supported)."""
    child = differ.delta(plan.child)
    if not child:
        return ChangeSet()
    input_fn = compile_expression(plan.input_expr, differ.ctx)
    flatten_id = rowid.flatten_id
    output = ChangeSet()
    for action, row_id, row in zip(child.actions, child.row_ids, child.rows):
        value = input_fn(row)
        if not isinstance(value, list):
            continue
        for index, element in enumerate(value):
            output.actions.append(action)
            output.row_ids.append(flatten_id(row_id, index))
            output.rows.append(row + (element, index))
    return output


@rule("Sort")
def delta_sort(differ: Differentiator, plan: lp.Sort) -> ChangeSet:
    raise NotIncrementalizableError(
        "ORDER BY is not incrementally maintainable; use FULL refresh mode")


@rule("Limit")
def delta_limit(differ: Differentiator, plan: lp.Limit) -> ChangeSet:
    raise NotIncrementalizableError(
        "LIMIT is not incrementally maintainable; use FULL refresh mode")
