"""Derivative rules for the linear operators.

Scan, Filter, Project, UnionAll, and Flatten are *linear*: the delta of
the operator is the operator applied to the delta of its input. These are
the cheapest derivatives — cost strictly proportional to the size of the
input delta — and correspond to the paper's claim that "variable costs
scale linearly with the amount of changed data in the sources" (section
3.3.2).

Sort and Limit deliberately have **no** rules: plans containing them take
the FULL refresh path (the properties checker reports them as
non-incrementalizable), mirroring the operator coverage of section 3.3.2.
"""

from __future__ import annotations

from repro.engine import types as t
from repro.errors import NotIncrementalizableError
from repro.ivm import rowid
from repro.ivm.changes import Change, ChangeSet
from repro.ivm.differentiator import Differentiator, rule
from repro.plan import logical as lp


@rule("Scan")
def delta_scan(differ: Differentiator, plan: lp.Scan) -> ChangeSet:
    """Δ(Scan(T)) = the table's change stream over the interval."""
    changes = differ.source.scan_delta(plan.table)
    differ.stats.delta_rows_in += len(changes)
    return changes


@rule("Values")
def delta_values(differ: Differentiator, plan: lp.Values) -> ChangeSet:
    """Literal rows never change."""
    return ChangeSet()


@rule("Filter")
def delta_filter(differ: Differentiator, plan: lp.Filter) -> ChangeSet:
    """Δ(σ_p(Q)) = σ_p(ΔQ): the predicate commutes with the delta.

    A deleted row is kept in the delta iff the predicate held on its old
    contents; since incremental plans contain only deterministic
    expressions (enforced by the properties checker), evaluating the
    predicate on the stored old row is exact.
    """
    child = differ.delta(plan.child)
    output = ChangeSet()
    for change in child:
        if t.is_true(plan.predicate.eval(change.row, differ.ctx)):
            output.append(change)
    return output


@rule("Project")
def delta_project(differ: Differentiator, plan: lp.Project) -> ChangeSet:
    """Δ(π_e(Q)) = π_e(ΔQ): projection is 1:1 on rows; ids pass through."""
    child = differ.delta(plan.child)
    output = ChangeSet()
    for change in child:
        projected = tuple(expr.eval(change.row, differ.ctx)
                          for expr in plan.exprs)
        output.append(Change(change.action, change.row_id, projected))
    return output


@rule("UnionAll")
def delta_unionall(differ: Differentiator, plan: lp.UnionAll) -> ChangeSet:
    """Δ(Q₀ ∪ ... ∪ Qₙ) = ΔQ₀ ∪ ... ∪ ΔQₙ with branch-tagged row ids."""
    output = ChangeSet()
    for branch, child in enumerate(plan.inputs):
        for change in differ.delta(child):
            output.append(Change(change.action,
                                 rowid.union_id(branch, change.row_id),
                                 change.row))
    return output


@rule("Flatten")
def delta_flatten(differ: Differentiator, plan: lp.Flatten) -> ChangeSet:
    """Δ(FLATTEN(Q)) = FLATTEN(ΔQ): each changed input row expands into
    its elements with the same action (section 3.3.2 lists LATERAL
    FLATTEN as incrementally supported)."""
    child = differ.delta(plan.child)
    output = ChangeSet()
    for change in child:
        value = plan.input_expr.eval(change.row, differ.ctx)
        if not isinstance(value, list):
            continue
        for index, element in enumerate(value):
            output.append(Change(
                change.action,
                rowid.flatten_id(change.row_id, index),
                change.row + (element, index)))
    return output


@rule("Sort")
def delta_sort(differ: Differentiator, plan: lp.Sort) -> ChangeSet:
    raise NotIncrementalizableError(
        "ORDER BY is not incrementally maintainable; use FULL refresh mode")


@rule("Limit")
def delta_limit(differ: Differentiator, plan: lp.Limit) -> ChangeSet:
    raise NotIncrementalizableError(
        "LIMIT is not incrementally maintainable; use FULL refresh mode")
