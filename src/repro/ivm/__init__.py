"""Incremental view maintenance: change sets, row ids, differentiation.

Only the change-set primitives are re-exported here; import the
differentiation entry points from :mod:`repro.ivm.differentiator`
directly (the executor depends on :mod:`repro.ivm.rowid`, so this
package's init must stay free of engine imports).
"""

from repro.ivm.changes import Action, Change, ChangeSet, consolidate

__all__ = ["Action", "Change", "ChangeSet", "consolidate"]
