"""A thread-pool server serving many sessions over one database.

The paper's production system is a multi-tenant service: many client
connections, each with snapshot-consistent transactions, against shared
storage. This module reproduces that shape in-process:

* the :class:`Server` owns one :class:`~repro.api.database.Database` and a
  ``ThreadPoolExecutor``; every statement a client submits executes on a
  pool worker;
* each :class:`Connection` wraps one :class:`~repro.api.session.Session`.
  Sessions are **thread-confined by serialization**: a per-connection
  mutex guarantees at most one statement of a connection runs at a time,
  so per-session state (open transaction, settings, poisoned flag) never
  sees two threads — while statements of *different* connections run
  genuinely concurrently;
* the catalog and commit **critical sections serialize behind the
  existing lock manager**: the server raises
  :attr:`~repro.txn.manager.TransactionManager.lock_timeout`, so a commit
  acquiring its written tables' locks *queues* behind a concurrent
  committer instead of failing fast, and catalog DDL runs under the
  catalog mutex;
* conflicts still happen — snapshot isolation's first-committer-wins
  check fires whenever a transaction commits a table someone else
  committed after its snapshot — and surface as
  :class:`~repro.errors.LockConflict`. :meth:`Server.run_transaction`
  packages the canonical response: rollback, small exponential backoff,
  retry from a fresh snapshot.

The stress test in ``tests/test_server.py`` drives N writer sessions into
one table and checks the table invariant (no lost updates, conserved
totals); ``benchmarks/bench_t10_concurrent_sessions.py`` measures the
same workload across writer counts.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Iterable, Optional, TypeVar

from repro.api.database import Database
from repro.api.results import QueryResult
from repro.api.session import Session
from repro.errors import LockConflict, UserError

T = TypeVar("T")

#: Default worker-thread count.
DEFAULT_WORKERS = 8

#: How long a commit may wait on another commit's table locks before
#: giving up with LockConflict.
DEFAULT_LOCK_TIMEOUT = 5.0

#: Default attempt budget of :meth:`Server.run_transaction`.
DEFAULT_MAX_ATTEMPTS = 50

#: Initial / maximum backoff between conflict retries, in seconds.
_BACKOFF_START = 0.0005
_BACKOFF_CAP = 0.02


class ServerStats:
    """Thread-safe counters for the server's traffic.

    ``statements`` counts jobs submitted through ``Server.execute`` /
    ``Connection.execute``-style entry points; statements a
    ``run_transaction`` work function issues on its session are *not*
    individually counted — that workload shows up in ``transactions`` /
    ``commits`` / ``conflicts`` / ``retries`` instead.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self.statements = 0
        self.transactions = 0
        self.commits = 0
        self.conflicts = 0
        self.retries = 0

    def count_statement(self) -> None:
        with self._mutex:
            self.statements += 1

    def count_commit(self, attempts_used: int) -> None:
        with self._mutex:
            self.transactions += 1
            self.commits += 1
            self.retries += attempts_used - 1

    def count_conflict(self) -> None:
        with self._mutex:
            self.conflicts += 1

    def snapshot(self) -> dict:
        with self._mutex:
            return {"statements": self.statements,
                    "transactions": self.transactions,
                    "commits": self.commits,
                    "conflicts": self.conflicts,
                    "retries": self.retries}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServerStats({self.snapshot()})"


class Connection:
    """One client connection: a session whose statements execute on the
    server's pool, strictly one at a time (thread confinement).

    ``execute`` / ``executemany`` return :class:`~concurrent.futures.
    Future` objects so a client can pipeline statements; the ``*_sync``
    forms and ``query`` block for the result. Transaction control
    (:meth:`begin` / :meth:`commit` / :meth:`rollback`, or SQL ``BEGIN`` /
    ``COMMIT`` / ``ROLLBACK`` through ``execute``) spans statements of
    this connection exactly as it does on a plain session.
    """

    def __init__(self, server: "Server", session: Session) -> None:
        self._server = server
        self.session = session
        #: Serializes this connection's statements across pool workers.
        self._serial = threading.Lock()
        self._closed = False

    @property
    def id(self) -> int:
        return self.session.id

    def _submit(self, work: Callable[[], T]) -> "Future[T]":
        if self._closed:
            raise UserError("connection is closed")

        def job() -> T:
            with self._serial:
                # Re-check under the serialization lock: statements that
                # were still queued when close() ran must not execute
                # after its rollback (they would reopen staged state).
                if self._closed:
                    raise UserError("connection is closed")
                self._server.stats.count_statement()
                return work()

        return self._server._submit(job)

    # -- statements ----------------------------------------------------------

    def execute(self, sql: str,
                binds: object = None) -> "Future[Optional[QueryResult]]":
        return self._submit(lambda: self.session.execute(sql, binds))

    def executemany(self, sql: str,
                    bind_sets: Iterable[object]) -> "Future[int]":
        def work() -> int:
            return self.session.prepare(sql).executemany(bind_sets)

        return self._submit(work)

    def execute_sync(self, sql: str,
                     binds: object = None) -> Optional[QueryResult]:
        return self.execute(sql, binds).result()

    def query(self, sql: str, binds: object = None) -> QueryResult:
        return self._submit(lambda: self.session.query(sql, binds)).result()

    # -- transactions --------------------------------------------------------

    def begin(self) -> None:
        self._submit(self.session.begin).result()

    def commit(self) -> None:
        self._submit(self.session.commit).result()

    def rollback(self) -> None:
        self._submit(self.session.rollback).result()

    def run_transaction(self, work: Callable[[Session], T],
                        max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> T:
        """Run ``work(session)`` inside BEGIN/COMMIT on this connection's
        session, retrying on conflicts (blocking; see
        :meth:`Server.run_transaction` for the pool-scheduled form)."""
        return self._submit(
            lambda: self._server._transaction_attempts(
                self.session, work, max_attempts)).result()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Roll back any open transaction and refuse further statements.

        Safe in any teardown order: rolls back directly (waiting out any
        in-flight statement via the serialization lock) rather than going
        through the pool, which may already be shut down.
        """
        if self._closed:
            return
        self._closed = True
        with self._serial:
            self.session.rollback()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return f"Connection(session=#{self.session.id}, {state})"


class Server:
    """A thread-pool front end over one database."""

    def __init__(self, database: Optional[Database] = None,
                 workers: int = DEFAULT_WORKERS,
                 lock_timeout: float = DEFAULT_LOCK_TIMEOUT) -> None:
        self.database = database if database is not None else Database()
        # Commits queue behind each other's table locks instead of
        # failing fast — the lock manager is the commit critical
        # section's serializer (see repro.txn.manager). Leased, so the
        # fail-fast default returns when the last server closes.
        self.database.txns.lease_lock_timeout(lock_timeout)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-server")
        self._workers = workers
        self._closed = False
        self.stats = ServerStats()

    # -- connections ---------------------------------------------------------

    def connect(self) -> Connection:
        """Open a new connection (its own session, independent state)."""
        self._check_open()
        return Connection(self, self.database.session())

    def _submit(self, job: Callable[[], T]) -> "Future[T]":
        self._check_open()
        return self._pool.submit(job)

    # -- one-shot statements -------------------------------------------------

    def execute(self, sql: str,
                binds: object = None) -> "Future[Optional[QueryResult]]":
        """Auto-commit one statement on a fresh session (fire-and-collect)."""
        session = self.database.session()

        def job() -> Optional[QueryResult]:
            self.stats.count_statement()
            return session.execute(sql, binds)

        return self._submit(job)

    def query(self, sql: str, binds: object = None) -> QueryResult:
        result = self.execute(sql, binds).result()
        if result is None:
            raise UserError("statement did not return rows")
        return result

    # -- transactions --------------------------------------------------------

    def submit_transaction(self, work: Callable[[Session], T],
                           max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                           ) -> "Future[T]":
        """Schedule ``work(session)`` as one transaction on the pool.

        The work function runs inside BEGIN/COMMIT on a fresh session. A
        :class:`LockConflict` — first-committer-wins validation, or a
        commit-lock timeout — rolls back and retries from a new snapshot
        with exponential backoff, up to ``max_attempts`` times. Any other
        error rolls back and propagates through the future.
        """
        session = self.database.session()

        def job() -> T:
            return self._transaction_attempts(session, work, max_attempts)

        return self._submit(job)

    def run_transaction(self, work: Callable[[Session], T],
                        max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> T:
        """:meth:`submit_transaction`, awaited."""
        return self.submit_transaction(work, max_attempts).result()

    def _transaction_attempts(self, session: Session,
                              work: Callable[[Session], T],
                              max_attempts: int) -> T:
        backoff = _BACKOFF_START
        last_conflict: Optional[LockConflict] = None
        for attempt in range(1, max_attempts + 1):
            session.begin()
            try:
                result = work(session)
                session.commit()
            except LockConflict as exc:
                session.rollback()
                self.stats.count_conflict()
                last_conflict = exc
                # Real backoff between retries of a real thread; the
                # simulated clock cannot stall another session's commit.
                time.sleep(backoff)  # lint: allow-wall-clock
                backoff = min(backoff * 2, _BACKOFF_CAP)
                continue
            except BaseException:
                session.rollback()
                raise
            self.stats.count_commit(attempt)
            # WAL-size-threshold checkpointing piggybacks on commit
            # completion — outside the commit mutex, so the checkpoint's
            # own locking cannot deadlock with the transaction above.
            self.database.maybe_checkpoint()
            return result
        raise LockConflict(
            f"transaction gave up after {max_attempts} conflicting "
            f"attempts (last: {last_conflict})")

    # -- lifecycle -----------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise UserError("server is closed")

    def close(self, wait: bool = True) -> None:
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=wait)
        self.database.txns.release_lock_timeout()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else f"workers={self._workers}"
        return f"Server({state}, {self.stats.snapshot()})"
