"""The concurrent multi-session server front end.

One :class:`Server` owns one :class:`~repro.api.database.Database` and a
thread pool; :meth:`Server.connect` hands out :class:`Connection` objects
whose statements run on the pool, serialized per connection (each
session stays thread-confined). :meth:`Server.run_transaction` wraps a
unit of work in BEGIN / COMMIT with automatic retry on snapshot-isolation
conflicts — the idiom every concurrent writer uses.

This is the layer that finally exercises the transaction manager's lock
table and first-committer-wins validation under *real* contention; see
:mod:`repro.server.server` for the concurrency model.
"""

from repro.server.server import Connection, Server, ServerStats

__all__ = ["Connection", "Server", "ServerStats"]
