"""The diagnostics framework of the static analyzer.

Every issue the analyzer can report is a :class:`Diagnostic` with a
stable machine-readable code (``RPR0xx``), a :class:`Severity`, a
human-readable message, an optional source span (1-based line/column of
the offending token), and an optional fix hint. Codes are registered in
:data:`CODES` and never reused or renumbered — tooling may match on them.

The code space is banded:

* ``RPR00x`` — binding and typing errors (the statement cannot run);
* ``RPR01x`` — predicate lints (the statement runs, but a WHERE/HAVING
  clause is constant, contradictory, or compares against NULL);
* ``RPR02x`` — incrementality lints (the statement runs, but a
  dynamic-table definition would resolve to FULL refresh or fall back
  from stateful to recompute maintenance);
* ``RPR03x`` — durability lints (state a process restart would not
  restore exactly; the query still runs and self-heals).

:class:`AnalysisReport` bundles the diagnostics for one statement along
with the statically inferred output schema (when binding succeeded).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.schema import Schema


class Severity(IntEnum):
    """Diagnostic severity, ordered: INFO < WARNING < ERROR."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one diagnostic code."""

    code: str
    title: str
    default_severity: Severity
    rationale: str


#: The stable diagnostic-code registry. Codes are append-only.
CODES: dict[str, CodeInfo] = {info.code: info for info in (
    CodeInfo("RPR001", "syntax-error", Severity.ERROR,
             "the SQL text could not be parsed"),
    CodeInfo("RPR002", "unknown-table", Severity.ERROR,
             "a referenced table, view, or dynamic table does not exist"),
    CodeInfo("RPR003", "unknown-column", Severity.ERROR,
             "a column reference is unknown or ambiguous"),
    CodeInfo("RPR004", "type-mismatch", Severity.ERROR,
             "an expression is not well-typed"),
    CodeInfo("RPR005", "invalid-statement", Severity.ERROR,
             "the statement is semantically invalid (bad function arity, "
             "INSERT arity mismatch, unsupported construct, ...)"),
    CodeInfo("RPR011", "contradictory-predicate", Severity.WARNING,
             "a conjunction of predicates can never be satisfied "
             "(e.g. WHERE x > 5 AND x < 3); the query returns no rows"),
    CodeInfo("RPR012", "constant-predicate", Severity.WARNING,
             "a WHERE/HAVING/QUALIFY predicate references no columns, so "
             "it keeps or drops every row"),
    CodeInfo("RPR013", "null-comparison", Severity.WARNING,
             "a comparison against the literal NULL is never TRUE under "
             "SQL three-valued logic"),
    CodeInfo("RPR021", "full-refresh", Severity.WARNING,
             "the query shape forces a dynamic table to FULL refresh "
             "mode under refresh_mode=auto (section 3.3.2/3.4 limits)"),
    CodeInfo("RPR022", "stateful-fallback", Severity.INFO,
             "an aggregate/distinct node cannot keep O(|delta|) "
             "accumulator state and falls back to affected-group "
             "endpoint recomputation"),
    CodeInfo("RPR031", "agg-state-rebuild", Severity.INFO,
             "a referenced dynamic table's aggregate accumulator state is "
             "not covered by the latest checkpoint: after a process "
             "restart its next incremental refresh reinitializes the "
             "accumulators from the stored result instead of restoring "
             "them (correct, but the refresh pays an endpoint recompute)"),
)}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, renderable and machine-matchable."""

    code: str
    severity: Severity
    message: str
    line: Optional[int] = None
    column: Optional[int] = None
    hint: Optional[str] = None

    @property
    def title(self) -> str:
        """The registry short name of this diagnostic's code."""
        return CODES[self.code].title

    def render(self) -> str:
        where = (f" (line {self.line}, column {self.column})"
                 if self.line is not None else "")
        text = f"{self.code} [{self.severity}] {self.message}{where}"
        if self.hint:
            text += f"; hint: {self.hint}"
        return text


def make_diagnostic(code: str, message: str, *,
                    severity: Optional[Severity] = None,
                    span: Optional[object] = None,
                    line: Optional[int] = None,
                    column: Optional[int] = None,
                    hint: Optional[str] = None) -> Diagnostic:
    """Build a :class:`Diagnostic`, defaulting the severity from the code
    registry and accepting either an AST span object or explicit
    line/column."""
    if code not in CODES:
        raise KeyError(f"unregistered diagnostic code: {code}")
    if span is not None:
        line = getattr(span, "line", line)
        column = getattr(span, "column", column)
    return Diagnostic(code=code,
                      severity=(severity if severity is not None
                                else CODES[code].default_severity),
                      message=message, line=line, column=column, hint=hint)


class AnalysisReport:
    """The analyzer's verdict on one statement.

    ``schema`` is the statically inferred output schema when the
    statement is a query and binding succeeded (None otherwise) — the
    "typed" half of the typed diagnostics. Iterating the report yields
    its diagnostics in source order (binding issues first).
    """

    def __init__(self, sql: str, diagnostics: Iterable[Diagnostic] = (),
                 schema: "Optional[Schema]" = None) -> None:
        self.sql = sql
        self.diagnostics: tuple[Diagnostic, ...] = tuple(diagnostics)
        self.schema = schema

    # -- views ---------------------------------------------------------------

    def at_severity(self, severity: Severity) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == severity)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return self.at_severity(Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return self.at_severity(Severity.WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return self.at_severity(Severity.INFO)

    @property
    def ok(self) -> bool:
        """True when the statement would bind and type-check (no
        ERROR-severity diagnostics; warnings and infos allowed)."""
        return not self.errors

    @property
    def strict_violations(self) -> tuple[Diagnostic, ...]:
        """The diagnostics strict mode (``analyze_level="error"``)
        refuses to execute past: warnings and errors, not infos."""
        return tuple(d for d in self.diagnostics
                     if d.severity >= Severity.WARNING)

    def codes(self) -> tuple[str, ...]:
        return tuple(d.code for d in self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def render(self) -> str:
        if not self.diagnostics:
            return "no issues found"
        return "\n".join(d.render() for d in self.diagnostics)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        counts = (f"{len(self.errors)} errors, {len(self.warnings)} "
                  f"warnings, {len(self.infos)} infos")
        return f"AnalysisReport({counts})"
