"""Static semantic analysis: typed diagnostics for every statement.

Layer 1 of the PR-6 static-analysis subsystem (layer 2, the
engine-invariant linter, lives in ``tools/lint_engine.py``). See
:mod:`repro.analysis.diagnostics` for the code registry and
:mod:`repro.analysis.analyzer` for the passes.
"""

from repro.analysis.diagnostics import (AnalysisReport, CodeInfo, CODES,
                                        Diagnostic, Severity,
                                        make_diagnostic)
from repro.analysis.analyzer import (analyze_bound_query, analyze_sql,
                                     analyze_statement,
                                     diagnostic_from_error)

__all__ = [
    "AnalysisReport", "CodeInfo", "CODES", "Diagnostic", "Severity",
    "make_diagnostic", "analyze_bound_query", "analyze_sql",
    "analyze_statement", "diagnostic_from_error",
]
