"""Semantic analysis passes over parsed statements and bound plans.

The analyzer sits between binding and optimization: it reuses the plan
builder to bind and type-check a statement (converting the resulting
:class:`~repro.errors.SqlError`/catalog errors into ``RPR00x``
diagnostics with source positions), then runs purely syntactic predicate
lints over the AST (``RPR01x``) and — when binding succeeded — the
incrementality lints over the bound plan (``RPR02x``), wiring the
FULL-refresh reasons of :func:`repro.plan.properties.incrementalizability`
and the stateful-fallback reasons of
:func:`repro.ivm.aggstate.refresh_strategy` into user-visible
diagnostics.

Entry points:

* :func:`analyze_statement` — any parsed statement (what
  ``Session.analyze`` calls after parsing);
* :func:`analyze_bound_query` — predicate + incrementality passes over a
  query whose plan is already bound (used by ``EXPLAIN`` and by
  ``Database.create_dynamic_table``, which have a plan in hand and must
  not pay a second bind).

Analysis never executes anything and never raises for problems *in the
analyzed statement* — those become diagnostics; only misuse of the
analyzer itself (e.g. an unregistered code) raises.
"""

from __future__ import annotations

import difflib
from typing import Iterable, Iterator, Optional, Union

from repro.engine.schema import Schema
from repro.errors import (BindError, CatalogError, EntityNotFound,
                          ParseError, SqlError, TypeError_, UserError)
from repro.analysis.diagnostics import (AnalysisReport, Diagnostic,
                                        Severity, make_diagnostic)
from repro.plan import logical as lp
from repro.plan.builder import bind_expression, build_plan
from repro.plan.properties import incrementalizability
from repro.sql import nodes as n

#: Comparison operators participating in the predicate lints.
_COMPARISONS = ("=", "!=", "<>", "<", "<=", ">", ">=")

#: Substring → fix hint for the FULL-refresh reasons produced by
#: plan/properties.py. Keys are matched against the reason text so new
#: reasons degrade to hint-less diagnostics instead of breaking.
_FULL_REFRESH_HINTS = (
    ("ORDER BY", "drop the ORDER BY from the defining query and sort in "
                 "the reading query instead"),
    ("LIMIT", "drop the LIMIT from the defining query; a dynamic table "
              "stores the whole relation"),
    ("grouping on a FLOAT", "cast the grouping key to NUMBER before "
                            "grouping"),
    ("partitioning on a FLOAT", "cast the partition key to NUMBER before "
                                "partitioning"),
    ("joining on a FLOAT", "cast the join keys to NUMBER on both sides"),
    ("unpartitioned window", "add a PARTITION BY clause so the window "
                             "maintains per-partition state"),
    ("volatile", "volatile functions are re-evaluated per refresh; use "
                 "an IMMUTABLE function or precompute the value"),
    ("context functions", "store the context value in a base-table "
                          "column at write time instead"),
)


def _hint_for_reason(reason: str) -> Optional[str]:
    for needle, hint in _FULL_REFRESH_HINTS:
        if needle in reason:
            return hint
    return None


# ---------------------------------------------------------------------------
# AST walking helpers
# ---------------------------------------------------------------------------


def _children(expr: n.Expr) -> Iterator[n.Expr]:
    if isinstance(expr, n.BinOp):
        yield expr.left
        yield expr.right
    elif isinstance(expr, n.UnOp):
        yield expr.operand
    elif isinstance(expr, (n.IsNullExpr, n.CastExpr, n.PathExpr)):
        yield expr.operand
    elif isinstance(expr, n.InListExpr):
        yield expr.operand
        yield from expr.items
    elif isinstance(expr, n.BetweenExpr):
        yield expr.operand
        yield expr.low
        yield expr.high
    elif isinstance(expr, n.LikeExpr):
        yield expr.operand
        yield expr.pattern
    elif isinstance(expr, n.CaseExpr):
        if expr.operand is not None:
            yield expr.operand
        for when, then in expr.whens:
            yield when
            yield then
        if expr.otherwise is not None:
            yield expr.otherwise
    elif isinstance(expr, n.FnCall):
        yield from expr.args
        if expr.window is not None:
            yield from expr.window.partition_by
            for order_expr, __ in expr.window.order_by:
                yield order_expr


def _walk_expr(expr: n.Expr) -> Iterator[n.Expr]:
    yield expr
    for child in _children(expr):
        yield from _walk_expr(child)


def _table_refs(ref: Optional[n.TableRef]) -> Iterator[n.TableRef]:
    if ref is None:
        return
    yield ref
    if isinstance(ref, n.JoinRef):
        yield from _table_refs(ref.left)
        yield from _table_refs(ref.right)
    elif isinstance(ref, n.FlattenRef):
        yield from _table_refs(ref.source)


def _selects_of(select: n.Select) -> Iterator[n.Select]:
    """The select itself, its UNION ALL branches, and every FROM-clause
    subquery, recursively."""
    yield select
    for branch in select.union_all:
        yield from _selects_of(branch)
    for ref in _table_refs(select.from_):
        if isinstance(ref, n.SubqueryRef):
            yield from _selects_of(ref.query)


def _is_constant(expr: n.Expr) -> bool:
    """Whether the expression references no columns, parameters, or
    function calls — i.e. it folds to the same value for every row."""
    if isinstance(expr, n.Lit):
        return True
    if isinstance(expr, (n.Name, n.Star, n.Parameter, n.FnCall)):
        return False
    children = list(_children(expr))
    return bool(children) and all(_is_constant(c) for c in children)


# ---------------------------------------------------------------------------
# Predicate lints (RPR01x)
# ---------------------------------------------------------------------------

#: Literal value classes comparable within the interval lattice. bool is
#: excluded explicitly (it is an int subclass but TRUE/FALSE bounds make
#: no useful intervals).
def _comparable(a: object, b: object) -> bool:
    if isinstance(a, bool) or isinstance(b, bool):
        return False
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return True
    return isinstance(a, str) and isinstance(b, str)


class _ColumnFacts:
    """Accumulated constraints on one column across AND-ed conjuncts:
    an interval, a not-equal set, and an IS NULL assertion. Any
    comparison implies the column is non-NULL, so ``x = 5 AND x IS
    NULL`` is contradictory too."""

    def __init__(self) -> None:
        self.low: Optional[object] = None
        self.low_strict = False
        self.high: Optional[object] = None
        self.high_strict = False
        self.not_equal: set = set()
        self.asserted_null = False
        self.compared = False

    def _conflict(self) -> Optional[str]:
        if self.asserted_null and self.compared:
            return "IS NULL contradicts a comparison on the same column"
        if (self.low is not None and self.high is not None
                and _comparable(self.low, self.high)):
            lo_op = ">" if self.low_strict else ">="
            hi_op = "<" if self.high_strict else "<="
            if self.low > self.high:  # type: ignore[operator]
                return (f"requires {lo_op} {self.low!r} and {hi_op} "
                        f"{self.high!r} simultaneously")
            if (self.low == self.high
                    and (self.low_strict or self.high_strict)):
                return f"the bounds around {self.low!r} exclude it"
        if (self.low is not None and self.low == self.high
                and not self.low_strict and not self.high_strict
                and self.low in self.not_equal):
            return f"requires = {self.low!r} and != {self.low!r}"
        return None

    def narrow_low(self, value: object, strict: bool) -> None:
        self.compared = True
        if self.low is None or not _comparable(value, self.low):
            self.low, self.low_strict = value, strict
        elif value > self.low or (value == self.low and strict):  # type: ignore[operator]
            self.low, self.low_strict = value, strict

    def narrow_high(self, value: object, strict: bool) -> None:
        self.compared = True
        if self.high is None or not _comparable(value, self.high):
            self.high, self.high_strict = value, strict
        elif value < self.high or (value == self.high and strict):  # type: ignore[operator]
            self.high, self.high_strict = value, strict

    def apply(self, op: str, value: object) -> Optional[str]:
        """Apply ``column <op> value``; returns the contradiction reason
        when the constraint set became unsatisfiable."""
        if op == "=":
            self.narrow_low(value, False)
            self.narrow_high(value, False)
        elif op in ("!=", "<>"):
            self.compared = True
            self.not_equal.add(value)
        elif op == "<":
            self.narrow_high(value, True)
        elif op == "<=":
            self.narrow_high(value, False)
        elif op == ">":
            self.narrow_low(value, True)
        elif op == ">=":
            self.narrow_low(value, False)
        return self._conflict()

    def assert_null(self) -> Optional[str]:
        self.asserted_null = True
        return self._conflict()


_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=",
            "!=": "!=", "<>": "<>"}


def _conjuncts(expr: n.Expr) -> Iterator[n.Expr]:
    if isinstance(expr, n.BinOp) and expr.op == "and":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def _column_comparison(expr: n.Expr) -> Optional[tuple[n.Name, str, object]]:
    """Match ``name <op> literal`` (either orientation); returns
    (column, normalized op, value) or None."""
    if not (isinstance(expr, n.BinOp) and expr.op in _COMPARISONS):
        return None
    left, right = expr.left, expr.right
    if isinstance(left, n.Name) and isinstance(right, n.Lit):
        return left, expr.op, right.value
    if isinstance(left, n.Lit) and isinstance(right, n.Name):
        return right, _FLIPPED[expr.op], left.value
    return None


def _clause_diagnostics(clause: str, expr: n.Expr) -> Iterator[Diagnostic]:
    """The RPR01x lints over one WHERE/HAVING/QUALIFY predicate."""
    if _is_constant(expr):
        yield make_diagnostic(
            "RPR012",
            f"{clause} predicate references no columns; it keeps or "
            "drops every row",
            span=n.span_of(expr),
            hint="remove the constant predicate or reference a column")
    for node in _walk_expr(expr):
        if (isinstance(node, n.BinOp) and node.op in _COMPARISONS
                and (isinstance(node.left, n.Lit)
                     and node.left.value is None
                     or isinstance(node.right, n.Lit)
                     and node.right.value is None)):
            yield make_diagnostic(
                "RPR013",
                f"comparison with NULL in {clause} is never TRUE "
                "(three-valued logic)",
                span=n.span_of(node),
                hint="use IS NULL / IS NOT NULL")
    facts: dict[tuple[Optional[str], str], _ColumnFacts] = {}
    reported: set[tuple[Optional[str], str]] = set()
    for conjunct in _conjuncts(expr):
        column: Optional[n.Name] = None
        reason: Optional[str] = None
        match = _column_comparison(conjunct)
        if match is not None:
            column, op, value = match
            if value is None:  # NULL comparison: RPR013's business
                continue
            reason = facts.setdefault(
                (column.table, column.name), _ColumnFacts()).apply(op, value)
        elif (isinstance(conjunct, n.BetweenExpr) and not conjunct.negated
                and isinstance(conjunct.operand, n.Name)
                and isinstance(conjunct.low, n.Lit)
                and isinstance(conjunct.high, n.Lit)):
            column = conjunct.operand
            state = facts.setdefault((column.table, column.name),
                                     _ColumnFacts())
            if conjunct.low.value is not None:
                reason = state.apply(">=", conjunct.low.value)
            if reason is None and conjunct.high.value is not None:
                reason = state.apply("<=", conjunct.high.value)
        elif (isinstance(conjunct, n.IsNullExpr) and not conjunct.negated
                and isinstance(conjunct.operand, n.Name)):
            column = conjunct.operand
            reason = facts.setdefault((column.table, column.name),
                                      _ColumnFacts()).assert_null()
        if reason is not None and column is not None:
            key = (column.table, column.name)
            if key not in reported:
                reported.add(key)
                yield make_diagnostic(
                    "RPR011",
                    f"contradictory constraints on {column.display()} in "
                    f"{clause}: {reason}; no row can satisfy them",
                    span=n.span_of(conjunct) or n.span_of(expr),
                    hint="the predicate is unsatisfiable; the query "
                         "always returns zero rows")


def _predicate_pass(select: n.Select) -> Iterator[Diagnostic]:
    for block in _selects_of(select):
        for clause, expr in (("WHERE", block.where),
                             ("HAVING", block.having),
                             ("QUALIFY", block.qualify)):
            if expr is not None:
                yield from _clause_diagnostics(clause, expr)


# ---------------------------------------------------------------------------
# Binding pass (RPR00x)
# ---------------------------------------------------------------------------


def _suggest_table(name: str, provider: object) -> Optional[str]:
    entries = getattr(provider, "entries", None)
    if entries is None:
        return None
    known = [entry.name for entry in entries()]
    close = difflib.get_close_matches(name, known, n=1)
    return f"did you mean {close[0]!r}?" if close else None


def diagnostic_from_error(exc: UserError,
                          provider: object = None) -> Diagnostic:
    """Classify a frontend/catalog error raised while binding into its
    stable diagnostic code."""
    message = str(exc.args[0]) if exc.args else str(exc)
    line = getattr(exc, "line", None)
    column = getattr(exc, "column", None)
    hint: Optional[str] = None
    if isinstance(exc, ParseError):
        code = "RPR001"
    elif isinstance(exc, EntityNotFound):
        code = "RPR002"
        prefix = message.split(":", 1)[-1].strip().strip("'\"")
        if provider is not None:
            hint = _suggest_table(prefix, provider)
    elif isinstance(exc, BindError):
        if "column" in message:
            code = "RPR003"
            if "ambiguous" in message:
                hint = "qualify the column with its table alias"
        elif "unknown table" in message or "unknown view" in message:
            code = "RPR002"
        else:
            code = "RPR005"
    elif isinstance(exc, TypeError_):
        code = "RPR004"
    else:
        code = "RPR005"
    # SqlError embeds "at line L, column C" in the message once located;
    # the structured span makes that suffix redundant in a Diagnostic.
    if isinstance(exc, SqlError) and line is not None:
        suffix = f" at line {line}, column {column}"
        if message.endswith(suffix):
            message = message[:-len(suffix)]
    return make_diagnostic(code, message, line=line, column=column,
                           hint=hint)


def _bind_select(select: n.Select, provider: object, registry: object,
                 parameters: object,
                 ) -> tuple[Optional[lp.PlanNode], Optional[Diagnostic]]:
    try:
        if registry is None:
            plan = build_plan(select, provider, parameters=parameters)
        else:
            plan = build_plan(select, provider, registry,
                              parameters=parameters)
        return plan, None
    except UserError as exc:
        return None, diagnostic_from_error(exc, provider)


# ---------------------------------------------------------------------------
# Incrementality lints (RPR02x)
# ---------------------------------------------------------------------------


def _incrementality_pass(plan: lp.PlanNode, refresh_mode: Optional[str],
                         span: Optional[n.Span]) -> Iterator[Diagnostic]:
    """Explain FULL-refresh resolution (RPR021) and stateful-maintenance
    fallbacks (RPR022) for a bound defining query.

    ``refresh_mode`` is the requested mode for a dynamic-table
    definition (``auto`` / ``full`` / ``incremental``) or None when the
    statement is a plain query being pre-checked — then the lints fire
    at INFO severity, describing what *would* happen.
    """
    from repro.ivm.aggstate import refresh_strategy

    check = incrementalizability(plan)
    if not check.supported:
        if refresh_mode == "incremental":
            severity = Severity.ERROR
            outcome = ("refresh_mode=incremental will be rejected "
                       "(NotIncrementalizableError)")
        elif refresh_mode in ("auto", "full"):
            severity = (Severity.WARNING if refresh_mode == "auto"
                        else Severity.INFO)
            outcome = "the dynamic table resolves to FULL refresh"
        else:
            severity = Severity.INFO
            outcome = ("as a dynamic table this query would resolve to "
                       "FULL refresh")
        seen: set[str] = set()
        for reason in check.reasons:
            if reason in seen:
                continue
            seen.add(reason)
            yield make_diagnostic("RPR021", f"{outcome}: {reason}",
                                  severity=severity, span=span,
                                  hint=_hint_for_reason(reason))
        return
    severity = (Severity.WARNING if refresh_mode in ("auto", "incremental")
                else Severity.INFO)
    for node, strategy, reason in refresh_strategy(plan):
        if strategy == "stateful":
            continue
        yield make_diagnostic(
            "RPR022",
            f"{node._describe()} cannot keep O(|delta|) accumulator "
            f"state ({reason}); incremental refresh falls back to "
            "affected-group endpoint recomputation",
            severity=severity, span=span,
            hint="exact, retractable aggregates (COUNT/SUM/AVG over "
                 "non-FLOAT inputs) maintain state in O(|delta|)")


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def analyze_bound_query(select: n.Select, plan: Optional[lp.PlanNode], *,
                        refresh_mode: Optional[str] = None, sql: str = "",
                        schema: Optional[Schema] = None) -> AnalysisReport:
    """Predicate + incrementality passes over an already-bound query
    (no second bind); ``plan`` may be None when binding failed."""
    diagnostics = list(_predicate_pass(select))
    if plan is not None:
        diagnostics.extend(_incrementality_pass(
            plan, refresh_mode, n.span_of(select)))
        if schema is None:
            schema = plan.schema
    return AnalysisReport(sql, diagnostics, schema=schema)


def _analyze_select_statement(select: n.Select, provider: object,
                              registry: object, parameters: object,
                              refresh_mode: Optional[str], sql: str,
                              span: Optional[n.Span]) -> AnalysisReport:
    plan, bind_diag = _bind_select(select, provider, registry, parameters)
    diagnostics: list[Diagnostic] = []
    if bind_diag is not None:
        diagnostics.append(bind_diag)
    diagnostics.extend(_predicate_pass(select))
    if plan is not None:
        diagnostics.extend(_incrementality_pass(
            plan, refresh_mode, span or n.span_of(select)))
    return AnalysisReport(sql, diagnostics,
                          schema=plan.schema if plan is not None else None)


def _table_schema(provider: object, table: str,
                  ) -> tuple[Optional[Schema], Optional[Diagnostic]]:
    try:
        return provider.table_schema(table), None  # type: ignore[attr-defined]
    except UserError as exc:
        return None, diagnostic_from_error(exc, provider)


def _bind_against(expr: n.Expr, schema: Schema, registry: object,
                  parameters: object) -> Optional[Diagnostic]:
    try:
        if registry is None:
            bind_expression(expr, schema, parameters=parameters)
        else:
            bind_expression(expr, schema, registry, parameters=parameters)
        return None
    except UserError as exc:
        return diagnostic_from_error(exc)


def _analyze_dml(statement: Union[n.Insert, n.Delete, n.Update],
                 provider: object, registry: object, parameters: object,
                 sql: str) -> AnalysisReport:
    diagnostics: list[Diagnostic] = []
    schema, table_diag = _table_schema(provider, statement.table)
    if table_diag is not None:
        diagnostics.append(table_diag)
    where = getattr(statement, "where", None)
    if schema is not None:
        bound_schema = schema.requalified(statement.table)
        if where is not None:
            diag = _bind_against(where, bound_schema, registry, parameters)
            if diag is not None:
                diagnostics.append(diag)
        if isinstance(statement, n.Update):
            for column, expr in statement.assignments:
                try:
                    schema.resolve(column)
                except UserError as exc:
                    diagnostics.append(diagnostic_from_error(exc))
                diag = _bind_against(expr, bound_schema, registry,
                                     parameters)
                if diag is not None:
                    diagnostics.append(diag)
        if isinstance(statement, n.Insert):
            diagnostics.extend(
                _insert_shape(statement, schema, provider, registry,
                              parameters))
    if where is not None:
        diagnostics.extend(_clause_diagnostics("WHERE", where))
    return AnalysisReport(sql, diagnostics)


def _insert_shape(statement: n.Insert, schema: Schema, provider: object,
                  registry: object, parameters: object,
                  ) -> Iterator[Diagnostic]:
    for column in statement.columns:
        try:
            schema.resolve(column)
        except UserError as exc:
            yield diagnostic_from_error(exc)
    width = len(statement.columns) if statement.columns else len(schema)
    for row in statement.rows:
        if len(row) != width:
            yield make_diagnostic(
                "RPR005",
                f"INSERT arity mismatch: expected {width} values, "
                f"got {len(row)}",
                span=n.span_of(statement),
                hint="match the VALUES row width to the target columns")
            break
    if statement.query is not None:
        plan, bind_diag = _bind_select(statement.query, provider, registry,
                                       parameters)
        if bind_diag is not None:
            yield bind_diag
        elif plan is not None and len(plan.schema) != width:
            yield make_diagnostic(
                "RPR005",
                f"INSERT arity mismatch: target expects {width} "
                f"columns, SELECT produces {len(plan.schema)}",
                span=n.span_of(statement))


def analyze_statement(statement: n.Statement, provider: object,
                      registry: object = None, *, parameters: object = None,
                      sql: str = "") -> AnalysisReport:
    """Analyze one parsed statement against the catalog; never raises
    for problems in the statement itself."""
    span = n.span_of(statement)
    if isinstance(statement, n.Query):
        return _analyze_select_statement(
            statement.select, provider, registry, parameters, None, sql,
            span)
    if isinstance(statement, n.CreateDynamicTable):
        return _analyze_select_statement(
            statement.query, provider, registry, parameters,
            statement.refresh_mode.lower(), sql, span)
    if isinstance(statement, n.CreateView):
        return _analyze_select_statement(
            statement.query, provider, registry, parameters, None, sql,
            span)
    if isinstance(statement, (n.Insert, n.Delete, n.Update)):
        return _analyze_dml(statement, provider, registry, parameters, sql)
    # DDL / lifecycle / transaction-control statements have no
    # expression surface to analyze.
    return AnalysisReport(sql, ())


def analyze_sql(sql: str, provider: object, registry: object = None,
                ) -> AnalysisReport:
    """Parse and analyze one SQL statement (no session state needed)."""
    from repro.sql.parser import parse_prepared

    try:
        statement, parameter_nodes = parse_prepared(sql)
    except ParseError as exc:
        return AnalysisReport(sql, (diagnostic_from_error(exc),))
    parameters = None
    if parameter_nodes:
        from repro.api.prepared import ParameterSpec

        parameters = ParameterSpec(parameter_nodes)
    return analyze_statement(statement, provider, registry,
                             parameters=parameters, sql=sql)
