"""Bridging live executions to the isolation formalism.

The section-4 formalism (:mod:`repro.isolation`) analyzes *histories*;
this module reconstructs a history from a running
:class:`~repro.api.Database`:

* every committed version of a **base table** becomes a
  :class:`~repro.isolation.history.Write` (environmental information);
* every committed **dynamic-table refresh** becomes a
  :class:`~repro.isolation.history.Derive` whose sources are the frontier
  versions it consumed — pure computation, exactly as section 4 states:
  "In Snowflake, all DT refreshes consist exclusively of derivation
  operations";
* queries observed through :class:`RecordingReader` become
  :class:`~repro.isolation.history.Read` events of the versions they
  actually resolved.

This lets tests and examples demonstrate the paper's central claim on
*real executions*: querying two DTs with mismatched data timestamps
produces a G-single cycle (read skew) that the classic model would miss,
while reading a single DT stays clean.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.api import Database, QueryResult
from repro.core.dynamic_table import DynamicTable
from repro.engine.executor import evaluate
from repro.engine.expressions import EvalContext
from repro.engine.relation import Relation
from repro.isolation.history import (Derive, Event, History, Read, Version,
                                     Write)
from repro.plan.builder import build_plan
from repro.sql import nodes as n
from repro.sql.parser import parse_statement
from repro.errors import UserError
from repro.util.timeutil import Timestamp


@dataclass
class ObservedRead:
    """One query's resolved source versions."""

    reader_txn: int
    versions: list[Version] = field(default_factory=list)


class RecordingReader:
    """A snapshot resolver that records which table versions it serves."""

    def __init__(self, db: Database, wall: Timestamp, observed: ObservedRead):
        self._db = db
        self._wall = wall
        self._observed = observed

    def scan(self, table: str) -> Relation:
        entry = self._db.catalog.get(table)
        if entry.kind == "dynamic table":
            entry.payload.ensure_readable()  # type: ignore[union-attr]
        versioned = self._db.catalog.versioned_table(table)
        version = versioned.version_at(self._wall)
        self._observed.versions.append(Version(table, version.index))
        return versioned.relation(version)


class HistoryRecorder:
    """Reconstructs an isolation history from a database's state plus any
    reads observed through :meth:`query`."""

    def __init__(self, db: Database):
        self._db = db
        self._reads: list[ObservedRead] = []
        # Reader transactions get ids far above any synthetic writer id.
        self._reader_ids = itertools.count(1_000_000)

    # -- observing reads ---------------------------------------------------------

    def query(self, sql: str, wall: Timestamp | None = None) -> QueryResult:
        """Run a query, recording the exact versions it read."""
        statement = parse_statement(sql)
        if not isinstance(statement, n.Query):
            raise UserError("HistoryRecorder.query requires a SELECT")
        if wall is None:
            wall = self._db.clock.now()
        observed = ObservedRead(next(self._reader_ids))
        self._reads.append(observed)
        plan = build_plan(statement.select, self._db.catalog,
                          self._db.registry)
        reader = RecordingReader(self._db, wall, observed)
        ctx = EvalContext(timestamp=wall)
        return QueryResult.from_relation(evaluate(plan, reader, ctx))

    # -- reconstruction ------------------------------------------------------------

    def history(self) -> History:
        """Build the history: writes for base-table versions, derivations
        for DT refreshes, reads for the observed queries."""
        events: list[Event] = []
        version_order: dict[str, list[Version]] = {}
        #: (table, version index) -> synthetic installer txn id.
        txn_ids: dict[tuple[str, int], int] = {}
        next_txn = itertools.count(1)

        def installer_txn(table: str, index: int) -> int:
            key = (table, index)
            if key not in txn_ids:
                txn_ids[key] = next(next_txn)
            return txn_ids[key]

        # Base tables: every non-empty version is a Write.
        for entry in self._db.catalog.entries(kind="table",
                                              include_dropped=True):
            versioned = self._db.catalog.versioned_table(entry.name) \
                if not entry.dropped else entry.payload
            order: list[Version] = []
            for index in range(1, versioned.version_count):
                version = versioned.version(index)
                v = Version(entry.name, version.index)
                order.append(v)
                events.append(Write(installer_txn(entry.name, version.index), v))
            if order:
                version_order[entry.name] = order

        # Dynamic tables: every successful refresh is a Derive over the
        # frontier versions it consumed.
        for entry in self._db.catalog.entries(kind="dynamic table",
                                              include_dropped=True):
            dt = entry.payload
            assert isinstance(dt, DynamicTable)
            order = []
            for record in dt.refresh_history:
                if not record.succeeded or record.frontier is None:
                    continue
                table_version = dt.table.version_for_refresh(
                    record.data_timestamp)
                derived = Version(dt.name, table_version.index)
                sources = tuple(
                    Version(cursor.table, cursor.version_index)
                    for cursor in sorted(record.frontier.cursors.values(),
                                         key=lambda c: c.table))
                if derived in {v for v in order}:
                    continue  # NO_DATA refreshes reuse the version
                order.append(derived)
                events.append(Derive(
                    installer_txn(dt.name, table_version.index),
                    derived, sources))
            if order:
                version_order[dt.name] = order

        # Observed reads.
        for observed in self._reads:
            for version in observed.versions:
                if version.index == 0:
                    continue  # empty initial version carries no information
                events.append(Read(observed.reader_txn, version))

        return History(events, version_order)
