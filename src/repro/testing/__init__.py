"""Testing harnesses: the DVS oracle plumbing, the history recorder, and
the Snowtrail-style configuration comparison (section 6.1)."""

from repro.testing.recorder import HistoryRecorder
from repro.testing.snowtrail import compare_configurations

__all__ = ["HistoryRecorder", "compare_configurations"]
