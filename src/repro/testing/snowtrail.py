"""Configuration-comparison testing (the paper's fifth testing level).

Section 6.1: "The fifth level is Snowtrail, which allows us to re-run a
customer query on two different system configurations and compare
obfuscated results. We test the correctness and performance of our changes
on a realistic distribution of queries."

:func:`compare_configurations` replays one workload (DDL + DML + DT
definitions + refresh points) against two independently configured
databases and compares the **obfuscated** final states: every table's rows
are reduced to an order-independent digest, so the comparison never
exposes row contents — mirroring Snowtrail's privacy posture.

Configurations differ in engine knobs that must not change results:
the outer-join derivative strategy, the cost model, warehouse sizes, or
micro-partition sizing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable

from repro.api import Database
from repro.engine import types as t

#: A workload is a list of (simulated time, action) pairs; actions get the
#: database to operate on.
Workload = list[tuple[int, Callable[[Database], None]]]


@dataclass(frozen=True)
class ObfuscatedResult:
    """An order-independent digest of one table's contents."""

    table: str
    row_count: int
    digest: str

    @staticmethod
    def of(db: Database, table: str) -> "ObfuscatedResult":
        relation = db.catalog.versioned_table(table).relation()
        row_hashes = sorted(t.stable_hash(row) for row in relation.rows)
        digest = hashlib.sha1("\n".join(row_hashes).encode()).hexdigest()
        return ObfuscatedResult(table, len(relation), digest[:16])


@dataclass
class ComparisonReport:
    """The outcome of one Snowtrail-style comparison run."""

    matches: list[str] = field(default_factory=list)
    mismatches: list[tuple[str, ObfuscatedResult, ObfuscatedResult]] = \
        field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return not self.mismatches

    def pretty(self) -> str:
        if self.consistent:
            return (f"{len(self.matches)} tables compared, all digests "
                    "match")
        lines = [f"{len(self.mismatches)} MISMATCHES:"]
        for table, left, right in self.mismatches:
            lines.append(f"  {table}: {left.row_count} rows/{left.digest} "
                         f"vs {right.row_count} rows/{right.digest}")
        return "\n".join(lines)


def run_workload(db: Database, workload: Workload,
                 horizon: int) -> Database:
    """Inject a workload into a database and run it to the horizon."""
    for time, action in workload:
        db.at(time, lambda act=action: act(db))
    db.run_until(horizon)
    return db


def compare_configurations(
        make_baseline: Callable[[], Database],
        make_candidate: Callable[[], Database],
        workload: Workload, horizon: int,
        tables: list[str] | None = None) -> ComparisonReport:
    """Run one workload on two configurations; compare obfuscated state.

    ``tables`` defaults to every base table and dynamic table present in
    the *baseline* after the run.
    """
    baseline = run_workload(make_baseline(), workload, horizon)
    candidate = run_workload(make_candidate(), workload, horizon)

    if tables is None:
        tables = sorted(
            entry.name for entry in baseline.catalog.entries()
            if entry.kind in ("table", "dynamic table"))

    report = ComparisonReport()
    for table in tables:
        left = ObfuscatedResult.of(baseline, table)
        right = ObfuscatedResult.of(candidate, table)
        if left.digest == right.digest:
            report.matches.append(table)
        else:
            report.mismatches.append((table, left, right))
    return report
