"""Experiment crossover: incremental vs full refresh as churn grows.

Paper (section 6.3): the 67%-below-1% statistic "underscores the
importance of efficient incremental refreshes", while "21% of refreshes
change more than 10% of their DT, highlighting the need to be able to
dynamically choose full refreshes when a large fraction of the data has
changed."

Two query series, measured as actual Python runtime:

* **linear plan** (filter + project): differentiation is truly O(Δ) — at
  0.1% churn incremental wins by orders of magnitude; as churn → 100% the
  delta approaches 2× the table (delete+insert per row) and full
  recomputation wins. This is the crossover the paper's dynamic
  action-choice motivation describes.
* **aggregate plan** (GROUP BY): the affected-group derivative evaluates
  its input at *both interval endpoints* because, per section 5.5.3,
  "none of our derivatives so far reuse the state from preceding data
  timestamps already stored in the DT. They all work by computing changes
  purely in terms of the sources." Incremental cost is therefore bounded
  below by a full input scan — reproducing exactly the limitation the
  paper flags as its top future-work item ("we expect major performance
  opportunities from incorporating a 'previous state'").
"""

import time

from repro.engine.executor import evaluate
from repro.engine.relation import DictResolver, Relation
from repro.engine.schema import schema_of
from repro.engine.types import SqlType
from repro.ivm.changes import ChangeSet
from repro.ivm.differentiator import DictDeltaSource, differentiate
from repro.plan.builder import DictSchemaProvider, build_plan
from repro.sql.parser import parse_query

from reporting import emit, table

ITEMS = schema_of(("id", SqlType.INT), ("grp", SqlType.TEXT),
                  ("val", SqlType.INT), table="items")
PROVIDER = DictSchemaProvider({"items": ITEMS})
TABLE_ROWS = 8_000
GROUPS = 400

LINEAR_PLAN = build_plan(parse_query(
    "SELECT id, grp, val * 2 doubled FROM items WHERE val >= 0"), PROVIDER)
AGGREGATE_PLAN = build_plan(parse_query(
    "SELECT grp, count(*) n, sum(val) s FROM items GROUP BY grp"), PROVIDER)


def _base():
    rows = [(i, f"g{i % GROUPS}", i % 100) for i in range(TABLE_ROWS)]
    return Relation(ITEMS, rows, [f"b:{i}" for i in range(TABLE_ROWS)])


BASE = _base()


def _mutated(fraction: float):
    count = int(TABLE_ROWS * fraction)
    delta = ChangeSet()
    pairs = []
    for index, (row_id, row) in enumerate(BASE.pairs()):
        if index < count:
            new_row = (row[0], row[1], row[2] + 1)
            delta.delete(row_id, row)
            delta.insert(row_id, new_row)
            pairs.append((row_id, new_row))
        else:
            pairs.append((row_id, row))
    return Relation.from_pairs(ITEMS, pairs), delta


def _time(function, repeats=3):
    function()  # warmup: lazy imports and caches out of the measurement
    samples = []
    for __ in range(repeats):
        start = time.perf_counter()
        function()
        samples.append(time.perf_counter() - start)
    return min(samples)  # min is robust to scheduler noise


def _sweep(plan, fractions):
    incremental = {}
    full = {}
    for fraction in fractions:
        new_relation, delta = _mutated(fraction)
        source = DictDeltaSource({"items": BASE}, {"items": new_relation},
                                 {"items": delta})
        resolver = DictResolver({"items": new_relation})
        incremental[fraction] = _time(lambda: differentiate(plan, source))
        full[fraction] = _time(lambda: evaluate(plan, resolver))
    return incremental, full


def test_crossover(benchmark):
    fractions = [0.001, 0.01, 0.05, 0.25, 1.0]
    linear_incr, linear_full = _sweep(LINEAR_PLAN, fractions)
    agg_incr, agg_full = _sweep(AGGREGATE_PLAN, fractions)

    new_relation, delta = _mutated(0.01)
    source = DictDeltaSource({"items": BASE}, {"items": new_relation},
                             {"items": delta})
    benchmark(lambda: differentiate(LINEAR_PLAN, source))

    # Linear plan: crossover exists.
    assert linear_full[0.001] > 10 * linear_incr[0.001]  # incr dominates
    assert linear_incr[1.0] > linear_full[1.0]           # full wins at 100%
    advantage = [linear_full[f] / linear_incr[f] for f in fractions]
    assert advantage[0] > advantage[-1]

    # Aggregate plan: endpoint evaluation bounds incremental from below —
    # the section 5.5.3 no-state-reuse limitation.
    assert agg_incr[0.001] > 0.3 * agg_full[0.001]

    rows = []
    for fraction in fractions:
        rows.append([
            f"{fraction:.1%}",
            f"{linear_incr[fraction] * 1e3:.2f} ms",
            f"{linear_full[fraction] * 1e3:.2f} ms",
            f"{linear_full[fraction] / linear_incr[fraction]:.1f}x",
            f"{agg_incr[fraction] * 1e3:.2f} ms",
            f"{agg_full[fraction] * 1e3:.2f} ms",
            f"{agg_full[fraction] / agg_incr[fraction]:.1f}x",
        ])
    emit("crossover — incremental vs full refresh "
         f"({TABLE_ROWS} rows, {GROUPS} groups)", [
             *table(["rows changed",
                     "linear incr", "linear full", "speedup",
                     "agg incr", "agg full", "speedup"], rows),
             "",
             "paper shape (linear): incremental dominates at <1% churn; "
             "full wins at ~100% churn.",
             "paper limitation (aggregate): derivatives recompute from "
             "sources (no state reuse, section 5.5.3), so incremental "
             "aggregation pays a full input scan regardless of churn.",
         ])
