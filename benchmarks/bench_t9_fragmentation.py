"""Experiment fragmentation: hidden intermediate DTs (section 5.5.3).

The paper's stated plan: "We intend to automatically split queries into
fragments, with hidden, internal DTs containing the intermediate state."
Our extension implements the UNION ALL case; this ablation measures the
benefit on a mixed query —

    SELECT ...big incremental branch...      -- differentiable
    UNION ALL SELECT 0, count(*) FROM tiny   -- scalar agg: FULL only

Without fragmentation the scalar-aggregate branch forces the *entire*
query into FULL mode: every refresh rescans the big table. With
fragmentation, the big branch refreshes incrementally (cost ∝ delta), and
the scalar branch — whose source did not even change — takes the free
NO_DATA path thanks to its own per-fragment frontier. We report rows
scanned per refresh and simulated refresh durations from the cost model.
"""

from repro import Database
from repro.core.dynamic_table import RefreshAction
from repro.scheduler.cost import CostModel
from repro.util.timeutil import MINUTE, SECOND

from reporting import emit, table

BIG_ROWS = 60_000
MIXED_SQL = ("SELECT id, val FROM big WHERE val >= 0 "
             "UNION ALL SELECT 0, count(*) FROM tiny")


def _build():
    db = Database()
    db.create_warehouse("wh")
    db.execute("CREATE TABLE big (id int, val int)")
    db.execute("CREATE TABLE tiny (id int)")
    # Bulk-load through the transaction API (a 60k-value SQL literal would
    # spend the benchmark's time in the lexer).
    txn = db.txns.begin()
    txn.insert_rows("big", [(i, i % 100) for i in range(BIG_ROWS)])
    txn.commit()
    db.execute("INSERT INTO tiny VALUES (1), (2)")
    db.create_dynamic_table("plain", MIXED_SQL, "1 minute", "wh")
    db.create_dynamic_table("frag", MIXED_SQL, "1 minute", "wh",
                            auto_fragment=True)
    return db


def _refresh_once(db):
    """One small insert, then refresh both variants; returns the records."""
    db.execute("INSERT INTO big VALUES (999999, 1)")
    db.refresh_dynamic_table("plain")
    db.refresh_dynamic_table("frag")
    plain = db.dynamic_table("plain").refresh_history[-1]
    fragments = [db.dynamic_table(f"_frag$frag{i}").refresh_history[-1]
                 for i in range(2)]
    main = db.dynamic_table("frag").refresh_history[-1]
    return plain, fragments, main


def test_fragmentation_ablation(benchmark):
    db = _build()
    plain, fragments, main = benchmark(lambda: _refresh_once(db))

    cost = CostModel()
    plain_rows = plain.source_rows_scanned
    frag_rows = (sum(f.source_rows_scanned for f in fragments)
                 + main.source_rows_scanned)
    plain_duration = cost.duration_of(plain)
    frag_duration = (sum(cost.duration_of(f) for f in fragments)
                     + cost.duration_of(main))

    assert plain.action == RefreshAction.FULL            # forced FULL
    assert fragments[0].action == RefreshAction.INCREMENTAL
    # The scalar-aggregate fragment reads only `tiny`, which did not
    # change — so it takes the free NO_DATA path, a benefit the
    # unfragmented query can never get (its single frontier always moved).
    assert fragments[1].action == RefreshAction.NO_DATA
    assert frag_rows < plain_rows / 10                   # scan savings
    assert frag_duration < plain_duration                # duration win
    assert db.check_dvs("plain") and db.check_dvs("frag")

    emit("fragmentation — hidden intermediate DTs (section 5.5.3 "
         f"extension; big table = {BIG_ROWS} rows, 1-row delta)", [
             *table(["variant", "refresh actions", "source rows scanned",
                     "modeled duration"], [
                 ["unfragmented", str(plain.action), plain_rows,
                  f"{plain_duration / SECOND:.1f} s"],
                 ["fragmented",
                  f"{fragments[0].action}+{fragments[1].action}"
                  f"+{main.action}", frag_rows,
                  f"{frag_duration / SECOND:.1f} s"],
             ]),
             "",
             "paper (5.5.3): intermediate state lets each fragment choose "
             "its own refresh mode; one bad branch no longer forces the "
             "whole query to FULL.",
             "trade-off: fragmentation pays one fixed refresh cost per "
             "fragment, so it wins only when the avoided recompute "
             "exceeds the extra fixed costs (it loses on small tables).",
         ])
