"""T13 — durability ablation: WAL commit overhead and recovery modes.

Two questions the durability subsystem (``repro.durability``) must
answer with numbers, not vibes:

* **Commit overhead** — how much does write-ahead logging cost per
  commit? Measured as single-row INSERT autocommits against an
  in-memory database, a durable database with ``durability="async"``
  (WAL written, no fsync), and ``durability="fsync"`` (one fsync per
  commit). Acceptance: fsync-on commits stay within 3x of in-memory.
* **Recovery modes** — a checkpoint must buy something: replay cost
  scales with *history length* (every logged write is re-applied),
  checkpoint load with *live state size*. On an update-heavy workload —
  a small table rewritten many times over, the shape checkpoints exist
  for — reopening from checkpoint + empty WAL must be strictly faster
  than replaying the full WAL history it replaced.

Deterministic facts (commit counts, records replayed, invariant checks)
land in ``BENCH_durability.json``; wall-clock numbers go to
``results.txt``.

Run:  PYTHONPATH=src python benchmarks/bench_t13_durability.py
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(__file__))

from repro import Database  # noqa: E402

from reporting import emit, emit_json, table  # noqa: E402

#: Single-row INSERT autocommits per throughput sample.
COMMITS = 400
#: Live rows of the recovery table (what a checkpoint must restore).
SEED_ROWS = 200
#: Update commits accumulated in the WAL (what replay must re-apply);
#: each rewrites ``UPDATE_ROWS`` rows, so history is ~50x live state.
REPLAY_COMMITS = 400
UPDATE_ROWS = 50
#: Reopen samples per recovery mode (min taken).
REOPEN_SAMPLES = 3


def _seed(db: Database) -> None:
    db.create_warehouse("wh")
    db.execute("CREATE TABLE items (id int, val int)")


def _commit_loop(db: Database, commits: int) -> float:
    start = time.perf_counter()
    for index in range(commits):
        db.execute(f"INSERT INTO items VALUES ({index}, {index % 97})")
    return time.perf_counter() - start


def _throughput_sample(mode: str | None) -> float:
    if mode is None:
        db = Database()
        directory = None
    else:
        directory = tempfile.mkdtemp(prefix="bench-t13-")
        db = Database(path=directory, durability=mode)
    try:
        _seed(db)
        elapsed = _commit_loop(db, COMMITS)
        count = db.query("SELECT count(*) c FROM items").rows[0][0]
        assert count == COMMITS, count
        return elapsed
    finally:
        db.close()
        if directory is not None:
            shutil.rmtree(directory)


def _measure_throughput() -> dict:
    modes = {"memory": None, "async": "async", "fsync": "fsync"}
    seconds = {name: min(_throughput_sample(mode) for __ in range(3))
               for name, mode in modes.items()}
    return {
        "commits": COMMITS,
        "memory_ms": round(seconds["memory"] * 1e3, 2),
        "async_ms": round(seconds["async"] * 1e3, 2),
        "fsync_ms": round(seconds["fsync"] * 1e3, 2),
        "commits_per_s_fsync": round(COMMITS / seconds["fsync"]),
        "async_overhead": round(seconds["async"] / seconds["memory"], 2),
        "fsync_overhead": round(seconds["fsync"] / seconds["memory"], 2),
    }


def _reopen_seconds(directory: str) -> tuple[float, dict]:
    start = time.perf_counter()
    db = Database(path=directory)
    elapsed = time.perf_counter() - start
    try:
        recovery = db.durability_status()["recovery"]
        count = db.query("SELECT count(*) c FROM items").rows[0][0]
        assert count == SEED_ROWS, count
    finally:
        db.close()
    return elapsed, recovery


def _measure_recovery() -> dict:
    directory = tempfile.mkdtemp(prefix="bench-t13-recovery-")
    try:
        db = Database(path=directory)
        _seed(db)
        db.execute("INSERT INTO items VALUES " + ", ".join(
            f"({index}, 0)" for index in range(SEED_ROWS)))
        for index in range(REPLAY_COMMITS):
            db.execute(f"UPDATE items SET val = {index} "
                       f"WHERE id < {UPDATE_ROWS}")
        db.close()

        # Full WAL replay: every reopen replays the whole history (a
        # clean reopen appends nothing, so samples are repeatable).
        replay_samples = [_reopen_seconds(directory)
                          for __ in range(REOPEN_SAMPLES)]
        replay_s = min(seconds for seconds, __ in replay_samples)
        replay_report = replay_samples[0][1]
        assert replay_report["records_replayed"] >= REPLAY_COMMITS

        # Checkpoint, then reopen from checkpoint + empty WAL.
        db = Database(path=directory)
        db.checkpoint()
        db.close()
        ckpt_samples = [_reopen_seconds(directory)
                        for __ in range(REOPEN_SAMPLES)]
        ckpt_s = min(seconds for seconds, __ in ckpt_samples)
        ckpt_report = ckpt_samples[0][1]
        assert ckpt_report["records_replayed"] == 0
        assert ckpt_report["checkpoint_seq"] >= 1

        return {
            "commits": REPLAY_COMMITS,
            "live_rows": SEED_ROWS,
            "rows_touched_per_commit": UPDATE_ROWS,
            "replay_records": replay_report["records_replayed"],
            "checkpoint_records": ckpt_report["records_replayed"],
            "replay_ms": round(replay_s * 1e3, 2),
            "checkpoint_ms": round(ckpt_s * 1e3, 2),
            "recovery_speedup": round(replay_s / ckpt_s, 2),
        }
    finally:
        shutil.rmtree(directory)


_CACHE: dict = {}


def _results() -> dict:
    if not _CACHE:
        _CACHE["throughput"] = _measure_throughput()
        _CACHE["recovery"] = _measure_recovery()
        _report(_CACHE)
    return _CACHE


def _report(results: dict) -> None:
    tp, rec = results["throughput"], results["recovery"]
    emit_json("BENCH_durability.json", {
        "scenario": ("WAL commit overhead (in-memory vs async vs "
                     "fsync-per-commit) and recovery-mode comparison "
                     "(full WAL replay vs checkpoint + empty WAL)"),
        "commit_throughput": tp,
        "recovery": rec,
        "invariants_ok": (rec["checkpoint_records"] == 0
                          and rec["replay_records"] >= rec["commits"]),
        "timings": "see benchmarks/results.txt",
    })
    emit(f"T13 durability: commit overhead ({COMMITS} autocommits)",
         table(["mode", "ms", "overhead vs memory"],
               [["memory", tp["memory_ms"], "1.0"],
                ["async", tp["async_ms"], f"{tp['async_overhead']}x"],
                ["fsync", tp["fsync_ms"], f"{tp['fsync_overhead']}x"]]))
    emit(f"T13 durability: recovery modes ({REPLAY_COMMITS} update "
         f"commits x {UPDATE_ROWS} rows over {SEED_ROWS} live rows)", [
        f"full WAL replay ({rec['replay_records']} records): "
        f"{rec['replay_ms']}ms",
        f"checkpoint + empty WAL: {rec['checkpoint_ms']}ms",
        f"-> checkpoint recovery {rec['recovery_speedup']}x faster",
    ])


#: Acceptance: fsync-on commits within 3x of in-memory. Wall-clock
#: ratios flake on noisy shared CI runners, so CI sets a slack value
#: that still catches the WAL path becoming pathological (e.g. an
#: accidental fsync per row instead of per commit).
MAX_COMMIT_OVERHEAD = float(
    os.environ.get("DURABILITY_MAX_COMMIT_OVERHEAD", "3.0"))
#: Acceptance: checkpoint recovery strictly faster than full replay.
MIN_RECOVERY_SPEEDUP = float(
    os.environ.get("DURABILITY_MIN_RECOVERY_SPEEDUP", "1.0"))


def test_commit_overhead_within_bound():
    results = _results()
    assert results["throughput"]["fsync_overhead"] <= MAX_COMMIT_OVERHEAD, \
        results["throughput"]


def test_checkpoint_recovery_beats_full_replay():
    results = _results()
    assert results["recovery"]["recovery_speedup"] > MIN_RECOVERY_SPEEDUP, \
        results["recovery"]


if __name__ == "__main__":
    print(json.dumps(_results(), indent=2))
