"""Experiment outer-join: direct vs rewrite derivatives (section 5.5.1).

Paper: the original outer-join derivative rewrote into inner + anti-joins,
"but it had undesirable performance characteristics due to the repetition
of the Q and R terms ... the duplication grows exponentially with the
number of outer joins in the plan. To address this problem, we implemented
a direct differentiation operator for outer joins."

We differentiate a two-level outer-join plan under a tiny delta with both
strategies. The direct derivative joins only rows under affected keys;
the rewrite derivative's duplicated anti-join terms feed the full inputs
through the join kernels at both endpoints. Both produce identical change
sets (asserted); the direct one is faster and does far less join work.
"""

import time

from repro.engine.relation import Relation
from repro.engine.schema import schema_of
from repro.engine.types import SqlType
from repro.ivm.changes import ChangeSet
from repro.ivm.differentiator import DictDeltaSource, differentiate
from repro.plan.builder import DictSchemaProvider, build_plan
from repro.sql.parser import parse_query

from reporting import emit, table

FACTS = schema_of(("id", SqlType.INT), ("k1", SqlType.TEXT),
                  ("k2", SqlType.TEXT), table="facts")
DIM1 = schema_of(("key", SqlType.TEXT), ("a", SqlType.INT), table="dim1")
DIM2 = schema_of(("key", SqlType.TEXT), ("b", SqlType.INT), table="dim2")
PROVIDER = DictSchemaProvider({"facts": FACTS, "dim1": DIM1, "dim2": DIM2})

ROWS = 4_000
KEYS = 200

#: Two stacked outer joins — where rewrite-duplication compounds.
PLAN = build_plan(parse_query(
    "SELECT f.id, d1.a, d2.b FROM facts f "
    "LEFT JOIN dim1 d1 ON f.k1 = d1.key "
    "LEFT JOIN dim2 d2 ON f.k2 = d2.key"), PROVIDER)


def _tables():
    facts = Relation(
        FACTS, [(i, f"k{i % KEYS}", f"k{(i * 7) % KEYS}")
                for i in range(ROWS)],
        [f"f:{i}" for i in range(ROWS)])
    dim1 = Relation(DIM1, [(f"k{i}", i) for i in range(KEYS // 2)],
                    [f"d1:{i}" for i in range(KEYS // 2)])
    dim2 = Relation(DIM2, [(f"k{i}", i * 10) for i in range(KEYS // 2)],
                    [f"d2:{i}" for i in range(KEYS // 2)])
    return facts, dim1, dim2


FACTS_REL, DIM1_REL, DIM2_REL = _tables()


def _source_with_small_delta():
    """Insert 5 facts and update one dim1 row."""
    delta_facts = ChangeSet()
    new_fact_pairs = list(FACTS_REL.pairs())
    for offset in range(5):
        row = (ROWS + offset, f"k{offset}", f"k{offset + 1}")
        row_id = f"f:n{offset}"
        delta_facts.insert(row_id, row)
        new_fact_pairs.append((row_id, row))
    facts_new = Relation.from_pairs(FACTS, new_fact_pairs)

    delta_dim1 = ChangeSet()
    dim1_pairs = list(DIM1_REL.pairs())
    old_id, old_row = dim1_pairs[3]
    new_row = (old_row[0], old_row[1] + 1000)
    delta_dim1.delete(old_id, old_row)
    delta_dim1.insert(old_id, new_row)
    dim1_pairs[3] = (old_id, new_row)
    dim1_new = Relation.from_pairs(DIM1, dim1_pairs)

    return DictDeltaSource(
        {"facts": FACTS_REL, "dim1": DIM1_REL, "dim2": DIM2_REL},
        {"facts": facts_new, "dim1": dim1_new, "dim2": DIM2_REL},
        {"facts": delta_facts, "dim1": delta_dim1, "dim2": ChangeSet()})


SOURCE = _source_with_small_delta()


def _run(strategy):
    return differentiate(PLAN, SOURCE, outer_join_strategy=strategy)


def test_direct_strategy(benchmark):
    changes, stats = benchmark(_run, "direct")
    assert changes


def test_rewrite_strategy(benchmark):
    changes, stats = benchmark(_run, "rewrite")
    assert changes


def test_comparison_report(benchmark):
    def timed(strategy, repeats=3):
        result = _run(strategy)
        samples = []
        for __ in range(repeats):
            start = time.perf_counter()
            _run(strategy)
            samples.append(time.perf_counter() - start)
        return min(samples), result

    direct_time, (direct_changes, direct_stats) = timed("direct")
    rewrite_time, (rewrite_changes, rewrite_stats) = timed("rewrite")
    benchmark(_run, "direct")

    canon = lambda cs: sorted((c.action.value, c.row_id, c.row) for c in cs)
    assert canon(direct_changes) == canon(rewrite_changes)
    # Both strategies share the memoized endpoint evaluations; the direct
    # derivative's win is in join-kernel work (restricted vs full inputs).
    assert direct_stats.join_input_rows < rewrite_stats.join_input_rows / 5
    assert direct_time < rewrite_time

    emit("outer-join — direct vs rewrite derivative "
         f"({ROWS} facts, 2 stacked LEFT JOINs, tiny delta)", [
             *table(["strategy", "time", "join input rows",
                     "changes"], [
                 ["direct", f"{direct_time * 1e3:.2f} ms",
                  direct_stats.join_input_rows, len(direct_changes)],
                 ["rewrite (inner+anti)", f"{rewrite_time * 1e3:.2f} ms",
                  rewrite_stats.join_input_rows, len(rewrite_changes)],
             ]),
             "",
             f"speedup: {rewrite_time / direct_time:.1f}x; identical "
             "change sets (asserted).",
             "paper: term duplication in the rewrite approach forced the "
             "direct derivative.",
         ])
