"""Columnar execution core: row-major vs. columnar ablation.

The columnar refactor rebuilt the data plane around column-major blocks:
storage micro-partitions store column arrays, ``Relation`` carries them
into the executor, the expression compiler evaluates whole arrays at a
time (``compile_expression_columnar``), and ``ChangeSet`` went
struct-of-arrays with whole-partition delta building. This benchmark
measures the two workloads the refactor targets, flipping
:func:`repro.engine.relation.row_major_mode` to recover the pre-refactor
row-at-a-time code paths as the baseline (the row paths are kept alive in
the same binary precisely for this ablation — results are asserted
identical between modes):

* **scan+filter+project** — a 100k-row table scanned through a
  filter+project pipeline, the shape PR 1's batched execution work
  identified as the dominant cost. Acceptance: ≥ 2x.
* **incremental refresh** — ``bench_t2``'s incremental workload (the
  filter+project dynamic table), run through the real storage
  change-query path (partition-set difference → consolidation →
  differentiation) over mixed insert+delete deltas. Acceptance: a
  measurable throughput win.

Emits ``BENCH_columnar.json``. Unlike the other committed snapshots this
one necessarily contains measured timing ratios (the acceptance criterion
is a speedup); absolute milliseconds vary per machine and also land in
``results.txt``.
"""

import json
import os
import sys
import time

from repro.engine.executor import evaluate
from repro.engine.relation import row_major_mode
from repro.engine.schema import schema_of
from repro.engine.types import SqlType
from repro.ivm.differentiator import differentiate
from repro.plan.builder import DictSchemaProvider, build_plan
from repro.sql.parser import parse_query
from repro.storage.table import StagedWrite, VersionedTable
from repro.streams.changes import changes_between
from repro.txn.hlc import HlcTimestamp

sys.path.insert(0, os.path.dirname(__file__))
from reporting import emit, emit_json  # noqa: E402

ITEMS = schema_of(("id", SqlType.INT), ("grp", SqlType.TEXT),
                  ("val", SqlType.INT), table="items")
PROVIDER = DictSchemaProvider({"items": ITEMS})

TABLE_ROWS = 100_000
SCAN_SQL = ("SELECT id, grp, val, val * 2 d FROM items "
            "WHERE val >= 500 AND grp != 'g7'")
SCAN_PLAN = build_plan(parse_query(SCAN_SQL), PROVIDER)

#: bench_t2's incremental workload: the filter+project dynamic table.
REFRESH_SQL = "SELECT id, grp, val * 2 doubled FROM items WHERE val >= 0"
REFRESH_PLAN = build_plan(parse_query(REFRESH_SQL), PROVIDER)
REFRESH_DELTA_ROWS = 5_000
REFRESH_DELETE_ROWS = 200
REFRESHES = 4


def _make_table() -> VersionedTable:
    table = VersionedTable("items", ITEMS, 1)
    table.apply(StagedWrite(
        inserts=[(i, f"g{i % 50}", i % 1000) for i in range(TABLE_ROWS)]),
        HlcTimestamp(10))
    return table


class _TableResolver:
    """Snapshot resolver over one VersionedTable (current version)."""

    def __init__(self, table: VersionedTable):
        self._table = table

    def scan(self, name):
        return self._table.relation()

    def scan_pruned(self, name, bounds):
        return self._table.relation_pruned(None, bounds)


class _IntervalSource:
    """DeltaSource over one table's (old, new) version interval, backed by
    the real change-query path (partition-set difference)."""

    def __init__(self, table, old, new):
        self._table, self._old, self._new = table, old, new

    def scan_old(self, name):
        return self._table.relation(self._old)

    def scan_new(self, name):
        return self._table.relation(self._new)

    def scan_delta(self, name):
        return changes_between(self._table, self._old, self._new)


def _time_best(fn, repeats: int) -> tuple[float, object]:
    fn()  # warm (plan caches, relation materialization)
    best = float("inf")
    result = None
    for __ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _measure_scan() -> dict:
    columnar_table = _make_table()
    columnar_s, columnar_out = _time_best(
        lambda: evaluate(SCAN_PLAN, _TableResolver(columnar_table)), 7)
    with row_major_mode():
        row_table = _make_table()
        row_s, row_out = _time_best(
            lambda: evaluate(SCAN_PLAN, _TableResolver(row_table)), 7)
    assert columnar_out.rows == row_out.rows
    assert columnar_out.row_ids == row_out.row_ids
    return {
        "query": SCAN_SQL,
        "table_rows": TABLE_ROWS,
        "result_rows": len(columnar_out),
        "columnar_ms": round(columnar_s * 1e3, 2),
        "row_major_ms": round(row_s * 1e3, 2),
        "speedup": round(row_s / columnar_s, 2),
    }


def _refresh_cycle() -> tuple[float, int]:
    """One table lifetime: REFRESHES incremental refreshes over mixed
    insert+delete deltas; returns (differentiation seconds, delta rows)."""
    table = _make_table()
    total = 0.0
    delta_rows = 0
    ts = 20
    for round_index in range(REFRESHES):
        old = table.current_version
        base = round_index * REFRESH_DELTA_ROWS
        deletes = {f"b1:{base + offset}"
                   for offset in range(REFRESH_DELETE_ROWS)}
        inserts = [(TABLE_ROWS + base + j, f"g{j % 50}", j % 1000)
                   for j in range(REFRESH_DELTA_ROWS)]
        table.apply(StagedWrite(inserts=inserts, deletes=deletes),
                    HlcTimestamp(ts))
        ts += 10
        start = time.perf_counter()
        changes, __ = differentiate(
            REFRESH_PLAN, _IntervalSource(table, old, table.current_version))
        total += time.perf_counter() - start
        delta_rows += len(changes)
    return total, delta_rows


def _measure_refresh() -> dict:
    samples = [_refresh_cycle() for __ in range(3)]
    columnar_s = min(seconds for seconds, __ in samples)
    delta_rows = samples[0][1]
    with row_major_mode():
        row_s = min(_refresh_cycle()[0] for __ in range(3))
    total_delta = REFRESHES * (REFRESH_DELTA_ROWS + 2 * REFRESH_DELETE_ROWS)
    return {
        "query": REFRESH_SQL,
        "table_rows": TABLE_ROWS,
        "refreshes": REFRESHES,
        "delta_rows_per_refresh": REFRESH_DELTA_ROWS,
        "deletes_per_refresh": REFRESH_DELETE_ROWS,
        "output_delta_rows": delta_rows,
        "columnar_ms": round(columnar_s * 1e3, 2),
        "row_major_ms": round(row_s * 1e3, 2),
        "columnar_rows_per_s": round(total_delta / columnar_s),
        "row_major_rows_per_s": round(total_delta / row_s),
        "speedup": round(row_s / columnar_s, 2),
    }


def _report(scan: dict, refresh: dict) -> None:
    payload = {
        "scenario": ("columnar vs. row-major ablation: 100k-row "
                     "scan+filter+project and bench_t2's incremental "
                     "refresh workload"),
        "scan_filter_project": scan,
        "incremental_refresh": refresh,
    }
    emit_json("BENCH_columnar.json", payload)
    emit("T11 columnar execution ablation", [
        f"scan+filter+project over {scan['table_rows']:,} rows: "
        f"columnar {scan['columnar_ms']}ms vs row-major "
        f"{scan['row_major_ms']}ms -> {scan['speedup']}x",
        f"incremental refresh ({refresh['refreshes']} refreshes x "
        f"{refresh['delta_rows_per_refresh']:,} delta rows): "
        f"columnar {refresh['columnar_ms']}ms vs row-major "
        f"{refresh['row_major_ms']}ms -> {refresh['speedup']}x",
        "identical rows/ids asserted across modes",
    ])


#: Assertion thresholds. The acceptance numbers (>= 2x scan, > 1x
#: refresh) hold comfortably on an idle machine — the committed
#: BENCH_columnar.json records them — but a wall-clock ratio gate on a
#: noisy shared CI runner would fail intermittently and train people to
#: ignore red builds, so CI sets these to slack values that still catch
#: a real regression (the columnar path falling behind row-major).
MIN_SCAN_SPEEDUP = float(os.environ.get("COLUMNAR_MIN_SCAN_SPEEDUP", "2.0"))
MIN_REFRESH_SPEEDUP = float(
    os.environ.get("COLUMNAR_MIN_REFRESH_SPEEDUP", "1.0"))


def test_columnar_scan_speedup():
    scan = _measure_scan()
    refresh = _measure_refresh()
    _report(scan, refresh)
    # Acceptance: >= 2x on scan+filter+project, measurable refresh win.
    assert scan["speedup"] >= MIN_SCAN_SPEEDUP, scan
    assert refresh["speedup"] > MIN_REFRESH_SPEEDUP, refresh


if __name__ == "__main__":
    scan = _measure_scan()
    refresh = _measure_refresh()
    _report(scan, refresh)
    print(json.dumps({"scan": scan, "refresh": refresh}, indent=2))
