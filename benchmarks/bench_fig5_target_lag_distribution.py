"""Experiment fig5: distribution of target lags across active DTs.

Paper (section 6.3 / Figure 5): "More than 25% of DTs have a target lag of
at least 16 hours, firmly in the batch domain. In the streaming domain,
nearly 20% of DTs have a target lag less than 5 minutes. The 55% of DTs
between these validates our hypothesis that the middle ground between
classic batch and streaming is underserved."

We regenerate the distribution from the calibrated synthetic fleet and
measure the same marginals. The benchmark times population generation +
summarization.
"""

from repro.workload.population import generate_population, summarize

from reporting import emit, table

POPULATION = 5000


def _measure():
    return summarize(generate_population(POPULATION, seed=0))


def test_target_lag_distribution(benchmark):
    summary = benchmark(_measure)

    # Shape assertions against the paper's stated marginals.
    assert summary.fraction_below_5m > 0.15          # "nearly 20%"
    assert summary.fraction_at_least_16h > 0.25      # "more than 25%"
    assert summary.fraction_between > 0.50           # "the 55% between"

    histogram_rows = [[label, count, f"{count / summary.size:.1%}"]
                      for label, count in summary.lag_histogram.items()]
    emit("fig5 — target lag distribution", [
        *table(["bucket", "DTs", "fraction"], histogram_rows),
        "",
        *table(["marginal", "paper", "measured"], [
            ["lag < 5 min", "~20%", f"{summary.fraction_below_5m:.1%}"],
            ["5 min <= lag < 16 h", "~55%",
             f"{summary.fraction_between:.1%}"],
            ["lag >= 16 h", ">25%",
             f"{summary.fraction_at_least_16h:.1%}"],
        ]),
    ])
