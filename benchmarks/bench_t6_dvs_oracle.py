"""Experiment dvs-oracle: randomized DVS testing throughput (section 6.1).

Paper: "Checking this assertion within a framework that generates random
SQL queries allows us to test the correctness of hundreds of thousands of
different DTs in a matter of hours. We run this workload test daily."

We measure the oracle's throughput on this substrate: random defining
queries become DTs over a mutating schema; each round mutates, refreshes,
and checks DT-contents == defining-query-at-data-timestamp. The paper's
rate (~10^5 DT-checks in hours on a fleet) scales here to thousands of
checks per minute on one laptop core — same methodology, smaller metal.
"""

import random
import time

from repro import Database
from repro.util.timeutil import MINUTE
from repro.workload.generator import (QueryGenerator, UpdateWorkload,
                                      create_workload_schema)

from reporting import emit, table

DTS = 8
ROUNDS = 5


def _run_oracle_campaign(seed=0):
    db = Database()
    db.create_warehouse("wh")
    create_workload_schema(db)
    workload = UpdateWorkload(rng=random.Random(seed))
    workload.seed(db, facts=80, dims=8)
    generator = QueryGenerator(rng=random.Random(seed + 1))
    names = []
    for index in range(DTS):
        name = f"dt_{index}"
        db.create_dynamic_table(name, generator.query(), "1 minute", "wh")
        names.append(name)

    checks = 0
    for __ in range(ROUNDS):
        workload.step(db)
        db.clock.advance(MINUTE)
        for name in names:
            db.refresh_dynamic_table(name)
            assert db.check_dvs(name)
            checks += 1
    return checks


def test_dvs_oracle_throughput(benchmark):
    start = time.perf_counter()
    checks = _run_oracle_campaign()
    elapsed = time.perf_counter() - start
    benchmark(_run_oracle_campaign, 1)

    rate = checks / elapsed
    assert checks == DTS * ROUNDS
    emit("dvs-oracle — randomized DVS testing (section 6.1)", [
        *table(["metric", "value"], [
            ["random DTs", DTS],
            ["mutation rounds", ROUNDS],
            ["refresh+check cycles", checks],
            ["wall time", f"{elapsed:.2f} s"],
            ["throughput", f"{rate:.0f} checks/s "
             f"(~{rate * 3600:.0f}/hour on one core)"],
        ]),
        "",
        "paper: the same assertion checks 'hundreds of thousands of "
        "different DTs in a matter of hours' on the production fleet.",
    ])
