"""Experiment fig1/fig2: the isolation examples of section 4.

Paper claims reproduced:

* Figure 1 (persisted table semantics): the history's DSG is serializable
  — "the framework is unable to identify a phenomenon that seems obvious
  to observers";
* Figure 2 (delayed view semantics): the same scenario expressed with
  derivations exhibits G2 and G-single (read skew), with the cycle
  T2 → T5 → T2.

The benchmark times phenomena detection over both histories.
"""

from repro.isolation import classify, detect_phenomena
from repro.isolation.dsg import DirectSerializationGraph
from repro.isolation.examples import (figure1_history, figure2_history,
                                      snapshot_isolated_reader_history)

from reporting import emit, table


def _analyze():
    rows = []
    for name, history in [
            ("Figure 1 (persisted table semantics)", figure1_history()),
            ("Figure 2 (delayed view semantics)", figure2_history()),
            ("Single-DT reader (the paper's fix)",
             snapshot_isolated_reader_history())]:
        report = detect_phenomena(history)
        rows.append([name, report.pretty(), str(classify(history))])
    return rows


def test_figures_1_and_2(benchmark):
    rows = benchmark(_analyze)
    assert rows[0][1] == "no phenomena (serializable)"
    assert "G2" in rows[1][1] and "G-single" in rows[1][1]
    assert rows[2][1] == "no phenomena (serializable)"

    dsg = DirectSerializationGraph(figure2_history())
    cycles = [sorted(cycle) for cycle in dsg.cycles()]
    assert [2, 5] in cycles

    emit("fig1/fig2 — isolation phenomena", [
        *table(["history", "phenomena", "strongest level"], rows),
        "",
        "paper: Fig 1 DSG is serializable despite visible read skew;",
        "paper: Fig 2 derivations expose the cycle T2 -> T5 -> T2 "
        "(G2, G-single).",
        f"measured Fig 2 cycles: {cycles}",
    ])
