"""T14 — parallel refresh: DAG-concurrent refreshes and row-level
commit conflicts.

Two claims from the parallel refresh subsystem:

* **DAG-parallel throughput** — a tick's due DTs partition into
  dependency waves; independent DTs dispatch concurrently on
  ``parallelism`` modeled slots. On a graph of independent DTs plus a
  joined dependent, aggregate refresh throughput (refreshes per modeled
  second of refresh makespan) must reach **>= 1.7x at 4 workers vs 1**.
  The measurement uses the simulated clock's modeled timing — the same
  deterministic cost model the scheduling benchmarks gate on — because
  under the GIL real threads overlap waiting, not Python compute.
* **row-level commit conflicts** — concurrent writers updating
  *disjoint rows* of one table all commit with **zero conflicts and
  zero retries** (first-committer-wins compares row footprints, not
  table names). Before this subsystem, every one of these commits but
  the first per snapshot window would conflict and retry.

Intra-refresh partition fan-out is also exercised (wide source table,
1/2/4 partition workers) and its task counts recorded; its wall-clock
effect is reported informationally in ``results.txt`` only.

Deterministic facts (modeled makespans, speedups, conflict counts, task
counts) land in ``BENCH_parallel.json``; wall-clock numbers go to
``results.txt``.

Run:  PYTHONPATH=src python benchmarks/bench_t14_parallel_refresh.py
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from repro import Database  # noqa: E402
from repro.server import Server  # noqa: E402
from repro.util.timeutil import MINUTE, SECOND  # noqa: E402

from reporting import emit, emit_json, table  # noqa: E402

#: Independent DTs in the refresh graph (plus one joined dependent).
INDEPENDENT_DTS = 8
PARALLELISM_LEVELS = (1, 2, 4)
PARTITION_FANOUTS = (1, 2, 4)
MIN_SPEEDUP_AT_4 = 1.7

CONTENDED_WRITERS = 4
TXNS_PER_ROW = 25


# ---------------------------------------------------------------------------
# DAG-parallel refresh throughput (modeled time, deterministic).
# ---------------------------------------------------------------------------


def _build_graph(parallelism, partition_fanout=None):
    db = Database(parallelism=parallelism,
                  partition_fanout=partition_fanout)
    # The warehouse has enough slots that the dispatch width under test
    # is the binding constraint.
    db.create_warehouse("wh", size=INDEPENDENT_DTS)
    db.execute("CREATE TABLE src (k int, v int)")
    db.execute("INSERT INTO src VALUES " +
               ", ".join(f"({i % 16}, {i})" for i in range(4000)))
    for index in range(INDEPENDENT_DTS):
        # Pairwise-independent aggregates over the full source: each
        # refresh folds the whole (wide) delta, so partition fan-out has
        # enough rows to chunk.
        db.create_dynamic_table(
            f"ind{index}",
            f"SELECT k, sum(v + {index}) s, count(*) n FROM src "
            f"GROUP BY k", "1 minute", "wh")
    # One second-wave DT so the run exercises wave ordering too.
    db.create_dynamic_table(
        "joined", "SELECT a.k, a.s + b.s s FROM ind0 a "
        "JOIN ind1 b ON a.k - 1 = b.k", "1 minute", "wh")
    for step in range(1, 8):
        db.at(step * 50 * SECOND,
              lambda s=step: db.execute(
                  "INSERT INTO src VALUES " + ", ".join(
                      f"({i % 16}, {10000 * s + i})" for i in range(1500))))
    return db


def _run_dag(parallelism, partition_fanout=None):
    db = _build_graph(parallelism, partition_fanout)
    started = time.perf_counter()
    report = db.run_for(7 * MINUTE)
    elapsed = time.perf_counter() - started

    # Modeled makespan: per data timestamp, the span from the tick to
    # the last refresh end — the simulated wall time the tick's refresh
    # work occupied. Aggregate throughput is refreshes per modeled
    # second; both are deterministic.
    by_timestamp: dict[int, int] = {}
    refreshes = 0
    partition_tasks = 0
    for entry in db.catalog.entries(kind="dynamic table"):
        for record in entry.payload.refresh_history:
            if not record.succeeded:
                continue
            refreshes += 1
            by_timestamp[record.data_timestamp] = max(
                by_timestamp.get(record.data_timestamp, 0),
                record.end_wall)
            if record.parallel:
                partition_tasks += record.parallel.get(
                    "partition_tasks", 0)
    makespan = sum(end - ts for ts, end in by_timestamp.items())
    return {
        "workers": parallelism,
        "refreshes": refreshes,
        "makespan_s": makespan / SECOND,
        "throughput": refreshes / (makespan / SECOND),
        "partition_tasks": partition_tasks,
        "elapsed": elapsed,
        "skipped": report.refreshes_skipped,
    }


# ---------------------------------------------------------------------------
# Contended disjoint-row commits (row-level first-committer-wins).
# ---------------------------------------------------------------------------


def _run_disjoint_rows():
    """N writer sessions hammer one table, each updating its *own* row.
    Row-level conflict detection must commit every transaction with zero
    conflicts and zero retries — table-level first-committer-wins would
    have conflicted on every overlapping snapshot window."""
    database = Database()
    database.create_warehouse("wh")
    with Server(database, workers=CONTENDED_WRITERS) as server:
        server.execute("CREATE TABLE accounts (id int, n int)").result()
        server.execute("INSERT INTO accounts VALUES " + ", ".join(
            f"({index}, 0)" for index in range(CONTENDED_WRITERS))).result()

        def bump(row):
            def work(session):
                (current,) = session.query(
                    "SELECT n FROM accounts WHERE id = ?", (row,)).rows[0]
                session.execute(
                    "UPDATE accounts SET n = ? WHERE id = ?",
                    (current + 1, row))
            return work

        total = CONTENDED_WRITERS * TXNS_PER_ROW
        started = time.perf_counter()
        # One in-flight transaction per row at any moment: concurrent
        # commits always have disjoint footprints, so any conflict the
        # server counts is a false one.
        for __ in range(TXNS_PER_ROW):
            futures = [server.submit_transaction(bump(row))
                       for row in range(CONTENDED_WRITERS)]
            for future in futures:
                future.result()
        elapsed = time.perf_counter() - started
        finals = [row[0] for row in server.query(
            "SELECT n FROM accounts ORDER BY id").rows]
        stats = server.stats.snapshot()
    return {
        "writers": CONTENDED_WRITERS,
        "transactions": total,
        "finals": finals,
        "lost_updates": total - sum(finals),
        "conflicts": stats["conflicts"],
        "retries": stats["retries"],
        "elapsed": elapsed,
    }


# ---------------------------------------------------------------------------
# pytest entry points (run in the CI perf job).
# ---------------------------------------------------------------------------


def _measure():
    dag = [_run_dag(level) for level in PARALLELISM_LEVELS]
    fanned = [_run_dag(4, partition_fanout=fanout)
              for fanout in PARTITION_FANOUTS]
    disjoint = _run_disjoint_rows()
    return dag, fanned, disjoint


_cache = None


def _measured():
    global _cache
    if _cache is None:
        _cache = _measure()
    return _cache


def test_dag_parallel_throughput_scales():
    dag, __, __ = _measured()
    base = dag[0]
    at4 = dag[-1]
    # Identical logical work at every level...
    assert {run["refreshes"] for run in dag} == {base["refreshes"]}
    assert {run["skipped"] for run in dag} == {base["skipped"]}
    # ...but >= 1.7x aggregate modeled throughput at 4 workers vs 1.
    speedup = at4["throughput"] / base["throughput"]
    assert speedup >= MIN_SPEEDUP_AT_4, (
        f"4-worker modeled refresh throughput speedup {speedup:.2f}x "
        f"< {MIN_SPEEDUP_AT_4}x")


def test_partition_fanout_dispatches_tasks():
    __, fanned, __ = _measured()
    assert fanned[0]["partition_tasks"] == 0  # fanout 1 stays inline
    for run in fanned[1:]:
        assert run["partition_tasks"] > 0


def test_disjoint_row_writers_never_conflict():
    __, __, disjoint = _measured()
    assert disjoint["conflicts"] == 0
    assert disjoint["retries"] == 0
    assert disjoint["lost_updates"] == 0
    assert disjoint["finals"] == [TXNS_PER_ROW] * CONTENDED_WRITERS


def test_emit_report():
    dag, fanned, disjoint = _measured()
    base = dag[0]
    emit(f"t14 — parallel refresh: DAG dispatch ({INDEPENDENT_DTS} "
         "independent DTs + 1 joined)", table(
             ["workers", "refreshes", "modeled makespan", "throughput",
              "speedup", "wall s"],
             [[run["workers"], run["refreshes"],
               f"{run['makespan_s']:.0f}s",
               f"{run['throughput']:.2f}/s",
               f"{run['throughput'] / base['throughput']:.2f}x",
               f"{run['elapsed']:.2f}"]
              for run in dag]))
    emit("t14 — parallel refresh: partition fan-out at 4 DAG workers",
         table(["partition workers", "tasks dispatched", "wall s"],
               [[fanout, run["partition_tasks"], f"{run['elapsed']:.2f}"]
                for fanout, run in zip(PARTITION_FANOUTS, fanned)]))
    emit(f"t14 — parallel refresh: disjoint-row commits "
         f"({CONTENDED_WRITERS} writers x {TXNS_PER_ROW} txns/row)", [
             f"transactions: {disjoint['transactions']}, "
             f"conflicts: {disjoint['conflicts']}, "
             f"retries: {disjoint['retries']}, "
             f"lost updates: {disjoint['lost_updates']}",
             f"wall: {disjoint['elapsed']:.2f}s "
             f"({disjoint['transactions'] / disjoint['elapsed']:.0f} txn/s)",
             "row-level first-committer-wins: disjoint-row writers all "
             "commit; table-level detection would retry each one.",
         ])
    emit_json("BENCH_parallel.json", {
        "scenario": (f"{INDEPENDENT_DTS} independent DTs + 1 joined "
                     "dependent on a 4k-row source under a mutation "
                     "stream; modeled dispatch at 1/2/4 workers; "
                     "disjoint-row commit contention via the server"),
        "dag": [{
            "workers": run["workers"],
            "refreshes": run["refreshes"],
            "skipped": run["skipped"],
            "modeled_makespan_s": round(run["makespan_s"], 3),
            "throughput_per_modeled_s": round(run["throughput"], 4),
            "speedup_vs_serial": round(
                run["throughput"] / base["throughput"], 3),
        } for run in dag],
        "min_speedup_at_4_workers": MIN_SPEEDUP_AT_4,
        "partition_fanout": [{
            "partition_workers": fanout,
            "tasks_dispatched": run["partition_tasks"],
        } for fanout, run in zip(PARTITION_FANOUTS, fanned)],
        "disjoint_rows": {
            "writers": disjoint["writers"],
            "transactions": disjoint["transactions"],
            "conflicts": disjoint["conflicts"],
            "retries": disjoint["retries"],
            "lost_updates": disjoint["lost_updates"],
        },
    })


def main() -> None:
    test_dag_parallel_throughput_scales()
    test_partition_fanout_dispatches_tasks()
    test_disjoint_row_writers_never_conflict()
    test_emit_report()


if __name__ == "__main__":
    main()
