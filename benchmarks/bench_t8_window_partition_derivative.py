"""Experiment window: the changed-partition derivative (section 5.5.1).

Paper: "This derivative works by applying the window function to all
partitions that have changed" — so its cost should scale with the number
of *changed partitions*, not with the table size. We hold the table fixed
(many partitions) and sweep how many partitions a delta touches; the
emitted delta covers exactly the changed partitions, and runtime grows
with the touched-partition count while the full recompute stays flat.
"""

import time

from repro.engine.executor import evaluate
from repro.engine.relation import DictResolver, Relation
from repro.engine.schema import schema_of
from repro.engine.types import SqlType
from repro.ivm.changes import ChangeSet
from repro.ivm.differentiator import DictDeltaSource, differentiate
from repro.plan.builder import DictSchemaProvider, build_plan
from repro.sql.parser import parse_query

from reporting import emit, table

ITEMS = schema_of(("id", SqlType.INT), ("grp", SqlType.TEXT),
                  ("val", SqlType.INT), table="items")
PROVIDER = DictSchemaProvider({"items": ITEMS})
PARTITIONS = 500
ROWS_PER_PARTITION = 20

PLAN = build_plan(parse_query(
    "SELECT id, grp, sum(val) over (partition by grp order by id) run, "
    "row_number() over (partition by grp order by val, id) rn "
    "FROM items"), PROVIDER)


def _base():
    rows = []
    for partition in range(PARTITIONS):
        for position in range(ROWS_PER_PARTITION):
            rows.append((partition * 1000 + position, f"g{partition}",
                         position * 3))
    return Relation(ITEMS, rows, [f"b:{i}" for i in range(len(rows))])


BASE = _base()


def _source_touching(partitions: int):
    """Insert one row into each of the first `partitions` partitions."""
    delta = ChangeSet()
    pairs = list(BASE.pairs())
    for partition in range(partitions):
        row = (partition * 1000 + 999, f"g{partition}", 1)
        row_id = f"b:n{partition}"
        delta.insert(row_id, row)
        pairs.append((row_id, row))
    return DictDeltaSource({"items": BASE},
                           {"items": Relation.from_pairs(ITEMS, pairs)},
                           {"items": delta})


def _timed(function, repeats=3):
    function()
    samples = []
    for __ in range(repeats):
        start = time.perf_counter()
        function()
        samples.append(time.perf_counter() - start)
    return min(samples)


def test_one_partition(benchmark):
    source = _source_touching(1)
    changes, __ = benchmark(lambda: differentiate(PLAN, source))
    touched = {change.row[1] for change in changes}
    assert touched == {"g0"}  # the delta names only the changed partition


def test_scaling_report(benchmark):
    counts = [1, 10, 50, 200]
    rows = []
    timings = {}
    for count in counts:
        source = _source_touching(count)
        timings[count] = _timed(lambda: differentiate(PLAN, source))
        changes, stats = differentiate(PLAN, source)
        touched = {change.row[1] for change in changes}
        assert len(touched) == count  # exactly the changed partitions
        rows.append([count, f"{timings[count] * 1e3:.2f} ms",
                     len(changes)])

    source = _source_touching(10)
    benchmark(lambda: differentiate(PLAN, source))

    full_time = _timed(lambda: evaluate(
        PLAN, DictResolver({"items": BASE})))

    # Work grows with touched partitions...
    assert timings[200] > 3 * timings[1]
    # ...and touching few partitions beats recomputing all of them.
    assert timings[1] < full_time / 2

    emit("window — changed-partition derivative "
         f"({PARTITIONS} partitions x {ROWS_PER_PARTITION} rows)", [
             *table(["partitions touched", "differentiation time",
                     "delta rows"], rows),
             "",
             f"full window recompute over all partitions: "
             f"{full_time * 1e3:.2f} ms",
             "paper: the derivative applies the window function to all "
             "partitions that have changed — and only those.",
         ])
