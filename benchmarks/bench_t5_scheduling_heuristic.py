"""Experiment sched-heuristic: canonical periods (section 5.2).

Claims reproduced:

* each DT's refresh period is a canonical 48·2^n seconds, at most half its
  target lag (so users see periods "substantially smaller than the
  provided target lag");
* downstream periods are ≥ upstream periods, and all data timestamps in a
  connected component align;
* every DT stays within its target lag throughout the run;
* versus a naive baseline that refreshes every DT at every 48 s tick, the
  canonical-period heuristic runs far fewer refreshes for the same lag
  compliance.
"""

from repro import Database
from repro.core.graph import DependencyGraph
from repro.scheduler.metrics import fraction_within_target, peak_lags
from repro.scheduler.periods import BASE_PERIOD, canonical_periods
from repro.util.timeutil import HOUR, MINUTE, SECOND, minutes

from reporting import emit, table

LAGS = {"fast": "1 minute", "medium": "8 minutes", "slow": "30 minutes"}


def _run_heuristic():
    db = Database()
    db.create_warehouse("wh", size=2)
    db.execute("CREATE TABLE src (id int, val int)")
    db.execute("INSERT INTO src VALUES (0, 0)")
    db.create_dynamic_table("fast", "SELECT id, val FROM src",
                            LAGS["fast"], "wh")
    db.create_dynamic_table("medium", "SELECT id FROM fast",
                            LAGS["medium"], "wh")
    db.create_dynamic_table("slow", "SELECT id FROM medium",
                            LAGS["slow"], "wh")
    for step in range(30):
        db.at((step + 1) * 2 * MINUTE,
              lambda s=step: db.execute(
                  f"INSERT INTO src VALUES ({s + 1}, {s})"))
    report = db.run_for(HOUR)
    return db, report


def test_scheduling_heuristic(benchmark):
    db, report = benchmark(_run_heuristic)
    graph = DependencyGraph(db.catalog)
    periods = db.scheduler.assign_periods(graph)

    # Canonical, lag-bounded, upstream-monotone periods.
    for name, lag_text in LAGS.items():
        period = periods[name]
        assert period in canonical_periods()
    assert periods["fast"] <= periods["medium"] <= periods["slow"]

    # Data timestamps align: every slow/medium timestamp is a fast one.
    fast_timestamps = set(
        db.dynamic_table("fast").table.refresh_timestamps())
    for name in ("medium", "slow"):
        for ts in db.dynamic_table(name).table.refresh_timestamps():
            assert ts in fast_timestamps

    # Lag compliance, from the live histories.
    compliance_rows = []
    for name, lag_text in LAGS.items():
        dt = db.dynamic_table(name)
        target = dt.target_lag.duration
        fraction = fraction_within_target(dt, target, 5 * MINUTE, HOUR)
        peaks = peak_lags(dt)
        compliance_rows.append([
            name, lag_text,
            f"{periods[name] / SECOND:.0f}s",
            f"{max(peaks) / SECOND:.0f}s" if peaks else "-",
            f"{fraction:.1%}"])
        assert fraction == 1.0

    # Refresh-count economy vs the naive every-tick baseline.
    ticks = report.ticks
    naive_refreshes = ticks * len(LAGS)
    actual = report.refreshes_attempted
    assert actual < naive_refreshes / 1.5

    emit("sched-heuristic — canonical periods meet target lags", [
        *table(["DT", "target lag", "chosen period", "max peak lag",
                "time within lag"], compliance_rows),
        "",
        f"refreshes attempted: {actual} "
        f"(naive every-tick baseline: {naive_refreshes})",
        "paper: periods are canonical 48*2^n; downstream >= upstream; "
        "data timestamps align across the component.",
    ])
