"""Shared reporting for the benchmark harness.

Every benchmark regenerates a table or figure from the paper and emits a
paper-vs-measured report: printed to stdout (visible with ``pytest -s``)
and appended to ``benchmarks/results.txt`` so a plain
``pytest benchmarks/ --benchmark-only`` leaves the full set of reproduced
tables on disk. ``EXPERIMENTS.md`` summarizes the same numbers.
"""

from __future__ import annotations

import json
import os
from typing import Iterable

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")


def emit_json(filename: str, payload: dict) -> str:
    """Write a benchmark artifact as deterministic JSON under
    ``benchmarks/``. Committed snapshots (e.g. ``BENCH_t2.json``) use only
    deterministic fields — row counts, ratios — so regeneration is
    byte-stable; wall-clock timings belong in ``results.txt``."""
    path = os.path.join(os.path.dirname(__file__), filename)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path

_seen_sections: set[str] = set()


def emit(section: str, lines: Iterable[str]) -> None:
    """Print a report section and append it to the results file (once per
    section per run)."""
    rendered = "\n".join([f"==== {section} ====", *lines, ""])
    print("\n" + rendered)
    if section in _seen_sections:
        return
    _seen_sections.add(section)
    mode = "a" if os.path.exists(RESULTS_PATH) else "w"
    # Truncate on the first section of a fresh interpreter so repeated
    # runs do not accumulate.
    if not _truncated_this_run[0]:
        mode = "w"
        _truncated_this_run[0] = True
    with open(RESULTS_PATH, mode) as handle:
        handle.write(rendered + "\n")


_truncated_this_run = [False]


def table(headers: list[str], rows: list[list]) -> list[str]:
    """Render an aligned text table."""
    cells = [headers] + [[str(value) for value in row] for row in rows]
    widths = [max(len(row[index]) for row in cells)
              for index in range(len(headers))]
    lines = []
    for row_index, row in enumerate(cells):
        line = "  ".join(value.ljust(width)
                         for value, width in zip(row, widths))
        lines.append(line.rstrip())
        if row_index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return lines
