"""Experiment cost-model: fixed + variable incremental cost (section 3.3.2).

Paper: "we can simplify it to fixed and variable costs ... variable costs
scale linearly with the amount of changed data in the sources."

We measure *actual Python runtime* of differentiation over a
filter+project plan while sweeping the delta size with the table size
fixed, then fit the fixed/variable split. The pytest-benchmark entries
time representative delta sizes; the report prints the sweep.
"""

import time

from repro.engine.relation import Relation
from repro.engine.schema import schema_of
from repro.engine.types import SqlType
from repro.ivm.changes import ChangeSet
from repro.ivm.differentiator import DictDeltaSource, differentiate
from repro.plan.builder import DictSchemaProvider, build_plan
from repro.sql.parser import parse_query

from reporting import emit, table

ITEMS = schema_of(("id", SqlType.INT), ("grp", SqlType.TEXT),
                  ("val", SqlType.INT), table="items")
PROVIDER = DictSchemaProvider({"items": ITEMS})
TABLE_ROWS = 20_000

PLAN = build_plan(parse_query(
    "SELECT id, grp, val * 2 doubled FROM items WHERE val >= 0"), PROVIDER)


def _base_relation():
    rows = [(i, f"g{i % 50}", i % 1000) for i in range(TABLE_ROWS)]
    return Relation(ITEMS, rows, [f"b:{i}" for i in range(TABLE_ROWS)])


BASE = _base_relation()


def _source_for_delta(delta_rows: int):
    delta = ChangeSet()
    new_pairs = list(BASE.pairs())
    for offset in range(delta_rows):
        row = (TABLE_ROWS + offset, f"g{offset % 50}", offset)
        row_id = f"b:n{offset}"
        delta.insert(row_id, row)
        new_pairs.append((row_id, row))
    new_relation = Relation.from_pairs(ITEMS, new_pairs)
    return DictDeltaSource({"items": BASE}, {"items": new_relation},
                           {"items": delta})


def _run(source):
    return differentiate(PLAN, source)


def test_small_delta(benchmark):
    source = _source_for_delta(10)
    changes, stats = benchmark(_run, source)
    assert len(changes) == 10
    assert stats.consolidation_skipped  # insert-only fast path


def test_large_delta(benchmark):
    source = _source_for_delta(10_000)
    changes, __ = benchmark(_run, source)
    assert len(changes) == 10_000


def test_linearity_report(benchmark):
    sizes = [10, 100, 1_000, 5_000, 10_000]
    # The fixed cost, measured directly: differentiating an *empty*
    # interval does only the per-refresh work (dispatch, rule lookup,
    # the consolidation-skip analysis) and touches no rows.
    empty_source = _source_for_delta(0)
    differentiate(PLAN, empty_source)
    fixed_samples = []
    for __ in range(20):
        start = time.perf_counter()
        differentiate(PLAN, empty_source)
        fixed_samples.append(time.perf_counter() - start)
    fixed_cost = min(fixed_samples)

    timings = []
    for size in sizes:
        source = _source_for_delta(size)
        differentiate(PLAN, source)  # warmup
        samples = []
        for __ in range(7):
            start = time.perf_counter()
            differentiate(PLAN, source)
            samples.append(time.perf_counter() - start)
        timings.append(min(samples))  # min is robust to scheduler noise

    benchmark(_run, _source_for_delta(1_000))

    # Linearity: per-row cost between consecutive sizes stays bounded
    # (ratio of marginal costs within a small factor).
    marginal_low = (timings[2] - timings[0]) / (sizes[2] - sizes[0])
    marginal_high = (timings[4] - timings[2]) / (sizes[4] - sizes[2])
    assert marginal_high < marginal_low * 5
    # Fixed cost exists and is nonzero, but small relative to real work:
    # an empty-interval refresh costs something, and a 10k-row delta costs
    # far more than the fixed part alone.
    assert fixed_cost > 0
    assert timings[-1] > 10 * fixed_cost

    rows = [[size, f"{elapsed * 1e3:.2f} ms",
             f"{elapsed / size * 1e6:.2f} us/row"]
            for size, elapsed in zip(sizes, timings)]
    emit("cost-model — incremental refresh cost vs delta size "
         f"(table = {TABLE_ROWS} rows)", [
             *table(["delta rows", "differentiation time", "amortized"],
                    rows),
             "",
             f"fitted variable cost ≈ {marginal_high * 1e6:.2f} us/row; "
             f"measured fixed cost (empty interval) ≈ "
             f"{fixed_cost * 1e6:.0f} us",
             "paper: cost = fixed + variable, variable linear in changed "
             "data.",
         ])
