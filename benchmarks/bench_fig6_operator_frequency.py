"""Experiment fig6: operator frequency in incremental DT definitions.

Paper (Figure 6): "the frequency of operators used in incremental DT
definitions, demonstrating that joins, aggregates, and window functions
are common."

Frequencies are measured by running the real operator inventory
(:func:`repro.plan.properties.operator_inventory`) over each synthetic
DT's *bound plan* — the sampling weights control query shape, but the
reported numbers come from plan analysis, exactly as the paper measures
production definitions.
"""

from repro.workload.population import generate_population, summarize

from reporting import emit, table

POPULATION = 5000


def _measure():
    return summarize(generate_population(POPULATION, seed=1))


def test_operator_frequency(benchmark):
    summary = benchmark(_measure)
    frequency = summary.operator_frequency

    # Figure 6's qualitative shape.
    assert frequency["project"] > 0.9
    assert frequency["filter"] > 0.3
    assert frequency["inner_join"] > 0.2          # joins are common
    assert frequency["grouped_aggregate"] > 0.1   # aggregates are common
    assert frequency["window_function"] > 0.05    # windows present
    assert frequency["scalar_aggregate"] == 0.0   # never incremental
    assert frequency["sort_limit"] == 0.0         # never incremental

    ordered = sorted(frequency.items(), key=lambda item: -item[1])
    rows = [[name, f"{value:.1%}"] for name, value in ordered]
    emit("fig6 — operator frequency in incremental DTs", [
        *table(["operator class", "fraction of incremental DTs"], rows),
        "",
        "paper: joins, aggregates, and window functions are common; "
        "non-incrementalizable operators absent by definition.",
    ])
