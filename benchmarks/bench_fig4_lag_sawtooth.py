"""Experiment fig4: the lag sawtooth (section 5.2).

Reproduces Figure 4's structure on a live scheduler run: lag rises at
1 s/s between refresh commits, drops at each commit; the trough is
e_i − v_i, the peak is e_i − v_{i−1}, and each peak decomposes exactly
into p + w + d. The benchmark times a full scheduler run.
"""

from repro import Database
from repro.scheduler import metrics
from repro.util.timeutil import MINUTE, SECOND, minutes

from reporting import emit, table


def _run_scenario():
    db = Database()
    db.create_warehouse("wh")
    db.execute("CREATE TABLE src (id int, val int)")
    db.execute("INSERT INTO src VALUES (0, 0)")
    dt = db.create_dynamic_table(
        "d", "SELECT id, val FROM src WHERE val >= 0", "2 minutes", "wh")
    for step in range(12):
        db.at((step + 1) * MINUTE,
              lambda s=step: db.execute(
                  f"INSERT INTO src VALUES ({s + 1}, {s})"))
    db.run_for(14 * MINUTE)
    return dt


def test_lag_sawtooth(benchmark):
    dt = benchmark(_run_scenario)

    points = metrics.sawtooth(dt)
    peaks = metrics.peak_lags(dt)
    troughs = metrics.trough_lags(dt)
    decompositions = metrics.decompose_peaks(dt)

    # Structural claims of Figure 4 / section 5.2.
    assert all(peak > trough
               for peak, trough in zip(peaks, troughs[1:]))
    for decomposition, peak in zip(decompositions, peaks):
        assert decomposition.p + decomposition.w + decomposition.d == peak
    target = minutes(2)
    assert max(peaks) <= target  # p + w + d < t held throughout

    rows = [[f"{d.data_timestamp / SECOND:.0f}s",
             f"{d.p / SECOND:.0f}s", f"{d.w / SECOND:.1f}s",
             f"{d.d / SECOND:.1f}s",
             f"{d.peak_lag / SECOND:.1f}s"]
            for d in decompositions[:8]]
    emit("fig4 — lag sawtooth (peak = p + w + d)", [
        *table(["v_i", "p", "w", "d", "peak lag"], rows),
        "",
        f"sawtooth vertices: {len(points)}; "
        f"max peak {max(peaks) / SECOND:.1f}s <= target lag "
        f"{target / SECOND:.0f}s",
        "paper: lag rises 1 s/s, drops at commits; staying within target "
        "requires p + w + d < t.",
    ])
