"""Experiment skips: graceful degradation under overload (section 3.3.3).

Paper: "skipping a refresh reduces the total amount of work by eliminating
the fixed costs of the skipped refresh. This property allows DTs to
gracefully increase their rate of progress as they fall further behind."
And: "a skipped refresh does not compromise on delayed-view semantics. A
refresh following a skip upholds the same guarantees by including the
skipped time interval into its change interval."

We overload a DT (refresh duration > refresh period), then verify:

1. skips occur and DVS still holds (the oracle passes);
2. post-skip refreshes widen their change interval (more rows per
   refresh);
3. total fixed cost paid is lower than the hypothetical no-skip schedule
   that would have run every tick.
"""

from repro import Database
from repro.core.dynamic_table import RefreshAction
from repro.scheduler.cost import CostModel
from repro.util.timeutil import MINUTE, SECOND

from reporting import emit, table

#: Fixed cost of 100 s against a 48 s tick grid: every refresh overlaps
#: at least one subsequent tick.
OVERLOADED = CostModel(fixed_cost=100 * SECOND)


def _run_overloaded():
    db = Database(cost_model=OVERLOADED)
    db.create_warehouse("wh")
    db.execute("CREATE TABLE src (id int, val int)")
    db.execute("INSERT INTO src VALUES (0, 0)")
    dt = db.create_dynamic_table("d", "SELECT id, val FROM src",
                                 "1 minute", "wh")
    for step in range(30):
        db.at((step + 1) * 20 * SECOND,
              lambda s=step: db.execute(
                  f"INSERT INTO src VALUES ({s + 1}, {s})"))
    report = db.run_for(12 * MINUTE)
    return db, dt, report


def test_skip_behavior(benchmark):
    db, dt, report = benchmark(_run_overloaded)

    skips = [r for r in dt.refresh_history if r.skipped]
    executed = [r for r in dt.refresh_history
                if r.succeeded and r.action == RefreshAction.INCREMENTAL]
    assert skips, "the overloaded DT must skip refreshes"
    assert db.check_dvs("d")  # skips never compromise DVS

    # Post-skip refreshes widen the interval: the average incremental
    # refresh covers more than one 48s tick's worth of inserts (which
    # arrive at 20s spacing => >2.4 rows/tick).
    rows_per_refresh = (sum(r.rows_changed for r in executed)
                        / max(len(executed), 1))
    assert rows_per_refresh > 2.4

    # Fixed-cost accounting: with skips we paid len(executed) fixed costs;
    # a no-skip schedule pays one per eligible tick.
    eligible_ticks = len(executed) + len(skips)
    fixed = OVERLOADED.fixed_cost / SECOND
    with_skips = len(executed) * fixed
    without_skips = eligible_ticks * fixed
    assert with_skips < without_skips

    emit("skips — graceful degradation under overload", [
        *table(["metric", "value"], [
            ["refreshes executed", len(executed)],
            ["refreshes skipped", len(skips)],
            ["avg rows per executed refresh",
             f"{rows_per_refresh:.1f} (arrival rate ≈ 2.4 rows/tick)"],
            ["fixed cost paid (with skips)", f"{with_skips:.0f} s"],
            ["fixed cost if never skipping", f"{without_skips:.0f} s"],
            ["DVS oracle after overload", "holds"],
        ]),
        "",
        "paper: skipping eliminates the skipped refreshes' fixed costs; "
        "the next refresh widens its change interval; DVS is never "
        "compromised.",
    ])
