"""Experiment tab-adoption: the operational statistics of section 6.3.

Paper claims reproduced on a simulated fleet:

* "More than 90% of refreshes have no data, reflecting that customers
  often set the target lag lower than their data refresh rate" — our
  fleet refreshes every 48–96 s while data arrives every ~10 minutes;
* "A majority (67%) of incremental refreshes ... has a number of output
  changed rows (inserts + deletes) of less than 1% of the total size of
  the respective DT"; "21% of refreshes change more than 10% of their
  DT" — our workload mixes frequent small inserts over large tables with
  occasional wide updates;
* "almost 70% of active DTs have an incremental refresh mode" — measured
  over the synthetic population (fig5/fig6 generator).

The benchmark times the fleet simulation.
"""

from repro import Database
from repro.core.dynamic_table import RefreshAction
from repro.util.timeutil import HOUR, MINUTE
from repro.workload.population import generate_population, summarize

from reporting import emit, table


def _simulate_fleet():
    db = Database()
    db.create_warehouse("wh", size=2)
    db.execute("CREATE TABLE big (id int, grp text, val int)")
    db.execute("CREATE TABLE dim (grp text, label text)")
    values = ", ".join(f"({i}, 'g{i % 20}', {i % 97})" for i in range(2000))
    db.execute(f"INSERT INTO big VALUES {values}")
    dim_values = ", ".join(f"('g{i}', 'label{i}')" for i in range(20))
    db.execute(f"INSERT INTO dim VALUES {dim_values}")

    # Small-delta consumers: large state, tiny trickle of inserts.
    for index in range(6):
        db.create_dynamic_table(
            f"narrow_{index}",
            f"SELECT id, grp, val FROM big WHERE val >= {index}",
            "1 minute", "wh")
    # Wide-churn consumers: occasional updates touch many groups.
    db.create_dynamic_table(
        "wide_agg", "SELECT grp, count(*) n, sum(val) s FROM big "
        "GROUP BY grp", "1 minute", "wh")
    db.create_dynamic_table(
        "wide_join", "SELECT b.id, d.label FROM big b JOIN dim d "
        "ON b.grp = d.grp", "1 minute", "wh")

    next_id = [10_000]

    def trickle():
        start = next_id[0]
        next_id[0] += 10
        values = ", ".join(f"({start + i}, 'g{i % 20}', {i})"
                           for i in range(10))
        db.execute(f"INSERT INTO big VALUES {values}")

    def wide_update():
        db.execute("UPDATE dim SET label = label || 'x'")

    for burst in range(6):
        db.at((burst + 1) * 10 * MINUTE, trickle)
    db.at(25 * MINUTE, wide_update)
    db.at(55 * MINUTE, wide_update)
    report = db.run_for(HOUR)
    return db, report


def test_adoption_statistics(benchmark):
    db, report = benchmark(_simulate_fleet)

    no_data_fraction = (report.no_data_refreshes
                        / max(report.refreshes_succeeded, 1))
    assert no_data_fraction > 0.9  # ">90% of refreshes have no data"

    # Change-fraction distribution over incremental refreshes.
    small = large = middle = 0
    for dt in db.dynamic_tables():
        for record in dt.refresh_history:
            if (not record.succeeded
                    or record.action != RefreshAction.INCREMENTAL
                    or record.rows_changed == 0
                    or record.table_rows_after == 0):
                continue
            fraction = record.rows_changed / record.table_rows_after
            if fraction < 0.01:
                small += 1
            elif fraction > 0.10:
                large += 1
            else:
                middle += 1
    total = small + middle + large
    assert total > 0
    assert small / total > 0.5   # "a majority ... less than 1%"
    assert large / total > 0.1   # "21% change more than 10%"

    population = summarize(generate_population(4000, seed=0))

    emit("tab-adoption — section 6.3 statistics", [
        *table(["statistic", "paper", "measured"], [
            ["refreshes with NO_DATA", ">90%", f"{no_data_fraction:.1%}"],
            ["incremental refreshes changing <1% of DT", "67%",
             f"{small / total:.1%}"],
            ["incremental refreshes changing >10% of DT", "21%",
             f"{large / total:.1%}"],
            ["DTs with incremental refresh mode", "~70%",
             f"{population.incremental_fraction:.1%}"],
            ["DTs cloned from another", ">20%",
             f"{population.cloned_fraction:.1%}"],
            ["DTs in a shared database", "20%",
             f"{population.shared_fraction:.1%}"],
        ]),
        "",
        f"fleet: {len(db.dynamic_tables())} DTs, "
        f"{report.refreshes_succeeded} refreshes over 1 simulated hour, "
        f"{report.refreshes_skipped} skipped.",
    ])
