"""T10 — concurrent sessions: throughput and isolation under contention.

The multi-session server front end (PR 3) serves many sessions from a
thread pool over one database, with snapshot-isolated transactions and
first-committer-wins conflict handling. This benchmark sweeps the writer
count over two workloads:

* **contended** — N writers repeatedly read-modify-write one row of one
  table inside retried transactions. Correctness bar: the final counter
  equals the number of committed transactions (no lost updates), however
  many conflicts/retries it took.
* **disjoint** — N writers each append to their own table: no logical
  conflicts, so throughput should scale with workers until the GIL or
  the commit critical section dominates.

Deterministic facts (committed counts, invariant checks) land in
``BENCH_concurrency.json``; wall-clock throughput, conflict, and retry
numbers go to ``results.txt``.

Run:  PYTHONPATH=src python benchmarks/bench_t10_concurrent_sessions.py
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from repro import Database  # noqa: E402
from repro.server import Server  # noqa: E402

from reporting import emit, emit_json, table  # noqa: E402

WRITER_COUNTS = (1, 2, 4, 8)
TXNS_PER_WRITER = 40


def _increment(session):
    (current,) = session.query("SELECT n FROM counter WHERE id = 1").rows[0]
    session.execute("UPDATE counter SET n = ? WHERE id = 1", (current + 1,))


def run_contended(writers: int) -> dict:
    database = Database()
    database.create_warehouse("wh")
    with Server(database, workers=writers) as server:
        server.execute("CREATE TABLE counter (id int, n int)").result()
        server.execute("INSERT INTO counter VALUES (1, 0)").result()
        total = writers * TXNS_PER_WRITER
        start = time.perf_counter()
        futures = [server.submit_transaction(_increment)
                   for __ in range(total)]
        for future in futures:
            future.result()
        elapsed = time.perf_counter() - start
        final = server.query("SELECT n FROM counter WHERE id = 1").rows[0][0]
        stats = server.stats.snapshot()
    return {"writers": writers, "transactions": total, "final": final,
            "lost_updates": total - final, "elapsed": elapsed,
            "conflicts": stats["conflicts"], "retries": stats["retries"]}


def run_disjoint(writers: int) -> dict:
    database = Database()
    database.create_warehouse("wh")
    with Server(database, workers=writers) as server:
        for index in range(writers):
            server.execute(f"CREATE TABLE w{index} (a int)").result()

        def appender(index: int):
            def work(session):
                session.execute(f"INSERT INTO w{index} VALUES (1)")
            return work

        total = writers * TXNS_PER_WRITER
        start = time.perf_counter()
        futures = [server.submit_transaction(appender(i % writers))
                   for i in range(total)]
        for future in futures:
            future.result()
        elapsed = time.perf_counter() - start
        counts = [server.query(f"SELECT count(*) c FROM w{i}").rows[0][0]
                  for i in range(writers)]
        stats = server.stats.snapshot()
    return {"writers": writers, "transactions": total,
            "rows_per_table": counts, "elapsed": elapsed,
            "conflicts": stats["conflicts"]}


def main() -> None:
    contended = [run_contended(writers) for writers in WRITER_COUNTS]
    disjoint = [run_disjoint(writers) for writers in WRITER_COUNTS]

    emit("t10 — concurrent sessions: contended counter "
         f"({TXNS_PER_WRITER} txns/writer)", table(
             ["writers", "txns", "final", "lost", "conflicts", "retries",
              "txn/s"],
             [[r["writers"], r["transactions"], r["final"],
               r["lost_updates"], r["conflicts"], r["retries"],
               f"{r['transactions'] / r['elapsed']:.0f}"]
              for r in contended]))
    emit("t10 — concurrent sessions: disjoint tables "
         f"({TXNS_PER_WRITER} txns/writer)", table(
             ["writers", "txns", "conflicts", "txn/s"],
             [[r["writers"], r["transactions"], r["conflicts"],
               f"{r['transactions'] / r['elapsed']:.0f}"]
              for r in disjoint]))

    emit_json("BENCH_concurrency.json", {
        "scenario": ("N writer sessions over the thread-pool server: "
                     "contended read-modify-write on one row, and "
                     "disjoint per-writer appends"),
        "txns_per_writer": TXNS_PER_WRITER,
        "contended": [{
            "writers": r["writers"],
            "transactions": r["transactions"],
            "final_counter": r["final"],
            "lost_updates": r["lost_updates"],
        } for r in contended],
        "disjoint": [{
            "writers": r["writers"],
            "transactions": r["transactions"],
            "rows_per_table": r["rows_per_table"],
        } for r in disjoint],
        "invariants_ok": all(r["lost_updates"] == 0 for r in contended),
        "timings": "see benchmarks/results.txt",
    })


if __name__ == "__main__":
    main()
