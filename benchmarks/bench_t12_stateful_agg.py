"""Stateful incremental aggregation: stateful fold vs. endpoint recompute.

The stateless affected-group rule (the paper's production semantics,
section 5.5.3) recomputes every touched group at both interval endpoints,
so refresh cost scales with the *size of the touched groups*: one
inserted row into a huge group re-aggregates the whole group twice. The
stateful rule (:mod:`repro.ivm.aggstate`) folds the delta into per-group
retractable accumulators — O(|delta|) regardless of group sizes.

This benchmark measures exactly that asymmetry on a **skewed-group
workload**: a table dominated by a few huge groups, refreshed with small
deltas that always touch the huge groups. The baseline is the identical
differentiation with :func:`~repro.ivm.aggstate.force_stateless` pinned
(the endpoint-recompute path is kept alive in the same binary precisely
for this ablation); change sets are asserted identical between modes on
every refresh.

Acceptance: >= 5x incremental-refresh speedup on the huge-group update
path. Emits ``BENCH_agg_state.json``.
"""

import json
import os
import sys
import time

from repro.ivm.aggstate import AggStateStore, force_stateless
from repro.ivm.differentiator import differentiate
from repro.engine.schema import schema_of
from repro.engine.types import SqlType
from repro.plan.builder import DictSchemaProvider, build_plan
from repro.sql.parser import parse_query
from repro.storage.table import StagedWrite, VersionedTable
from repro.streams.changes import changes_between
from repro.txn.hlc import HlcTimestamp

sys.path.insert(0, os.path.dirname(__file__))
from reporting import emit, emit_json  # noqa: E402

ITEMS = schema_of(("id", SqlType.INT), ("grp", SqlType.TEXT),
                  ("val", SqlType.INT), table="items")
PROVIDER = DictSchemaProvider({"items": ITEMS})

#: The skew: two huge groups hold most rows; the long tail is small.
HUGE_GROUPS = ("hot0", "hot1")
HUGE_ROWS_EACH = 60_000
SMALL_GROUPS = 50
SMALL_ROWS_EACH = 100
TABLE_ROWS = len(HUGE_GROUPS) * HUGE_ROWS_EACH + SMALL_GROUPS * SMALL_ROWS_EACH

AGG_SQL = ("SELECT grp, count(*) n, sum(val) s, min(val) lo, max(val) hi, "
           "avg(val) m FROM items GROUP BY grp")
AGG_PLAN = build_plan(parse_query(AGG_SQL), PROVIDER)

#: Per refresh: a small delta that always lands in the huge groups.
REFRESHES = 5
DELTA_INSERTS = 200
DELTA_DELETES = 100


def _grp(index: int) -> str:
    huge_span = len(HUGE_GROUPS) * HUGE_ROWS_EACH
    if index < huge_span:
        return HUGE_GROUPS[index % len(HUGE_GROUPS)]
    return f"g{index % SMALL_GROUPS}"


def _make_table() -> VersionedTable:
    table = VersionedTable("items", ITEMS, 1)
    table.apply(StagedWrite(
        inserts=[(index, _grp(index), index % 10_000)
                 for index in range(TABLE_ROWS)]),
        HlcTimestamp(10))
    return table


class _IntervalSource:
    """DeltaSource over one table's (old, new) version interval, backed by
    the real change-query path (partition-set difference)."""

    def __init__(self, table, old, new):
        self._table, self._old, self._new = table, old, new

    def scan_old(self, name):
        return self._table.relation(self._old)

    def scan_new(self, name):
        return self._table.relation(self._new)

    def scan_delta(self, name):
        return changes_between(self._table, self._old, self._new)


def _canon(changes):
    return sorted((change.action.value, change.row_id, change.row)
                  for change in changes)


def _refresh_cycle(stateful: bool) -> tuple[float, list]:
    """One table lifetime: REFRESHES refreshes of small huge-group deltas.

    Returns (differentiation seconds, canonical change sets per refresh).
    The timed region excludes the one-time lazy state initialization
    (paid on a warm-up refresh), matching steady-state refresh cost.
    """
    table = _make_table()
    store = AggStateStore() if stateful else None
    total = 0.0
    outputs = []
    ts = 20
    for round_index in range(-1, REFRESHES):  # round -1 warms up
        old = table.current_version
        base = (round_index + 1) * DELTA_INSERTS
        # Deletes land inside the huge groups; inserts extend them.
        deletes = {f"b1:{base + offset}" for offset in range(DELTA_DELETES)}
        inserts = [(TABLE_ROWS + base + j, HUGE_GROUPS[j % len(HUGE_GROUPS)],
                    j % 10_000) for j in range(DELTA_INSERTS)]
        table.apply(StagedWrite(inserts=inserts, deletes=deletes),
                    HlcTimestamp(ts))
        ts += 10
        source = _IntervalSource(table, old, table.current_version)
        start = time.perf_counter()
        if store is not None:
            store.begin_refresh(("bench",), old.index)
            changes, stats = differentiate(AGG_PLAN, source, agg_state=store)
            store.commit_refresh(table.current_version.index)
        else:
            with force_stateless():
                changes, stats = differentiate(AGG_PLAN, source)
        elapsed = time.perf_counter() - start
        if round_index >= 0:
            total += elapsed
            outputs.append(_canon(changes))
            if store is not None:
                assert stats.agg_stateful_folds == 1, stats
                assert stats.endpoint_evals == 0, stats  # pure fold
    if store is not None:
        assert not store.invalidations, store.invalidations
    return total, outputs


def _measure() -> dict:
    stateful_samples = [_refresh_cycle(stateful=True) for __ in range(3)]
    stateless_samples = [_refresh_cycle(stateful=False) for __ in range(3)]
    stateful_s = min(seconds for seconds, __ in stateful_samples)
    stateless_s = min(seconds for seconds, __ in stateless_samples)
    # The two strategies must emit identical changes on every refresh.
    assert stateful_samples[0][1] == stateless_samples[0][1]

    delta_rows = REFRESHES * (DELTA_INSERTS + DELTA_DELETES)
    return {
        "query": AGG_SQL,
        "table_rows": TABLE_ROWS,
        "huge_groups": len(HUGE_GROUPS),
        "huge_group_rows": HUGE_ROWS_EACH,
        "small_groups": SMALL_GROUPS,
        "refreshes": REFRESHES,
        "delta_inserts_per_refresh": DELTA_INSERTS,
        "delta_deletes_per_refresh": DELTA_DELETES,
        "stateful_ms": round(stateful_s * 1e3, 2),
        "stateless_ms": round(stateless_s * 1e3, 2),
        "stateful_delta_rows_per_s": round(delta_rows / stateful_s),
        "stateless_delta_rows_per_s": round(delta_rows / stateless_s),
        "speedup": round(stateless_s / stateful_s, 2),
    }


def _report(result: dict) -> None:
    payload = {
        "scenario": ("stateful accumulator fold vs. endpoint-recompute "
                     "ablation: skewed-group aggregate (two 60k-row "
                     "groups) refreshed with small huge-group deltas"),
        "incremental_refresh": result,
    }
    emit_json("BENCH_agg_state.json", payload)
    emit("T12 stateful aggregation ablation", [
        f"{result['refreshes']} refreshes x "
        f"{result['delta_inserts_per_refresh'] + result['delta_deletes_per_refresh']}"
        f" delta rows over {result['table_rows']:,} rows in "
        f"{result['huge_groups']} huge + {result['small_groups']} small groups",
        f"stateful {result['stateful_ms']}ms vs endpoint-recompute "
        f"{result['stateless_ms']}ms -> {result['speedup']}x",
        "identical change sets asserted across strategies",
    ])


#: Acceptance threshold. The >= 5x criterion holds with a wide margin on
#: an idle machine (the committed BENCH_agg_state.json records it), but a
#: wall-clock ratio gate on a noisy shared CI runner would flake, so CI
#: sets a slack value that still catches the stateful path regressing to
#: endpoint-recompute cost.
MIN_SPEEDUP = float(os.environ.get("AGG_STATE_MIN_SPEEDUP", "5.0"))


def test_stateful_aggregation_speedup():
    result = _measure()
    _report(result)
    assert result["speedup"] >= MIN_SPEEDUP, result


if __name__ == "__main__":
    result = _measure()
    _report(result)
    print(json.dumps(result, indent=2))
