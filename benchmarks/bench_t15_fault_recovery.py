"""T15 — fault recovery: time-to-recover after a fault burst, and the
armed-but-idle overhead of the compiled-in injection points.

Two questions the fault subsystem (``repro.faults``) must answer:

* **Recovery** — after a burst of refresh failures (an ``HlcWindow``
  schedule failing every attempt against one DT for several periods),
  how long until the pipeline is current again once the faults stop?
  Measured entirely on the *simulated* clock, so every number here is
  deterministic: failed ticks, retries consumed, downstream skips, and
  the simulated delay from burst end to the first successful refresh.
* **Armed-but-idle overhead** — the injection points are compiled into
  the engine's hot paths (storage apply, WAL append, commit) and stay
  there permanently. With rules armed on *other* points, every hit pays
  the registry probe; that tax must stay under 5% on a commit-heavy
  workload, or the points would have to become conditionally compiled.

Deterministic facts land in ``BENCH_faults.json``; wall-clock numbers go
to ``results.txt``.

Run:  PYTHONPATH=src python benchmarks/bench_t15_fault_recovery.py
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from repro import Database  # noqa: E402
from repro.core.dynamic_table import RefreshAction  # noqa: E402
from repro.faults import HlcWindow, registry  # noqa: E402
from repro.scheduler.periods import BASE_PERIOD  # noqa: E402
from repro.util.timeutil import SECOND  # noqa: E402

from reporting import emit, emit_json, table  # noqa: E402

#: The fault burst: every refresh attempt against the upstream DT fails
#: while the simulated clock is inside this window.
BURST_START = 2 * BASE_PERIOD
BURST_END = 6 * BASE_PERIOD
RUN_UNTIL = 12 * BASE_PERIOD

#: Single-row INSERT autocommits per idle-overhead sample.
IDLE_COMMITS = 1500
IDLE_SAMPLES = 5


# -- fault-burst recovery (simulated time, fully deterministic) ----------------


def _burst_workload() -> Database:
    db = Database()
    db.create_warehouse("wh")
    db.execute("CREATE TABLE src (id int, grp text, val int)")
    db.execute("INSERT INTO src VALUES (1, 'a', 10), (2, 'b', 20)")
    db.create_dynamic_table(
        "agg", "SELECT grp, sum(val) s FROM src GROUP BY grp",
        "1 minute", "wh",
        options={"retries": 1, "backoff": "2 seconds",
                 "error_threshold": 100})
    db.create_dynamic_table(
        "top", "SELECT grp, s FROM agg WHERE s > 0", "1 minute", "wh")
    # Fresh data every half period, so refreshes move rows (and a missed
    # tick leaves real staleness to recover from).
    step = BASE_PERIOD // 2
    for index in range(1, 2 * RUN_UNTIL // BASE_PERIOD):
        db.at(index * step + SECOND,
              lambda i=index: db.execute(
                  f"INSERT INTO src VALUES ({i + 10}, 'a', {i})"))
    return db


def _measure_burst() -> dict:
    reg = registry()
    reg.clear()
    db = _burst_workload()
    reg.clock = db.clock.now
    rule = reg.arm("refresh.execute", HlcWindow(BURST_START, BURST_END),
                   times=None, match=lambda d: d.get("dt") == "agg")
    try:
        db.run_for(RUN_UNTIL)
    finally:
        reg.clear()
        reg.clock = None

    agg = db.dynamic_table("agg")
    top = db.dynamic_table("top")
    failed = [r for r in agg.refresh_history if r.error is not None]
    retries = sum(r.retries for r in agg.refresh_history)
    skips = [r for r in top.refresh_history
             if r.action == RefreshAction.SKIPPED_UPSTREAM_FAILED]
    recovery = next(r for r in agg.refresh_history
                    if r.data_timestamp >= BURST_END and r.succeeded)
    consistent = db.check_dvs("agg") and db.check_dvs("top")
    return {
        "burst_periods": (BURST_END - BURST_START) // BASE_PERIOD,
        "faults_fired": rule.fired,
        "failed_refreshes": len(failed),
        "retries_consumed": retries,
        "downstream_upstream_failed_skips": len(skips),
        "auto_suspended": agg.suspended,
        "time_to_recover_s": round(
            (recovery.end_wall - BURST_END) / SECOND, 3),
        "recovered_within_one_period": (
            recovery.end_wall - BURST_END <= BASE_PERIOD),
        "consistent_after_recovery": consistent,
    }


# -- armed-but-idle overhead ---------------------------------------------------


def _idle_sample(armed: bool) -> float:
    reg = registry()
    reg.clear()
    db = Database()
    db.create_warehouse("wh")
    db.execute("CREATE TABLE items (id int, val int)")
    if armed:
        # Rules on points this in-memory workload never reaches: every
        # storage/commit hit pays the full registry probe and returns.
        reg.arm("checkpoint.write", HlcWindow(0, 1), times=None)
        reg.arm("wal.fsync", HlcWindow(0, 1), times=None)
    try:
        start = time.perf_counter()
        for index in range(IDLE_COMMITS):
            db.execute(f"INSERT INTO items VALUES ({index}, {index % 97})")
        return time.perf_counter() - start
    finally:
        reg.clear()


def _measure_idle_overhead() -> dict:
    # Alternate the variants so machine drift hits both equally; gate on
    # the min-vs-min ratio (the least-noisy estimator available here).
    baseline, armed = [], []
    for __ in range(IDLE_SAMPLES):
        baseline.append(_idle_sample(armed=False))
        armed.append(_idle_sample(armed=True))
    ratio = min(armed) / min(baseline)
    return {
        "commits": IDLE_COMMITS,
        "baseline_ms": round(min(baseline) * 1e3, 2),
        "armed_idle_ms": round(min(armed) * 1e3, 2),
        "overhead_ratio": round(ratio, 4),
    }


_CACHE: dict = {}


def _results() -> dict:
    if not _CACHE:
        _CACHE["burst"] = _measure_burst()
        _CACHE["idle"] = _measure_idle_overhead()
        _report(_CACHE)
    return _CACHE


def _report(results: dict) -> None:
    burst, idle = results["burst"], results["idle"]
    emit_json("BENCH_faults.json", {
        "scenario": ("fault-burst recovery (HlcWindow failing every "
                     "refresh of one DT for several periods, then "
                     "clearing) and armed-but-idle injection-point "
                     "overhead on a commit-heavy workload"),
        "burst": burst,
        "idle_overhead_commits": idle["commits"],
        "invariants_ok": (burst["consistent_after_recovery"]
                          and burst["recovered_within_one_period"]
                          and burst["faults_fired"] > 0),
        "timings": "see benchmarks/results.txt",
    })
    emit("T15 faults: burst recovery (simulated clock)",
         table(["metric", "value"], [
             ["burst length", f"{burst['burst_periods']} periods"],
             ["faults fired", burst["faults_fired"]],
             ["failed refreshes", burst["failed_refreshes"]],
             ["retries consumed", burst["retries_consumed"]],
             ["downstream skips", burst[
                 "downstream_upstream_failed_skips"]],
             ["time to recover", f"{burst['time_to_recover_s']}s"],
         ]))
    emit(f"T15 faults: armed-but-idle overhead ({idle['commits']} "
         f"autocommits)", [
        f"baseline: {idle['baseline_ms']}ms",
        f"armed on unhit points: {idle['armed_idle_ms']}ms",
        f"-> overhead {idle['overhead_ratio']}x",
    ])


#: Acceptance: armed-but-idle overhead under 5%. Wall-clock ratios flake
#: on noisy shared runners, so CI may set a slack value that still
#: catches the probe becoming pathological (e.g. taking the registry
#: mutex on the no-rules path).
MAX_IDLE_OVERHEAD = float(
    os.environ.get("FAULTS_MAX_IDLE_OVERHEAD", "1.05"))


def test_fault_burst_recovers_within_one_period():
    burst = _results()["burst"]
    assert burst["faults_fired"] > 0, burst
    assert burst["failed_refreshes"] > 0, burst
    assert burst["recovered_within_one_period"], burst
    assert burst["consistent_after_recovery"], burst


def test_armed_but_idle_overhead_within_bound():
    idle = _results()["idle"]
    assert idle["overhead_ratio"] <= MAX_IDLE_OVERHEAD, idle


if __name__ == "__main__":
    print(json.dumps(_results(), indent=2))
